//! # kastio-quota
//!
//! A hierarchical **byte-account memory quota**, modeled on arti's
//! `tor-memquota`: one root budget (e.g. from `kastio serve
//! --max-memory-bytes`) split into named child [`Account`]s (corpus,
//! kernel cache, in-flight request buffers, …). Subsystems *charge*
//! bytes as they allocate and *release* them as they free; the tracker
//! never allocates on behalf of anyone — it is pure accounting, which is
//! what makes it dependency-free and safe to consult from any thread.
//!
//! Two admission styles:
//!
//! - [`Account::try_charge`] is **strict admission**: it either reserves
//!   the bytes (the root total never exceeds the limit through this
//!   path — it is a compare-and-swap loop, not a blind add) or refuses,
//!   after giving registered reclaimers one chance to make room. Request
//!   buffers and corpus growth use this, so the caller can shed load
//!   (`ERR busy reason=memory`) instead of OOMing.
//! - [`Account::charge`] is **unconditional**: the allocation already
//!   happened (a cache insert, a corpus preload). Crossing the
//!   high-water mark (7/8 of the limit) triggers a reclaim pass that
//!   asks the *greediest* reclaimable account first to free bytes until
//!   usage is back under the low-water mark (3/4) — so unconditional
//!   charges ride on the 1/8 headroom the watermarks keep clear.
//!
//! [`MemoryQuota::report_account`] opens a **report-only** account for
//! memory the process can never give back (interned token tables,
//! memoised self-kernels): its charges count toward the root total and
//! a separate [`MemoryQuota::unreclaimable`] gauge, and it can never
//! have a reclaimer — so operators can see how much of the budget is
//! permanently spoken for.
//!
//! Reclaim callbacks ([`MemoryQuota::set_reclaimer`]) free memory on
//! their own (e.g. clear cache stripes) and report the bytes they
//! released via their own [`Account::release`] calls; the pass observes
//! progress through the account's usage counter. A quota built without a
//! limit ([`MemoryQuota::unlimited`]) admits everything and never
//! reclaims, so library users pay only a relaxed atomic add.
//!
//! # Examples
//!
//! ```
//! use kastio_quota::MemoryQuota;
//!
//! let quota = MemoryQuota::new(Some(1024));
//! let buffers = quota.account("buffers");
//! assert!(buffers.try_charge(1000), "fits the budget");
//! assert!(!buffers.try_charge(100), "would exceed it");
//! buffers.release(1000);
//! assert_eq!(quota.used(), 0);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

/// Approximate heap footprint of a value, in bytes.
///
/// "Approximate" is the contract: implementations estimate the dominant
/// allocation (string bytes, vector backing stores) and may ignore
/// allocator slack and small fixed overheads. Quota accounting needs
/// consistency (the same value charges and releases the same number)
/// more than it needs exactness.
pub trait ApproxSize {
    /// Estimated bytes this value keeps alive, including its own
    /// inline size where that is the dominant term.
    fn approx_size_bytes(&self) -> usize;
}

impl ApproxSize for str {
    fn approx_size_bytes(&self) -> usize {
        self.len()
    }
}

impl ApproxSize for String {
    fn approx_size_bytes(&self) -> usize {
        self.capacity() + std::mem::size_of::<String>()
    }
}

impl ApproxSize for [u8] {
    fn approx_size_bytes(&self) -> usize {
        self.len()
    }
}

impl<T: ApproxSize + ?Sized> ApproxSize for &T {
    fn approx_size_bytes(&self) -> usize {
        (**self).approx_size_bytes()
    }
}

/// Backing-store bytes of a `Vec`, by element size — the building block
/// for `ApproxSize` impls over containers of plain data.
pub fn vec_backing_bytes<T>(v: &[T]) -> usize {
    std::mem::size_of_val(v)
}

/// A reclaim callback: asked to free roughly `target` bytes, frees what
/// it can (releasing them through its own [`Account`] handle) and
/// returns its best estimate of the bytes actually freed.
type Reclaimer = Box<dyn Fn(u64) -> u64 + Send + Sync>;

struct AccountInner {
    name: &'static str,
    used: AtomicU64,
    /// Report-only accounts track bytes the process cannot give back
    /// (interned tokens, memoised self-kernels). Their usage counts
    /// toward the root total *and* the [`MemoryQuota::unreclaimable`]
    /// gauge, and they can never have a reclaimer.
    report_only: bool,
    quota: Weak<QuotaInner>,
}

struct AccountEntry {
    inner: Weak<AccountInner>,
    reclaimer: Option<Reclaimer>,
}

struct QuotaInner {
    /// `u64::MAX` means unlimited.
    limit: u64,
    /// Crossing this on an unconditional charge triggers a reclaim pass.
    high_water: u64,
    /// A reclaim pass stops once usage is back under this.
    low_water: u64,
    used: AtomicU64,
    /// Bytes charged through report-only accounts: memory that is live
    /// and counted in `used`, but that no reclaim pass can free.
    unreclaimable: AtomicU64,
    reclaims: AtomicU64,
    /// Single-flight guard: one reclaim pass at a time, and a reclaimer
    /// releasing bytes can never recurse into another pass.
    reclaiming: AtomicBool,
    accounts: Mutex<Vec<AccountEntry>>,
}

/// The root byte budget. Cheap to clone (an `Arc` handle); all clones
/// and every [`Account`] spawned from them share one usage total.
#[derive(Clone)]
pub struct MemoryQuota {
    inner: Arc<QuotaInner>,
}

impl std::fmt::Debug for MemoryQuota {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryQuota")
            .field("limit", &self.limit())
            .field("used", &self.used())
            .field("reclaims", &self.reclaims())
            .finish()
    }
}

impl MemoryQuota {
    /// Creates a quota with the given byte limit; `None` is unlimited.
    pub fn new(limit: Option<u64>) -> MemoryQuota {
        let limit = limit.unwrap_or(u64::MAX);
        MemoryQuota {
            inner: Arc::new(QuotaInner {
                limit,
                high_water: limit.saturating_sub(limit / 8),
                low_water: limit.saturating_sub(limit / 4),
                used: AtomicU64::new(0),
                unreclaimable: AtomicU64::new(0),
                reclaims: AtomicU64::new(0),
                reclaiming: AtomicBool::new(false),
                accounts: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A quota that admits everything and never reclaims.
    pub fn unlimited() -> MemoryQuota {
        MemoryQuota::new(None)
    }

    /// Opens a named child account. Names are labels for diagnostics and
    /// [`MemoryQuota::set_reclaimer`]; opening the same name twice makes
    /// two independent accounts.
    pub fn account(&self, name: &'static str) -> Account {
        self.open_account(name, false)
    }

    /// Opens a **report-only** child account for memory the process can
    /// never give back (interned token tables, memoised self-kernels).
    /// Charges count toward [`MemoryQuota::used`] — so admission and the
    /// watermarks see the true footprint — and toward the
    /// [`MemoryQuota::unreclaimable`] gauge. A report-only account can
    /// never have a reclaimer: [`MemoryQuota::set_reclaimer`] ignores it.
    pub fn report_account(&self, name: &'static str) -> Account {
        self.open_account(name, true)
    }

    fn open_account(&self, name: &'static str, report_only: bool) -> Account {
        let inner = Arc::new(AccountInner {
            name,
            used: AtomicU64::new(0),
            report_only,
            quota: Arc::downgrade(&self.inner),
        });
        lock_accounts(&self.inner.accounts)
            .push(AccountEntry { inner: Arc::downgrade(&inner), reclaimer: None });
        Account { inner }
    }

    /// Registers the reclaim callback for the named account (the most
    /// recently opened one, if the name was reused). Under pressure the
    /// pass calls the reclaimers of the greediest accounts first.
    pub fn set_reclaimer(
        &self,
        name: &'static str,
        reclaim: impl Fn(u64) -> u64 + Send + Sync + 'static,
    ) {
        let mut accounts = lock_accounts(&self.inner.accounts);
        if let Some(entry) = accounts
            .iter_mut()
            .rev()
            .find(|entry| entry.inner.upgrade().is_some_and(|a| a.name == name && !a.report_only))
        {
            entry.reclaimer = Some(Box::new(reclaim));
        }
    }

    /// Total bytes currently charged across all accounts.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// The configured limit, or `None` when unlimited.
    pub fn limit(&self) -> Option<u64> {
        (self.inner.limit != u64::MAX).then_some(self.inner.limit)
    }

    /// Bytes charged through report-only accounts: live memory that is
    /// included in [`MemoryQuota::used`] but that no reclaim pass can
    /// free. The gap between the limit and this number is the budget
    /// that load shedding can actually defend.
    pub fn unreclaimable(&self) -> u64 {
        self.inner.unreclaimable.load(Ordering::Relaxed)
    }

    /// Number of reclaimer invocations that freed bytes.
    pub fn reclaims(&self) -> u64 {
        self.inner.reclaims.load(Ordering::Relaxed)
    }
}

fn lock_accounts(accounts: &Mutex<Vec<AccountEntry>>) -> MutexGuard<'_, Vec<AccountEntry>> {
    accounts.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl QuotaInner {
    /// Runs one reclaim pass if usage is at/over `trigger` and no pass is
    /// already running: asks reclaimable accounts, greediest first, to
    /// free bytes until the total is back under the low-water mark or no
    /// reclaimer makes progress.
    fn reclaim_down_from(&self, trigger: u64) {
        if self.limit == u64::MAX || self.used.load(Ordering::Relaxed) < trigger {
            return;
        }
        if self.reclaiming.swap(true, Ordering::Acquire) {
            return; // a pass is already running (possibly ours, reentrantly)
        }
        let accounts = lock_accounts(&self.accounts);
        let mut ranked: Vec<(u64, usize)> = accounts
            .iter()
            .enumerate()
            .filter(|(_, entry)| entry.reclaimer.is_some())
            .filter_map(|(i, entry)| {
                entry.inner.upgrade().map(|a| (a.used.load(Ordering::Relaxed), i))
            })
            .collect();
        ranked.sort_unstable_by_key(|&(used, _)| std::cmp::Reverse(used));
        for (_, i) in ranked {
            let used = self.used.load(Ordering::Relaxed);
            if used <= self.low_water {
                break;
            }
            if let Some(reclaim) = &accounts[i].reclaimer {
                if reclaim(used - self.low_water) > 0 {
                    self.reclaims.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.reclaiming.store(false, Ordering::Release);
    }
}

/// A named child of a [`MemoryQuota`]. Clones share the same account.
#[derive(Clone)]
pub struct Account {
    inner: Arc<AccountInner>,
}

impl std::fmt::Debug for Account {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Account").field("name", &self.name()).field("used", &self.used()).finish()
    }
}

impl Account {
    /// The label this account was opened under.
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// Bytes currently charged to this account.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Unconditionally charges `bytes` (the allocation already exists),
    /// then reclaims if the root total crossed the high-water mark.
    pub fn charge(&self, bytes: u64) {
        self.inner.used.fetch_add(bytes, Ordering::Relaxed);
        if let Some(quota) = self.inner.quota.upgrade() {
            quota.used.fetch_add(bytes, Ordering::Relaxed);
            if self.inner.report_only {
                quota.unreclaimable.fetch_add(bytes, Ordering::Relaxed);
            }
            quota.reclaim_down_from(quota.high_water);
        }
    }

    /// Admission: reserves `bytes` if — after at most one reclaim pass —
    /// the root total stays within the limit; returns `false` (charging
    /// nothing) otherwise. Reservations through this path can never push
    /// the total past the limit, even raced from many threads.
    #[must_use]
    pub fn try_charge(&self, bytes: u64) -> bool {
        let Some(quota) = self.inner.quota.upgrade() else {
            // The root is gone; nothing left to bound.
            self.inner.used.fetch_add(bytes, Ordering::Relaxed);
            return true;
        };
        let mut reclaimed = false;
        loop {
            let used = quota.used.load(Ordering::Relaxed);
            if used.saturating_add(bytes) > quota.limit {
                if reclaimed {
                    return false;
                }
                // One chance: ask the reclaimers to make room, then
                // re-evaluate from the top.
                quota.reclaim_down_from(0);
                reclaimed = true;
                continue;
            }
            if quota
                .used
                .compare_exchange_weak(used, used + bytes, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.inner.used.fetch_add(bytes, Ordering::Relaxed);
                if self.inner.report_only {
                    quota.unreclaimable.fetch_add(bytes, Ordering::Relaxed);
                }
                return true;
            }
        }
    }

    /// Releases `bytes` previously charged (saturating, so a conservative
    /// over-release cannot wrap the counters).
    pub fn release(&self, bytes: u64) {
        saturating_sub(&self.inner.used, bytes);
        if let Some(quota) = self.inner.quota.upgrade() {
            saturating_sub(&quota.used, bytes);
            if self.inner.report_only {
                saturating_sub(&quota.unreclaimable, bytes);
            }
        }
    }
}

fn saturating_sub(counter: &AtomicU64, bytes: u64) {
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_sub(bytes);
        match counter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release_roundtrip_the_totals() {
        let quota = MemoryQuota::new(Some(4096));
        let a = quota.account("a");
        let b = quota.account("b");
        a.charge(100);
        b.charge(200);
        assert_eq!(a.used(), 100);
        assert_eq!(b.used(), 200);
        assert_eq!(quota.used(), 300);
        a.release(100);
        b.release(200);
        assert_eq!(quota.used(), 0);
        assert_eq!(quota.limit(), Some(4096));
    }

    #[test]
    fn try_charge_enforces_the_limit_exactly() {
        let quota = MemoryQuota::new(Some(1000));
        let a = quota.account("a");
        assert!(a.try_charge(600));
        assert!(a.try_charge(400), "exactly at the limit is admitted");
        assert!(!a.try_charge(1), "one past the limit is refused");
        assert_eq!(quota.used(), 1000);
        a.release(1);
        assert!(a.try_charge(1));
    }

    #[test]
    fn release_saturates_instead_of_wrapping() {
        let quota = MemoryQuota::new(Some(1000));
        let a = quota.account("a");
        a.charge(10);
        a.release(10_000);
        assert_eq!(a.used(), 0);
        assert_eq!(quota.used(), 0);
        assert!(a.try_charge(1000), "the full budget is available again");
    }

    #[test]
    fn unlimited_quota_admits_everything_and_never_reclaims() {
        let quota = MemoryQuota::unlimited();
        let a = quota.account("a");
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        quota.set_reclaimer("a", move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
            0
        });
        assert!(a.try_charge(u64::MAX / 2));
        a.charge(u64::MAX / 4);
        assert_eq!(quota.limit(), None);
        assert_eq!(quota.reclaims(), 0);
        assert_eq!(calls.load(Ordering::Relaxed), 0, "reclaimers never run unlimited");
    }

    /// A reclaimable account backed by a shared "cache size" cell: the
    /// reclaimer empties the cell and releases the bytes, like the kernel
    /// cache clearing its stripes.
    fn cache_account(quota: &MemoryQuota, name: &'static str) -> (Account, Arc<AtomicU64>) {
        let account = quota.account(name);
        let held = Arc::new(AtomicU64::new(0));
        let (reclaim_account, reclaim_held) = (account.clone(), Arc::clone(&held));
        quota.set_reclaimer(name, move |_target| {
            let freed = reclaim_held.swap(0, Ordering::Relaxed);
            reclaim_account.release(freed);
            freed
        });
        (account, held)
    }

    #[test]
    fn admission_pressure_reclaims_and_then_admits() {
        let quota = MemoryQuota::new(Some(1000));
        let (cache, held) = cache_account(&quota, "cache");
        cache.charge(900);
        held.store(900, Ordering::Relaxed);
        let buffers = quota.account("buffers");
        assert!(buffers.try_charge(500), "reclaim made room");
        assert_eq!(quota.used(), 500);
        assert!(quota.reclaims() >= 1);
        assert_eq!(cache.used(), 0, "the cache was emptied to admit the buffers");
    }

    #[test]
    fn reclaim_asks_the_greediest_account_first() {
        let quota = MemoryQuota::new(Some(1000));
        let (small, small_held) = cache_account(&quota, "small");
        let (big, big_held) = cache_account(&quota, "big");
        small.charge(100);
        small_held.store(100, Ordering::Relaxed);
        big.charge(700);
        big_held.store(700, Ordering::Relaxed);
        // 800 used; charging 150 more crosses the 875 high-water mark and
        // triggers a pass. Emptying `big` alone lands usage at 250, under
        // the 750 low-water mark, so `small` must be left untouched.
        let other = quota.account("other");
        other.charge(150);
        assert_eq!(big.used(), 0, "greediest account reclaimed first");
        assert_eq!(small.used(), 100, "pass stopped once under the low-water mark");
        assert_eq!(quota.used(), 250);
    }

    #[test]
    fn concurrent_admission_never_exceeds_the_limit() {
        let quota = MemoryQuota::new(Some(10_000));
        let admitted = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let account = quota.account("buffers");
                let admitted = Arc::clone(&admitted);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        if account.try_charge(7) {
                            admitted.fetch_add(7, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(quota.used() <= 10_000, "admission overshot: {}", quota.used());
        assert_eq!(quota.used(), admitted.load(Ordering::Relaxed));
    }

    #[test]
    fn report_accounts_count_toward_used_and_unreclaimable() {
        let quota = MemoryQuota::new(Some(4096));
        let interner = quota.report_account("interner");
        let buffers = quota.account("buffers");
        interner.charge(300);
        buffers.charge(100);
        assert_eq!(quota.used(), 400, "report-only bytes are real bytes");
        assert_eq!(quota.unreclaimable(), 300, "only report-only bytes are unreclaimable");
        interner.release(200);
        assert_eq!(quota.unreclaimable(), 100);
        assert_eq!(quota.used(), 200);
    }

    #[test]
    fn report_accounts_never_get_a_reclaimer() {
        let quota = MemoryQuota::new(Some(1000));
        let registry = quota.report_account("registry");
        registry.charge(990);
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        quota.set_reclaimer("registry", move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
            0
        });
        // Admission pressure runs a pass, but the report-only account is
        // not a reclaim source, so nothing can make room.
        let buffers = quota.account("buffers");
        assert!(!buffers.try_charge(100));
        assert_eq!(calls.load(Ordering::Relaxed), 0, "report-only accounts are unreclaimable");
        assert_eq!(registry.used(), 990);
    }

    #[test]
    fn approx_sizes_are_sane() {
        assert_eq!("abcd".approx_size_bytes(), 4);
        let s = String::from("hello");
        assert!(s.approx_size_bytes() >= 5 + std::mem::size_of::<String>());
        let bytes: &[u8] = &[0, 1, 2];
        assert_eq!(bytes.approx_size_bytes(), 3);
        assert_eq!(vec_backing_bytes(&[0_u64; 4]), 32);
    }
}
