//! Synthetic application programs for the four categories, executed
//! against the simulated POSIX layer.
//!
//! The paper's traces come from the IOR benchmark \[14\] and the FLASH-IO
//! kernel \[15\]; we cannot run those against a real parallel file system,
//! so each generator is a small *program* reproducing the access shape the
//! paper attributes to its category (see DESIGN.md §5 for the substitution
//! argument). Byte-size palettes are deliberately disjoint between
//! categories A, B and C/D — mirroring "contiguous write operations with
//! different byte values that were not present in the other categories" —
//! while C and D share theirs, which is exactly what makes them merge.

use kastio_trace::{SeekWhence, SimFs, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the FLASH-IO-like generator (category A).
///
/// FLASH writes a checkpoint file plus plot files per run: each file gets
/// a burst of small header records of varying sizes followed by many large
/// contiguous data-block writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashIoParams {
    /// Number of output files (checkpoint + plot files).
    pub files: usize,
    /// Header record sizes written once each at the start of every file.
    pub header_sizes: Vec<u64>,
    /// Size of one data block write.
    pub block_size: u64,
    /// Number of data block writes per file.
    pub blocks: usize,
}

impl Default for FlashIoParams {
    fn default() -> Self {
        FlashIoParams {
            files: 3,
            // Distinctive FLASH-ish metadata record sizes.
            header_sizes: vec![48, 655, 48, 16],
            block_size: 524_288,
            blocks: 24,
        }
    }
}

/// Runs the FLASH-IO-like program and returns its trace.
///
/// # Examples
///
/// ```
/// use kastio_workloads::generators::{flash_io, FlashIoParams};
///
/// let trace = flash_io(&FlashIoParams::default());
/// assert!(trace.len() > 50);
/// ```
pub fn flash_io(params: &FlashIoParams) -> Trace {
    let mut fs = SimFs::new();
    for file in 0..params.files {
        let fd = fs.open(&format!("flash_chk_{file}")).expect("open never fails");
        fs.fileno(fd).expect("fd is open");
        for &h in &params.header_sizes {
            fs.write(fd, h).expect("fd is open");
        }
        for _ in 0..params.blocks {
            fs.write(fd, params.block_size).expect("fd is open");
        }
        fs.close(fd).expect("fd is open");
    }
    fs.into_trace()
}

/// Parameters of the Random-POSIX generator (category B).
///
/// IOR-style two-phase random POSIX I/O: a random write phase (one
/// open…close block of seek-then-write loops) followed by the data being
/// re-read in several random bursts (seek-then-read loops, one block
/// each). The `lseek` operations are the category's marker — "not seen
/// elsewhere" — while the phase/burst block structure mirrors the other
/// single-file categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomPosixParams {
    /// Number of seek+write iterations in the write phase.
    pub write_iterations: usize,
    /// Number of seek+read iterations across all read bursts.
    pub read_iterations: usize,
    /// Number of read bursts (open…close blocks).
    pub read_bursts: usize,
    /// Transfer size of each read/write.
    pub transfer_size: u64,
    /// Size the file is pre-extended to before the random phase.
    pub file_size: u64,
}

impl Default for RandomPosixParams {
    fn default() -> Self {
        RandomPosixParams {
            write_iterations: 48,
            read_iterations: 48,
            read_bursts: 2,
            transfer_size: 8_192,
            file_size: 1 << 22,
        }
    }
}

/// Runs the Random-POSIX program (seeded) and returns its trace.
pub fn random_posix(params: &RandomPosixParams, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = SimFs::new();
    let max_off = params.file_size.saturating_sub(params.transfer_size).max(1);

    // Random write phase.
    let fd = fs.open("random_posix.dat").expect("open never fails");
    // Pre-extend so every later access lands inside the file.
    fs.write(fd, params.file_size).expect("fd is open");
    for _ in 0..params.write_iterations {
        let offset = rng.gen_range(0..max_off) as i64;
        fs.lseek(fd, offset, SeekWhence::Set).expect("fd is open");
        fs.write(fd, params.transfer_size).expect("fd is open");
    }
    fs.close(fd).expect("fd is open");

    // Random read bursts.
    let bursts = params.read_bursts.max(1);
    let mut remaining = params.read_iterations;
    for burst in 0..bursts {
        let take = if burst + 1 == bursts {
            remaining
        } else {
            let cap = remaining.saturating_sub(bursts - burst - 1).max(1);
            rng.gen_range(1..=cap)
        };
        remaining = remaining.saturating_sub(take);
        let fd = fs.open("random_posix.dat").expect("open never fails");
        for _ in 0..take {
            let offset = rng.gen_range(0..max_off) as i64;
            fs.lseek(fd, offset, SeekWhence::Set).expect("fd is open");
            fs.read(fd, params.transfer_size).expect("fd is open");
        }
        fs.close(fd).expect("fd is open");
        if remaining == 0 {
            break;
        }
    }
    fs.into_trace()
}

/// Parameters shared by the two IOR-style generators (categories C and D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IorParams {
    /// Transfer size of every read/write (shared by C and D — the reason
    /// the two categories merge).
    pub transfer_size: u64,
    /// Number of transfers in the write phase.
    pub write_transfers: usize,
    /// Number of transfers read back.
    pub read_transfers: usize,
}

impl Default for IorParams {
    fn default() -> Self {
        IorParams { transfer_size: 262_144, write_transfers: 32, read_transfers: 32 }
    }
}

/// Category C — "Normal I/O": IOR's sequential write phase followed by a
/// sequential read-back phase, each in its own open…close block.
pub fn ior_sequential(params: &IorParams) -> Trace {
    let mut fs = SimFs::new();
    let fd = fs.open("ior.dat").expect("open never fails");
    for _ in 0..params.write_transfers {
        fs.write(fd, params.transfer_size).expect("fd is open");
    }
    fs.close(fd).expect("fd is open");
    let fd = fs.open("ior.dat").expect("open never fails");
    for _ in 0..params.read_transfers {
        fs.read(fd, params.transfer_size).expect("fd is open");
    }
    fs.close(fd).expect("fd is open");
    fs.into_trace()
}

/// Category D — "Random Access I/O": the same write phase, then the file
/// is re-read in random segment order in several bursts using positional
/// reads (pread-style, so no `lseek` appears in the trace — exactly why
/// the paper finds C and D "shared roughly the same pattern").
pub fn ior_random_access(params: &IorParams, bursts: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = SimFs::new();
    let fd = fs.open("ior.dat").expect("open never fails");
    for _ in 0..params.write_transfers {
        fs.write(fd, params.transfer_size).expect("fd is open");
    }
    fs.close(fd).expect("fd is open");
    let bursts = bursts.max(1);
    let mut remaining = params.read_transfers;
    for burst in 0..bursts {
        let take = if burst + 1 == bursts {
            remaining
        } else {
            let cap = remaining.saturating_sub(bursts - burst - 1).max(1);
            rng.gen_range(1..=cap)
        };
        remaining = remaining.saturating_sub(take);
        let fd = fs.open("ior.dat").expect("open never fails");
        for _ in 0..take {
            // A positional read of a random segment: the segment choice
            // does not surface in the trace (no offset is recorded), which
            // is the behavioural core of the C/D similarity.
            fs.read(fd, params.transfer_size).expect("fd is open");
        }
        fs.close(fd).expect("fd is open");
        if remaining == 0 {
            break;
        }
    }
    fs.into_trace()
}

/// Runs an IOR-style job on `ranks` processes and returns the per-rank
/// traces.
///
/// Each rank executes the sequential IOR program ([`ior_sequential`])
/// against its own simulated file system; merge the result with
/// [`kastio_trace::HandleMerge::FilePerProcess`] or
/// [`kastio_trace::HandleMerge::SharedFile`] to model IOR's two file
/// layouts.
///
/// # Examples
///
/// ```
/// use kastio_trace::HandleMerge;
/// use kastio_workloads::generators::{ior_parallel, IorParams};
///
/// let job = ior_parallel(&IorParams::default(), 4);
/// assert_eq!(job.rank_count(), 4);
/// let merged = job.merge(HandleMerge::FilePerProcess);
/// assert_eq!(merged.handles().len(), 4);
/// ```
pub fn ior_parallel(params: &IorParams, ranks: usize) -> kastio_trace::ParallelTrace {
    (0..ranks).map(|_| ior_sequential(params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::{HandleMerge, OpKind, TraceStats};

    #[test]
    fn flash_io_is_write_dominated_with_header_sizes() {
        let t = flash_io(&FlashIoParams::default());
        let stats = TraceStats::of(&t);
        assert_eq!(stats.blocks, 3, "one block per file");
        assert!(stats.bytes_written > 0);
        assert_eq!(stats.bytes_read, 0);
        assert_eq!(stats.seeks, 0);
        assert_eq!(t.count_kind(&OpKind::Fsync), 0, "pure write pattern");
        // Header sizes appear as distinct write byte values.
        assert!(t.iter().any(|op| op.kind == OpKind::Write && op.bytes == 655));
    }

    #[test]
    fn random_posix_is_seek_heavy() {
        let t = random_posix(&RandomPosixParams::default(), 7);
        let stats = TraceStats::of(&t);
        assert_eq!(stats.seeks, 96, "one seek per write and read iteration");
        assert!(stats.seek_ratio() > 0.3);
        assert!(stats.blocks >= 3, "write phase plus at least two read bursts");
    }

    #[test]
    fn random_posix_is_deterministic_per_seed() {
        let p = RandomPosixParams::default();
        assert_eq!(random_posix(&p, 42), random_posix(&p, 42));
        assert_ne!(random_posix(&p, 42), random_posix(&p, 43));
    }

    #[test]
    fn ior_sequential_writes_then_reads() {
        let t = ior_sequential(&IorParams::default());
        let stats = TraceStats::of(&t);
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.seeks, 0);
        assert_eq!(stats.bytes_written, 32 * 262_144);
        assert_eq!(stats.bytes_read, 32 * 262_144);
    }

    #[test]
    fn ior_random_access_reads_everything_in_bursts() {
        let t = ior_random_access(&IorParams::default(), 3, 11);
        let stats = TraceStats::of(&t);
        assert!(stats.blocks >= 2);
        assert_eq!(stats.bytes_read, 32 * 262_144, "all transfers re-read");
    }

    #[test]
    fn generator_signatures_match_section_2_1_expectations() {
        use kastio_trace::{PatternSignature, SignatureConfig};
        let cfg = SignatureConfig::default();
        // FLASH-IO: highly repeatable contiguous writes.
        let a = PatternSignature::of(&flash_io(&FlashIoParams::default()), cfg);
        assert!(a.repeatability > 0.8, "A repeatability {}", a.repeatability);
        // Random POSIX: seek-heavy; its volume stream (seeks carry zero
        // bytes, transfers don't) is burstier than the constant-size IOR
        // stream.
        let b = PatternSignature::of(&random_posix(&RandomPosixParams::default(), 5), cfg);
        let c = PatternSignature::of(&ior_sequential(&IorParams::default()), cfg);
        assert!(b.burstiness > c.burstiness, "B {} vs C {}", b.burstiness, c.burstiness);
        assert!(c.repeatability > 0.8);
    }

    #[test]
    fn ior_parallel_ranks_are_identical_programs() {
        let job = ior_parallel(&IorParams::default(), 3);
        assert_eq!(job.rank_count(), 3);
        assert_eq!(job.rank(0), job.rank(2));
        let shared = job.merge(HandleMerge::SharedFile);
        assert_eq!(shared.handles().len(), 1);
        let fpp = job.merge(HandleMerge::FilePerProcess);
        assert_eq!(fpp.handles().len(), 3);
        assert_eq!(shared.len(), fpp.len());
    }

    #[test]
    fn c_and_d_share_their_transfer_size_but_not_with_a_or_b() {
        let a = flash_io(&FlashIoParams::default());
        let b = random_posix(&RandomPosixParams::default(), 3);
        let c = ior_sequential(&IorParams::default());
        let d = ior_random_access(&IorParams::default(), 3, 5);
        let sizes = |t: &kastio_trace::Trace| -> std::collections::BTreeSet<u64> {
            t.iter()
                .filter(|o| matches!(o.kind, OpKind::Read | OpKind::Write))
                .map(|o| o.bytes)
                .collect()
        };
        let (sa, sb, sc, sd) = (sizes(&a), sizes(&b), sizes(&c), sizes(&d));
        assert!(sc.intersection(&sd).count() > 0, "C and D share sizes");
        assert_eq!(sa.intersection(&sc).count(), 0, "A disjoint from C");
        assert_eq!(sb.intersection(&sc).count(), 0, "B transfer disjoint from C");
    }
}
