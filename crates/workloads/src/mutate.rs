//! The mutation engine behind the paper's synthetic copies.
//!
//! §4.1: "For each pattern 4 additional synthetic copies were created.
//! Such copies introduced small mutations on the pattern; the idea behind
//! these mutations was the need to create access patterns that were, in
//! theory, closer to a determined example than the rest of the category
//! members."
//!
//! Because the compression step of the pipeline is aggressive (whole loop
//! bodies merge into single tokens whose literal embeds every byte value
//! seen), mutations that *change* a byte value or *insert* a new operation
//! kind rewrite the literal of the merged token and teleport the copy away
//! from its base. The default mutation mix therefore only perturbs
//! *weights* — duplicating and dropping operations, and duplicating whole
//! open…close blocks — which is exactly the "closer to this example than
//! to the rest of the category" behaviour the paper wants. The
//! literal-changing mutations ([`MutationKind::PerturbBytes`],
//! [`MutationKind::InsertFsync`]) remain available for ablation studies.

use kastio_trace::{OpKind, Operation, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kinds of point mutations the engine can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Duplicate one substantive operation in place (a loop runs once
    /// more). Weight-only: never changes token literals.
    DuplicateOp,
    /// Drop one substantive operation (a loop runs once less).
    /// Weight-only.
    DropOp,
    /// Duplicate a whole open…close block of one handle. Weight- and
    /// structure-only.
    DuplicateBlock,
    /// Nudge the byte count of one transfer by a small relative delta.
    /// Changes token literals under `ByteMode::Preserve`.
    PerturbBytes,
    /// Insert an `fsync` after a random operation. Changes merged token
    /// names.
    InsertFsync,
}

impl MutationKind {
    /// All mutation kinds.
    pub const ALL: [MutationKind; 5] = [
        MutationKind::DuplicateOp,
        MutationKind::DropOp,
        MutationKind::DuplicateBlock,
        MutationKind::PerturbBytes,
        MutationKind::InsertFsync,
    ];

    /// The literal-stable kinds (see module docs).
    pub const WEIGHT_ONLY: [MutationKind; 3] =
        [MutationKind::DuplicateOp, MutationKind::DropOp, MutationKind::DuplicateBlock];

    /// The default mix used for the paper dataset: weight perturbations
    /// plus small byte-size perturbations. Operation kinds are never
    /// invented, so a mutant keeps its category signature; byte
    /// perturbations add exactly the literal-level noise that separates
    /// the Kast kernel from the fixed-length spectrum baselines in §4.3.
    pub const PAPER: [MutationKind; 4] = [
        MutationKind::DuplicateOp,
        MutationKind::DropOp,
        MutationKind::DuplicateBlock,
        MutationKind::PerturbBytes,
    ];
}

/// Configuration of the mutation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationConfig {
    /// How many point mutations one call to [`mutate`] applies.
    pub mutations: usize,
    /// The pool of mutation kinds drawn from.
    pub kinds: Vec<MutationKind>,
    /// Maximum relative byte perturbation in percent (used by
    /// [`MutationKind::PerturbBytes`]).
    pub max_byte_delta_percent: u8,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            mutations: 3,
            kinds: MutationKind::PAPER.to_vec(),
            max_byte_delta_percent: 10,
        }
    }
}

impl MutationConfig {
    /// Only the literal-stable mutation kinds — every copy keeps exactly
    /// its base's token literals (used by the mutation-model ablation).
    pub fn weight_only() -> Self {
        MutationConfig {
            mutations: 3,
            kinds: MutationKind::WEIGHT_ONLY.to_vec(),
            max_byte_delta_percent: 10,
        }
    }

    /// A configuration drawing from every mutation kind, including
    /// `fsync` insertion (which renames merged tokens even without byte
    /// information).
    pub fn aggressive() -> Self {
        MutationConfig {
            mutations: 3,
            kinds: MutationKind::ALL.to_vec(),
            max_byte_delta_percent: 10,
        }
    }
}

fn substantive_indices(ops: &[Operation]) -> Vec<usize> {
    ops.iter()
        .enumerate()
        .filter(|(_, op)| !op.kind.is_block_delimiter() && !op.kind.is_negligible())
        .map(|(i, _)| i)
        .collect()
}

/// Finds the index ranges `[open, close]` of every complete block.
fn block_spans(ops: &[Operation]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut open_at: Vec<(kastio_trace::HandleId, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op.kind {
            OpKind::Open => open_at.push((op.handle, i)),
            OpKind::Close => {
                if let Some(pos) = open_at.iter().rposition(|&(h, _)| h == op.handle) {
                    let (_, start) = open_at.remove(pos);
                    spans.push((start, i));
                }
            }
            _ => {}
        }
    }
    spans
}

/// Applies `config.mutations` random point mutations to a copy of `trace`.
///
/// Deterministic for a given `(trace, config, seed)` triple. Open/close
/// delimiters are never removed, so the block structure of the pattern
/// survives every mutation.
///
/// # Examples
///
/// ```
/// use kastio_trace::parse_trace;
/// use kastio_workloads::mutate::{mutate, MutationConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let base = parse_trace("h0 open 0\nh0 write 64\nh0 write 64\nh0 close 0\n")?;
/// let copy = mutate(&base, &MutationConfig::default(), 1);
/// // blocks stay balanced under every mutation
/// assert_eq!(
///     copy.count_kind(&kastio_trace::OpKind::Open),
///     copy.count_kind(&kastio_trace::OpKind::Close),
/// );
/// # Ok(())
/// # }
/// ```
pub fn mutate(trace: &Trace, config: &MutationConfig, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops: Vec<Operation> = trace.iter().cloned().collect();
    if config.kinds.is_empty() {
        return trace.clone();
    }
    for _ in 0..config.mutations {
        let candidates = substantive_indices(&ops);
        let kind = config.kinds[rng.gen_range(0..config.kinds.len())];
        match kind {
            MutationKind::DuplicateOp => {
                if let Some(&at) = pick(&mut rng, &candidates) {
                    let op = ops[at].clone();
                    ops.insert(at, op);
                }
            }
            MutationKind::DropOp => {
                if candidates.len() > 1 {
                    if let Some(&at) = pick(&mut rng, &candidates) {
                        ops.remove(at);
                    }
                }
            }
            MutationKind::DuplicateBlock => {
                let spans = block_spans(&ops);
                if let Some(&(start, end)) = pick(&mut rng, &spans) {
                    let copy: Vec<Operation> = ops[start..=end].to_vec();
                    let insert_at = end + 1;
                    for (k, op) in copy.into_iter().enumerate() {
                        ops.insert(insert_at + k, op);
                    }
                }
            }
            MutationKind::PerturbBytes => {
                if let Some(&at) = pick(&mut rng, &candidates) {
                    let op = &mut ops[at];
                    if op.kind.carries_bytes() && op.bytes > 0 {
                        let span = (op.bytes * config.max_byte_delta_percent as u64 / 100).max(1);
                        let delta = rng.gen_range(0..=2 * span) as i64 - span as i64;
                        op.bytes = (op.bytes as i64 + delta).max(1) as u64;
                    }
                }
            }
            MutationKind::InsertFsync => {
                if let Some(&at) = pick(&mut rng, &candidates) {
                    let handle = ops[at].handle;
                    ops.insert(at + 1, Operation::control(handle, OpKind::Fsync));
                }
            }
        }
    }
    ops.into_iter().collect()
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;

    fn base() -> Trace {
        parse_trace("h0 open 0\nh0 write 64\nh0 write 64\nh0 write 64\nh0 read 32\nh0 close 0\n")
            .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MutationConfig::default();
        assert_eq!(mutate(&base(), &cfg, 9), mutate(&base(), &cfg, 9));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let cfg = MutationConfig::default();
        let copies: Vec<Trace> = (0..4).map(|s| mutate(&base(), &cfg, s)).collect();
        let distinct: std::collections::HashSet<String> =
            copies.iter().map(kastio_trace::write_trace).collect();
        assert!(distinct.len() >= 2, "mutants should not all coincide");
    }

    #[test]
    fn weight_only_mix_never_invents_byte_values_or_op_kinds() {
        let cfg = MutationConfig { mutations: 25, ..MutationConfig::weight_only() };
        let copy = mutate(&base(), &cfg, 3);
        let bytes: std::collections::HashSet<u64> = base().iter().map(|o| o.bytes).collect();
        for op in &copy {
            assert!(bytes.contains(&op.bytes), "unexpected byte value {}", op.bytes);
            assert!(!matches!(op.kind, OpKind::Fsync));
        }
    }

    #[test]
    fn duplicate_block_keeps_pairing() {
        let cfg = MutationConfig {
            mutations: 5,
            kinds: vec![MutationKind::DuplicateBlock],
            max_byte_delta_percent: 10,
        };
        let copy = mutate(&base(), &cfg, 3);
        assert_eq!(
            copy.count_kind(&OpKind::Open),
            copy.count_kind(&OpKind::Close),
            "blocks stay balanced"
        );
        assert!(copy.count_kind(&OpKind::Open) > 1);
    }

    #[test]
    fn perturb_bytes_changes_a_value() {
        let cfg = MutationConfig {
            mutations: 8,
            kinds: vec![MutationKind::PerturbBytes],
            max_byte_delta_percent: 10,
        };
        let copy = mutate(&base(), &cfg, 1);
        assert_ne!(copy, base(), "at least one byte value should move");
    }

    #[test]
    fn insert_fsync_adds_fsync() {
        let cfg = MutationConfig {
            mutations: 1,
            kinds: vec![MutationKind::InsertFsync],
            max_byte_delta_percent: 10,
        };
        let copy = mutate(&base(), &cfg, 1);
        assert_eq!(copy.count_kind(&OpKind::Fsync), 1);
    }

    #[test]
    fn zero_mutations_is_identity() {
        let cfg = MutationConfig { mutations: 0, ..MutationConfig::default() };
        assert_eq!(mutate(&base(), &cfg, 1), base());
    }

    #[test]
    fn empty_kind_pool_is_identity() {
        let cfg = MutationConfig { mutations: 5, kinds: vec![], max_byte_delta_percent: 10 };
        assert_eq!(mutate(&base(), &cfg, 1), base());
    }

    #[test]
    fn empty_trace_is_stable() {
        let cfg = MutationConfig::default();
        assert_eq!(mutate(&Trace::new(), &cfg, 1), Trace::new());
    }

    #[test]
    fn delimiters_are_preserved_under_aggressive_mix() {
        let cfg = MutationConfig { mutations: 20, ..MutationConfig::aggressive() };
        let copy = mutate(&base(), &cfg, 3);
        assert_eq!(copy.count_kind(&OpKind::Open), copy.count_kind(&OpKind::Close));
    }
}
