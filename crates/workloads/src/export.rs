//! Writing datasets to (and reading them back from) plain trace files.
//!
//! The paper's input is a directory of plain-text trace files, one per
//! example. This module materialises a generated [`Dataset`] in exactly
//! that form — one `<name>.trace` file per example plus a `MANIFEST`
//! mapping names to categories — so external tooling (or a sceptical
//! reader) can inspect the corpus, and so the pipeline can be run on
//! traces that never came from the generators.
//!
//! The directory walk itself lives in [`kastio_trace::corpus`] (the
//! corpus index persists through the same layout); this module only adds
//! the category interpretation of the manifest tag.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::Path;

use kastio_trace::{
    load_manifest_trace, read_manifest, write_corpus, CorpusIoError, ParseTraceError,
};

use crate::category::Category;
use crate::dataset::{Dataset, Example};

/// Errors arising while exporting or importing a dataset directory.
#[derive(Debug)]
pub enum DatasetIoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A trace file failed to parse.
    Parse {
        /// The file that failed.
        file: String,
        /// The underlying parse error.
        source: ParseTraceError,
    },
    /// The manifest was malformed at the given line (wrong field count or
    /// an unknown category tag).
    BadManifest {
        /// 1-based manifest line number.
        line: usize,
    },
    /// The manifest references a trace file that does not exist.
    MissingTrace {
        /// The missing example name.
        name: String,
    },
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "dataset io: {e}"),
            DatasetIoError::Parse { file, source } => {
                write!(f, "trace file {file} failed to parse: {source}")
            }
            DatasetIoError::BadManifest { line } => {
                write!(f, "manifest line {line} is malformed (expected `<name> <A|B|C|D>`)")
            }
            DatasetIoError::MissingTrace { name } => {
                write!(f, "manifest references missing trace `{name}`")
            }
        }
    }
}

impl Error for DatasetIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetIoError::Io(e) => Some(e),
            DatasetIoError::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetIoError {
    fn from(e: io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

impl From<CorpusIoError> for DatasetIoError {
    fn from(e: CorpusIoError) -> Self {
        match e {
            CorpusIoError::Io(e) => DatasetIoError::Io(e),
            CorpusIoError::Parse { file, source } => DatasetIoError::Parse { file, source },
            CorpusIoError::BadManifest { line } => DatasetIoError::BadManifest { line },
            CorpusIoError::MissingTrace { name } => DatasetIoError::MissingTrace { name },
            // Generated example names/tags are always writable; surface
            // the (hand-crafted-dataset) edge as an invalid-input IO error.
            e @ CorpusIoError::BadEntry { .. } => {
                DatasetIoError::Io(io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
            }
        }
    }
}

fn category_from_tag(tag: &str) -> Option<Category> {
    match tag {
        "A" => Some(Category::FlashIo),
        "B" => Some(Category::RandomPosix),
        "C" => Some(Category::NormalIo),
        "D" => Some(Category::RandomAccess),
        _ => None,
    }
}

/// Writes every example of `dataset` into `dir` as `<name>.trace` files
/// plus a `MANIFEST` of `<name> <category-tag>` lines.
///
/// The directory is created if missing; existing files are overwritten.
///
/// # Errors
///
/// Returns [`DatasetIoError::Io`] on any filesystem failure.
pub fn export_dataset(dataset: &Dataset, dir: &Path) -> Result<(), DatasetIoError> {
    let tags: Vec<String> = dataset.iter().map(|e| e.category.tag().to_string()).collect();
    write_corpus(
        dir,
        dataset.iter().zip(&tags).map(|(e, tag)| (e.name.as_str(), tag.as_str(), &e.trace)),
    )?;
    Ok(())
}

/// Reads a dataset previously written by [`export_dataset`] (or assembled
/// by hand in the same layout).
///
/// # Errors
///
/// * [`DatasetIoError::Io`] on filesystem failures;
/// * [`DatasetIoError::BadManifest`] for malformed manifest lines and
///   unknown category tags;
/// * [`DatasetIoError::MissingTrace`] if a manifest entry has no file;
/// * [`DatasetIoError::Parse`] if a trace file is malformed.
pub fn import_dataset(dir: &Path) -> Result<Dataset, DatasetIoError> {
    // Validate every manifest line (shape and category tag) before any
    // trace file is read, so a bad manifest fails fast as BadManifest.
    let manifest = read_manifest(dir)?;
    let categories = manifest
        .iter()
        .map(|entry| {
            category_from_tag(&entry.tag).ok_or(DatasetIoError::BadManifest { line: entry.line })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut examples = Vec::new();
    for (entry, category) in manifest.into_iter().zip(categories) {
        let trace = load_manifest_trace(dir, &entry.name)?;
        examples.push(Example { name: entry.name, category, trace });
    }
    Ok(Dataset::from_examples(examples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetShape;
    use std::fs;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kastio-export-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = tmpdir("roundtrip");
        let ds = Dataset::generate(DatasetShape::small(), 3);
        export_dataset(&ds, &dir).unwrap();
        let back = import_dataset(&dir).unwrap();
        assert_eq!(back, ds);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_lists_all_examples() {
        let dir = tmpdir("manifest");
        let ds = Dataset::generate(DatasetShape::small(), 4);
        export_dataset(&ds, &dir).unwrap();
        let manifest = fs::read_to_string(dir.join("MANIFEST")).unwrap();
        assert_eq!(manifest.lines().count(), ds.len());
        assert!(manifest.contains("A00 A"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_manifest_line_is_reported() {
        let dir = tmpdir("badline");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "X00 A extra-field\n").unwrap();
        let err = import_dataset(&dir).unwrap_err();
        assert!(matches!(err, DatasetIoError::BadManifest { line: 1 }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_category_tag_is_reported() {
        // No trace file on disk: the tag must be rejected before any
        // trace read is attempted.
        let dir = tmpdir("badtag");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "# header\nX00 Z\n").unwrap();
        assert!(matches!(
            import_dataset(&dir).unwrap_err(),
            DatasetIoError::BadManifest { line: 2 }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_trace_is_reported() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "X00 A\n").unwrap();
        let err = import_dataset(&dir).unwrap_err();
        assert!(matches!(err, DatasetIoError::MissingTrace { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_trace_is_reported_with_file_name() {
        let dir = tmpdir("badtrace");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "X00 B\n").unwrap();
        fs::write(dir.join("X00.trace"), "not a trace line\n").unwrap();
        let err = import_dataset(&dir).unwrap_err();
        assert!(err.to_string().contains("X00.trace"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
