//! The labelled evaluation dataset of §4.1.
//!
//! "So, from 22 examples we ended up with 110, distributed as follows:
//! (A) 50 examples, (B) 20 examples, (C) 20 examples and (D) 20 examples."
//! That is 10 base examples for A and 4 each for B, C and D, each base
//! accompanied by 4 mutated synthetic copies.

use kastio_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::category::Category;
use crate::generators::{
    flash_io, ior_random_access, ior_sequential, random_posix, FlashIoParams, IorParams,
    RandomPosixParams,
};
#[allow(unused_imports)] // referenced by doc links
use crate::mutate::MutationKind;
use crate::mutate::{mutate, MutationConfig};

/// One labelled example: a trace plus its ground-truth category.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Human-readable name, e.g. `A03.m2` (base 3 of category A, mutant 2).
    pub name: String,
    /// Ground-truth category.
    pub category: Category,
    /// The recorded trace.
    pub trace: Trace,
}

/// Shape of a dataset: how many base examples per category and how many
/// mutated copies accompany each base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetShape {
    /// Base examples for category A (Flash I/O).
    pub bases_a: usize,
    /// Base examples for category B (Random POSIX I/O).
    pub bases_b: usize,
    /// Base examples for category C (Normal I/O).
    pub bases_c: usize,
    /// Base examples for category D (Random Access I/O).
    pub bases_d: usize,
    /// Mutated copies per base (the paper uses 4).
    pub copies: usize,
}

impl DatasetShape {
    /// The paper's shape: 10+4+4+4 bases × (1 + 4 copies) = 110 examples.
    pub fn paper() -> Self {
        DatasetShape { bases_a: 10, bases_b: 4, bases_c: 4, bases_d: 4, copies: 4 }
    }

    /// A reduced shape for fast tests (2 bases per category, 1 copy).
    pub fn small() -> Self {
        DatasetShape { bases_a: 2, bases_b: 2, bases_c: 2, bases_d: 2, copies: 1 }
    }

    /// Total number of examples the shape produces.
    pub fn total(&self) -> usize {
        (self.bases_a + self.bases_b + self.bases_c + self.bases_d) * (1 + self.copies)
    }
}

/// The labelled dataset.
///
/// # Examples
///
/// ```
/// use kastio_workloads::{Dataset, DatasetShape};
///
/// let ds = Dataset::generate(DatasetShape::small(), 42);
/// assert_eq!(ds.len(), DatasetShape::small().total());
/// assert_eq!(ds.labels().len(), ds.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    examples: Vec<Example>,
}

impl Dataset {
    /// Assembles a dataset from pre-built examples (used by the trace-file
    /// importer and by tests that hand-craft corpora).
    pub fn from_examples(examples: Vec<Example>) -> Dataset {
        Dataset { examples }
    }

    /// Generates the paper's 110-example dataset deterministically from a
    /// seed.
    pub fn paper(seed: u64) -> Dataset {
        Dataset::generate(DatasetShape::paper(), seed)
    }

    /// Generates a dataset of the given shape, deterministically, with the
    /// default mutation mix ([`MutationKind::PAPER`]).
    pub fn generate(shape: DatasetShape, seed: u64) -> Dataset {
        Dataset::generate_with(shape, seed, &MutationConfig::default())
    }

    /// Generates a dataset with an explicit mutation configuration — used
    /// by the noise-sensitivity ablation, which compares kernels on copies
    /// produced with the literal-changing mutation kinds.
    pub fn generate_with(shape: DatasetShape, seed: u64, mutation: &MutationConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::with_capacity(shape.total());

        let emit = |examples: &mut Vec<Example>,
                    rng: &mut StdRng,
                    category: Category,
                    base_idx: usize,
                    base: Trace| {
            examples.push(Example {
                name: format!("{}{:02}", category.tag(), base_idx),
                category,
                trace: base.clone(),
            });
            for copy in 1..=shape.copies {
                let mutant = mutate(&base, mutation, rng.gen());
                examples.push(Example {
                    name: format!("{}{:02}.m{}", category.tag(), base_idx, copy),
                    category,
                    trace: mutant,
                });
            }
        };

        // Category A varies run shape (file count, block count) but shares
        // one byte palette: FLASH always writes the same record structure,
        // and the shared palette is what makes the category cohere once
        // compression folds each file's writes into a single token.
        for i in 0..shape.bases_a {
            let params = FlashIoParams {
                // FLASH emits a checkpoint plus several plot files per
                // run; the repeated HANDLE/BLOCK structure is what sets A
                // apart from the single-file categories.
                files: 4 + 2 * (i % 3),
                header_sizes: vec![48, 655, 48, 16],
                block_size: 524_288,
                blocks: 16 + 4 * (i % 5),
            };
            emit(&mut examples, &mut rng, Category::FlashIo, i, flash_io(&params));
        }

        for i in 0..shape.bases_b {
            let params = RandomPosixParams {
                write_iterations: 48 + 16 * (i % 4),
                read_iterations: 48 + 16 * (i % 4),
                read_bursts: 2 + (i % 3),
                transfer_size: 8_192,
                file_size: 1 << 22,
            };
            let trace = random_posix(&params, rng.gen());
            emit(&mut examples, &mut rng, Category::RandomPosix, i, trace);
        }

        for i in 0..shape.bases_c {
            let params = IorParams {
                transfer_size: 262_144,
                write_transfers: 24 + 8 * (i % 4),
                read_transfers: 24 + 8 * (i % 4),
            };
            emit(&mut examples, &mut rng, Category::NormalIo, i, ior_sequential(&params));
        }

        for i in 0..shape.bases_d {
            let params = IorParams {
                transfer_size: 262_144,
                write_transfers: 24 + 8 * (i % 4),
                read_transfers: 24 + 8 * (i % 4),
            };
            let trace = ior_random_access(&params, 2 + i % 3, rng.gen());
            emit(&mut examples, &mut rng, Category::RandomAccess, i, trace);
        }

        Dataset { examples }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Iterates over the examples in category order A, B, C, D.
    pub fn iter(&self) -> std::slice::Iter<'_, Example> {
        self.examples.iter()
    }

    /// The examples as a slice.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Ground-truth labels (category indices 0–3), aligned with
    /// [`Dataset::iter`].
    pub fn labels(&self) -> Vec<usize> {
        self.examples.iter().map(|e| e.category.index()).collect()
    }

    /// Example names, aligned with [`Dataset::iter`].
    pub fn names(&self) -> Vec<String> {
        self.examples.iter().map(|e| e.name.clone()).collect()
    }

    /// Number of examples per category, in A–D order.
    pub fn counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for e in &self.examples {
            counts[e.category.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_has_110_examples_distributed_as_in_the_paper() {
        let ds = Dataset::paper(7);
        assert_eq!(ds.len(), 110);
        assert_eq!(ds.counts(), [50, 20, 20, 20]);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Dataset::paper(3), Dataset::paper(3));
        assert_ne!(Dataset::paper(3), Dataset::paper(4));
    }

    #[test]
    fn names_are_unique() {
        let ds = Dataset::generate(DatasetShape::small(), 1);
        let mut names = ds.names();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ds.len());
    }

    #[test]
    fn mutants_stay_close_to_their_base() {
        let ds = Dataset::generate(DatasetShape::small(), 5);
        // First example is a base; the next is its mutant.
        let base = &ds.examples()[0];
        let mutant = &ds.examples()[1];
        assert_eq!(base.category, mutant.category);
        assert!(mutant.name.starts_with(&base.name));
        // Weight-only mutations keep the op-kind vocabulary identical and
        // the size within a small multiple (block duplication may add a
        // whole open…close span).
        let kinds = |t: &kastio_trace::Trace| -> std::collections::BTreeSet<String> {
            t.iter().map(|o| o.kind.name().to_string()).collect()
        };
        assert_eq!(kinds(&base.trace), kinds(&mutant.trace));
        assert!(mutant.trace.len() <= 2 * base.trace.len() + 4);
    }

    #[test]
    fn labels_align_with_categories() {
        let ds = Dataset::generate(DatasetShape::small(), 2);
        for (e, &l) in ds.iter().zip(ds.labels().iter()) {
            assert_eq!(e.category.index(), l);
        }
    }
}
