//! Synthetic workload generators and the labelled evaluation dataset.
//!
//! The paper takes its access patterns "from two different parallel I/O
//! benchmarks" — IOR \[14\] and FLASH-IO \[15\] — run against a real parallel
//! file system. This crate substitutes deterministic, seeded programs
//! executed against the simulated POSIX layer of [`kastio_trace`]; the
//! substitution argument is spelled out in DESIGN.md §5.
//!
//! * [`generators`] — one program per category: FLASH-IO-style checkpoint
//!   writing (A), random seek-then-transfer loops (B), IOR sequential
//!   write/read phases (C), IOR random-access re-reads (D).
//! * [`mutate`] — the "small mutations" behind the paper's 4 synthetic
//!   copies per base example.
//! * [`Dataset`] — the 110-example labelled dataset (A=50, B=20, C=20,
//!   D=20).
//!
//! # Examples
//!
//! ```
//! use kastio_workloads::{Category, Dataset, DatasetShape};
//!
//! let ds = Dataset::generate(DatasetShape::small(), 42);
//! let first = &ds.examples()[0];
//! assert_eq!(first.category, Category::FlashIo);
//! assert!(!first.trace.is_empty());
//! ```

pub mod category;
pub mod dataset;
pub mod export;
pub mod generators;
pub mod mutate;

pub use category::Category;
pub use dataset::{Dataset, DatasetShape, Example};
pub use export::{export_dataset, import_dataset, DatasetIoError};
pub use generators::{FlashIoParams, IorParams, RandomPosixParams};
pub use mutate::{MutationConfig, MutationKind};
