//! The four access-pattern categories of the paper's evaluation (§4.1).

use std::fmt;

/// The four forms of accessing storage evaluated in the paper.
///
/// "(A) were those using Flash I/O, (B) were the ones using Random POSIX
/// I/O, (C) were those using Normal I/O and (D) the ones using Random
/// Access I/O."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// FLASH-IO style checkpoint/plot writing: runs of contiguous writes
    /// with byte values "not present in the other categories".
    FlashIo,
    /// Random POSIX I/O: seek-then-transfer loops — "lseek operations not
    /// seen elsewhere".
    RandomPosix,
    /// Normal (sequential) I/O: an IOR-style write phase then read phase.
    NormalIo,
    /// Random Access I/O: positional reads without explicit seeks —
    /// "shared roughly the same pattern" as Normal I/O.
    RandomAccess,
}

impl Category {
    /// All categories in the paper's A–D order.
    pub const ALL: [Category; 4] =
        [Category::FlashIo, Category::RandomPosix, Category::NormalIo, Category::RandomAccess];

    /// The paper's single-letter tag.
    pub fn tag(self) -> char {
        match self {
            Category::FlashIo => 'A',
            Category::RandomPosix => 'B',
            Category::NormalIo => 'C',
            Category::RandomAccess => 'D',
        }
    }

    /// Dense index (0–3) in A–D order, usable as a ground-truth label.
    pub fn index(self) -> usize {
        match self {
            Category::FlashIo => 0,
            Category::RandomPosix => 1,
            Category::NormalIo => 2,
            Category::RandomAccess => 3,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::FlashIo => "Flash I/O",
            Category::RandomPosix => "Random POSIX I/O",
            Category::NormalIo => "Normal I/O",
            Category::RandomAccess => "Random Access I/O",
        };
        write!(f, "({}) {}", self.tag(), name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_indices_are_consistent() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let tags: String = Category::ALL.iter().map(|c| c.tag()).collect();
        assert_eq!(tags, "ABCD");
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(Category::FlashIo.to_string(), "(A) Flash I/O");
        assert_eq!(Category::RandomAccess.to_string(), "(D) Random Access I/O");
    }
}
