//! Write-ahead-log record format and the durable corpus directory layout.
//!
//! The serve daemon's WAL (see `kastio-index`) appends one record per
//! acknowledged ingest to `<dir>/wal/shard<i>.log`. This module owns the
//! *format* — everything that must survive a process boundary — so that
//! the encoder, the recovery scanner and the property tests all live next
//! to the text format they reuse:
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload[len]
//! payload := "<id> <name> <label>\n" ++ write_trace(trace)
//! ```
//!
//! `len` counts payload bytes only; `crc` is the IEEE CRC-32 (the
//! zlib/PNG polynomial, reflected) of the payload. The payload reuses the
//! lossless plain-text trace format, so a WAL record round-trips exactly
//! like a corpus file does.
//!
//! **Torn tails are data, not errors.** A crash mid-append leaves a
//! truncated or garbage tail; [`scan_wal`] decodes the longest valid
//! prefix and *stops* at the first record whose length is implausible,
//! whose CRC mismatches, or whose payload does not parse — it never
//! panics and never yields a record past the corruption point. The byte
//! offset of that durable prefix is reported so recovery can truncate.

use std::path::{Path, PathBuf};

use crate::text::{parse_trace, write_trace};
use crate::trace::Trace;

/// Byte overhead of a record frame: `len` + `crc`.
pub const WAL_HEADER_BYTES: usize = 8;

/// Upper bound on a record payload. Anything larger than this in a `len`
/// field is treated as corruption rather than attempted as an
/// allocation: the daemon's own 16 MiB request-line cap keeps legitimate
/// records far below it.
pub const MAX_WAL_RECORD_BYTES: u32 = 64 << 20;

/// One acknowledged ingest, as persisted to (and recovered from) a WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Corpus entry id (ingestion order; placement is `id % shards`).
    pub id: u32,
    /// Entry name (validated by [`crate::valid_entry_name`] at ingest).
    pub name: String,
    /// Entry label (validated by [`crate::valid_entry_tag`] at ingest).
    pub label: String,
    /// The ingested trace itself.
    pub trace: Trace,
}

/// Result of scanning one WAL shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every record in the longest valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of that prefix — the truncation point for a torn tail.
    pub durable_bytes: u64,
    /// Whether bytes past `durable_bytes` existed (a torn/corrupt tail).
    pub truncated: bool,
}

/// IEEE reflected CRC-32 (polynomial 0xEDB88320), bit-serial.
///
/// Hand-rolled because the workspace is offline; WAL records are small
/// and appended once, so a table-free implementation is fast enough.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The WAL subdirectory of a durable corpus directory.
#[must_use]
pub fn wal_dir(dir: &Path) -> PathBuf {
    dir.join("wal")
}

/// The snapshot subdirectory of a durable corpus directory.
///
/// With a WAL the snapshot cannot be the directory itself: snapshots are
/// atomic whole-directory swaps, and swapping `<dir>` would unlink the
/// live logs under `<dir>/wal`. The swapped unit is `<dir>/snapshot`
/// instead, and the WAL files stay at stable paths for their whole life.
#[must_use]
pub fn snapshot_dir(dir: &Path) -> PathBuf {
    dir.join("snapshot")
}

/// The log file of shard `shard` under `dir`'s WAL subdirectory.
#[must_use]
pub fn wal_shard_path(dir: &Path, shard: usize) -> PathBuf {
    wal_dir(dir).join(format!("shard{shard}.log"))
}

/// Encodes one record as a framed byte string ready to append.
#[must_use]
pub fn encode_wal_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = format!("{} {} {}\n", record.id, record.name, record.label).into_bytes();
    payload.extend_from_slice(write_trace(&record.trace).as_bytes());
    let len = u32::try_from(payload.len()).expect("WAL payloads fit in u32");
    let crc = crc32(&payload);
    let mut out = Vec::with_capacity(WAL_HEADER_BYTES + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one payload back into a record. `None` on any malformation —
/// scanning treats an undecodable payload exactly like a CRC mismatch.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let (header, trace_text) = text.split_once('\n')?;
    let mut fields = header.splitn(3, ' ');
    let id: u32 = fields.next()?.parse().ok()?;
    let name = fields.next()?.to_string();
    let label = fields.next()?.to_string();
    if name.is_empty() || label.is_empty() {
        return None;
    }
    let trace = parse_trace(trace_text).ok()?;
    Some(WalRecord { id, name, label, trace })
}

/// Scans a WAL shard file's bytes into the longest valid record prefix.
///
/// Never panics on arbitrary input. Stops — reporting `truncated` — at
/// the first frame that is incomplete, claims an implausible length,
/// fails its CRC, or carries an unparseable payload. Records past such a
/// point are *never* returned, even if later bytes happen to frame
/// correctly: group commit means nothing after a torn record was ever
/// acknowledged.
#[must_use]
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return WalScan { records, durable_bytes: offset as u64, truncated: false };
        }
        if rest.len() < WAL_HEADER_BYTES {
            return WalScan { records, durable_bytes: offset as u64, truncated: true };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_WAL_RECORD_BYTES {
            return WalScan { records, durable_bytes: offset as u64, truncated: true };
        }
        let len = len as usize;
        let Some(payload) = rest.get(WAL_HEADER_BYTES..WAL_HEADER_BYTES + len) else {
            return WalScan { records, durable_bytes: offset as u64, truncated: true };
        };
        if crc32(payload) != crc {
            return WalScan { records, durable_bytes: offset as u64, truncated: true };
        }
        let Some(record) = decode_payload(payload) else {
            return WalScan { records, durable_bytes: offset as u64, truncated: true };
        };
        records.push(record);
        offset += WAL_HEADER_BYTES + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u32) -> WalRecord {
        let trace = parse_trace("h0 open 0\nh0 write 4096\nh0 close 0").unwrap();
        WalRecord { id, name: format!("e{id}"), label: "ckpt".to_string(), trace }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_then_scan_roundtrips() {
        let records: Vec<WalRecord> = (0..5).map(sample).collect();
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&encode_wal_record(record));
        }
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.durable_bytes, bytes.len() as u64);
        assert!(!scan.truncated);
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = scan_wal(&[]);
        assert!(scan.records.is_empty());
        assert_eq!(scan.durable_bytes, 0);
        assert!(!scan.truncated);
    }

    #[test]
    fn torn_tail_truncates_to_the_durable_prefix() {
        let mut bytes = encode_wal_record(&sample(0));
        let durable = bytes.len() as u64;
        let torn = encode_wal_record(&sample(1));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, vec![sample(0)]);
        assert_eq!(scan.durable_bytes, durable);
        assert!(scan.truncated);
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_flipped_record() {
        let mut bytes = encode_wal_record(&sample(0));
        let durable = bytes.len() as u64;
        bytes.extend_from_slice(&encode_wal_record(&sample(1)));
        bytes.extend_from_slice(&encode_wal_record(&sample(2)));
        // Flip a payload bit in record 1: records 1 AND 2 must both be
        // dropped, even though record 2's frame is intact.
        let flip_at = durable as usize + WAL_HEADER_BYTES + 3;
        bytes[flip_at] ^= 0x10;
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, vec![sample(0)]);
        assert_eq!(scan.durable_bytes, durable);
        assert!(scan.truncated);
    }

    #[test]
    fn implausible_length_is_corruption_not_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let scan = scan_wal(&bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.durable_bytes, 0);
        assert!(scan.truncated);
    }

    #[test]
    fn layout_helpers_compose_under_the_corpus_dir() {
        let dir = Path::new("/var/corpus");
        assert_eq!(wal_dir(dir), Path::new("/var/corpus/wal"));
        assert_eq!(snapshot_dir(dir), Path::new("/var/corpus/snapshot"));
        assert_eq!(wal_shard_path(dir, 3), Path::new("/var/corpus/wal/shard3.log"));
    }
}
