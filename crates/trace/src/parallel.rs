//! Multi-process (parallel) traces.
//!
//! The paper's subject is *parallel* I/O: an application runs as several
//! MPI ranks, each producing its own operation stream against a parallel
//! file system (§2.1). A [`ParallelTrace`] keeps the per-rank streams and
//! can merge them into the single chronological trace the string pipeline
//! consumes — with the handle spaces of different ranks kept disjoint, so
//! rank 0's file 0 and rank 1's file 0 stay distinguishable (file-per-
//! process) or are unified (shared-file), as the workload dictates.

use crate::op::{HandleId, Operation};
use crate::trace::Trace;

/// How per-rank handle spaces relate when merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandleMerge {
    /// Each rank accesses its own files (IOR "file-per-process"): handle
    /// `h` of rank `r` becomes a fresh handle distinct from every other
    /// rank's.
    #[default]
    FilePerProcess,
    /// All ranks access the same files (IOR "shared file"): handle `h` of
    /// every rank maps to the same merged handle `h`.
    SharedFile,
}

/// A trace per rank of a parallel application run.
///
/// # Examples
///
/// ```
/// use kastio_trace::{parse_trace, HandleMerge, ParallelTrace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rank0 = parse_trace("h0 open 0\nh0 write 64\nh0 close 0\n")?;
/// let rank1 = parse_trace("h0 open 0\nh0 write 64\nh0 close 0\n")?;
/// let parallel = ParallelTrace::new(vec![rank0, rank1]);
///
/// let fpp = parallel.merge(HandleMerge::FilePerProcess);
/// assert_eq!(fpp.handles().len(), 2, "two distinct files");
///
/// let shared = parallel.merge(HandleMerge::SharedFile);
/// assert_eq!(shared.handles().len(), 1, "one shared file");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParallelTrace {
    ranks: Vec<Trace>,
}

impl ParallelTrace {
    /// Creates a parallel trace from per-rank traces (rank = index).
    pub fn new(ranks: Vec<Trace>) -> Self {
        ParallelTrace { ranks }
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Whether there are no ranks.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The trace of one rank.
    pub fn rank(&self, r: usize) -> Option<&Trace> {
        self.ranks.get(r)
    }

    /// Iterates over the per-rank traces.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.ranks.iter()
    }

    /// Merges the ranks into one chronological trace by round-robin
    /// interleaving (one operation per rank per round — the conventional
    /// stand-in for wall-clock interleaving when traces carry no
    /// timestamps).
    ///
    /// Handle identity follows `merge`: with
    /// [`HandleMerge::FilePerProcess`] rank `r`'s handle `h` becomes
    /// `h * R + r` (R = rank count), guaranteeing disjoint handle spaces;
    /// with [`HandleMerge::SharedFile`] handles pass through unchanged.
    pub fn merge(&self, merge: HandleMerge) -> Trace {
        let r_count = self.ranks.len() as u32;
        let mut cursors: Vec<std::slice::Iter<'_, Operation>> =
            self.ranks.iter().map(|t| t.iter()).collect();
        let mut out = Trace::new();
        let mut exhausted = 0;
        while exhausted < cursors.len() {
            exhausted = 0;
            for (r, cursor) in cursors.iter_mut().enumerate() {
                match cursor.next() {
                    Some(op) => {
                        let handle = match merge {
                            HandleMerge::SharedFile => op.handle,
                            HandleMerge::FilePerProcess => {
                                HandleId::new(op.handle.index() * r_count + r as u32)
                            }
                        };
                        out.push(Operation::new(handle, op.kind.clone(), op.bytes));
                    }
                    None => exhausted += 1,
                }
            }
        }
        out
    }

    /// Total operations across all ranks.
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|t| t.len()).sum()
    }
}

impl FromIterator<Trace> for ParallelTrace {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        ParallelTrace { ranks: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::text::parse_trace;

    fn rank(ops: &str) -> Trace {
        parse_trace(ops).expect("test trace parses")
    }

    #[test]
    fn round_robin_interleaves() {
        let p = ParallelTrace::new(vec![
            rank("h0 write 1\nh0 write 2\n"),
            rank("h0 write 10\nh0 write 20\n"),
        ]);
        let merged = p.merge(HandleMerge::SharedFile);
        let bytes: Vec<u64> = merged.iter().map(|o| o.bytes).collect();
        assert_eq!(bytes, vec![1, 10, 2, 20]);
    }

    #[test]
    fn file_per_process_separates_handles() {
        let p = ParallelTrace::new(vec![rank("h0 write 1\n"), rank("h0 write 2\n")]);
        let merged = p.merge(HandleMerge::FilePerProcess);
        assert_eq!(merged.handles().len(), 2);
    }

    #[test]
    fn shared_file_unifies_handles() {
        let p = ParallelTrace::new(vec![rank("h0 write 1\n"), rank("h0 write 2\n")]);
        let merged = p.merge(HandleMerge::SharedFile);
        assert_eq!(merged.handles().len(), 1);
    }

    #[test]
    fn uneven_rank_lengths_drain_fully() {
        let p = ParallelTrace::new(vec![
            rank("h0 write 1\nh0 write 2\nh0 write 3\n"),
            rank("h0 read 9\n"),
        ]);
        let merged = p.merge(HandleMerge::SharedFile);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.count_kind(&OpKind::Read), 1);
        assert_eq!(p.total_ops(), 4);
    }

    #[test]
    fn file_per_process_keeps_per_rank_handle_spaces_disjoint() {
        // Two ranks each using two files must produce four handles.
        let p = ParallelTrace::new(vec![
            rank("h0 write 1\nh1 write 2\n"),
            rank("h0 write 3\nh1 write 4\n"),
        ]);
        let merged = p.merge(HandleMerge::FilePerProcess);
        assert_eq!(merged.handles().len(), 4);
    }

    #[test]
    fn empty_parallel_trace() {
        let p = ParallelTrace::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.merge(HandleMerge::FilePerProcess), Trace::new());
        assert_eq!(ParallelTrace::default().rank_count(), 0);
    }

    #[test]
    fn rank_accessors() {
        let p: ParallelTrace = vec![rank("h0 write 1\n")].into_iter().collect();
        assert_eq!(p.rank_count(), 1);
        assert_eq!(p.rank(0).unwrap().len(), 1);
        assert!(p.rank(5).is_none());
        assert_eq!(p.iter().count(), 1);
    }
}
