//! A simulated POSIX file layer that records traces.
//!
//! The paper captures traces from real applications running on a parallel
//! file system; we substitute a deterministic in-memory simulation. The
//! downstream pipeline only consumes the recorded operation sequence, so
//! the simulation needs to be *behaviourally* faithful: files have sizes,
//! descriptors have offsets, reads cannot cross EOF, seeks move offsets —
//! which is enough for the workload generators to express the four access
//! forms of §4.1 as little programs instead of hand-written token lists.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::op::{HandleId, OpKind, Operation};
use crate::trace::Trace;

/// A file descriptor handed out by [`SimFs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(u32);

impl Fd {
    /// Returns the raw descriptor number.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Origin of an [`SimFs::lseek`] displacement, mirroring POSIX `whence`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekWhence {
    /// Seek to an absolute position (`SEEK_SET`).
    Set,
    /// Seek relative to the current offset (`SEEK_CUR`).
    Cur,
    /// Seek relative to the end of file (`SEEK_END`).
    End,
}

/// Errors raised by the simulated file layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFsError {
    /// The descriptor is not open.
    BadFd(Fd),
    /// A seek would move the offset before the start of the file.
    NegativeOffset {
        /// The descriptor being seeked.
        fd: Fd,
        /// The requested (invalid) displacement.
        requested: i64,
    },
}

impl fmt::Display for SimFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFsError::BadFd(fd) => write!(f, "descriptor {fd} is not open"),
            SimFsError::NegativeOffset { fd, requested } => {
                write!(f, "seek on {fd} to negative offset {requested}")
            }
        }
    }
}

impl Error for SimFsError {}

#[derive(Debug, Clone, Default)]
struct FileState {
    size: u64,
}

#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    handle: HandleId,
    offset: u64,
}

/// A simulated POSIX I/O layer with built-in trace recording.
///
/// Every call appends the corresponding [`Operation`] to an internal
/// [`Trace`]. Handles are assigned per *logical file*: re-opening the same
/// path reuses the handle id of the first open, matching how trace analyses
/// identify files across open/close blocks.
///
/// # Examples
///
/// ```
/// use kastio_trace::{OpKind, SeekWhence, SimFs};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fs = SimFs::new();
/// let fd = fs.open("checkpoint.dat")?;
/// fs.write(fd, 1 << 20)?;
/// fs.lseek(fd, 0, SeekWhence::Set)?;
/// let got = fs.read(fd, 4096)?;
/// assert_eq!(got, 4096);
/// fs.close(fd)?;
/// let trace = fs.into_trace();
/// assert_eq!(trace.count_kind(&OpKind::Lseek), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: HashMap<String, FileState>,
    handles: HashMap<String, HandleId>,
    open: HashMap<u32, OpenFile>,
    next_fd: u32,
    next_handle: u32,
    trace: Trace,
}

impl SimFs {
    /// Creates an empty simulated file system.
    pub fn new() -> Self {
        SimFs::default()
    }

    fn handle_for(&mut self, path: &str) -> HandleId {
        if let Some(&h) = self.handles.get(path) {
            return h;
        }
        let h = HandleId::new(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(path.to_string(), h);
        h
    }

    fn open_file(&self, fd: Fd) -> Result<&OpenFile, SimFsError> {
        self.open.get(&fd.raw()).ok_or(SimFsError::BadFd(fd))
    }

    fn record(&mut self, handle: HandleId, kind: OpKind, bytes: u64) {
        self.trace.push(Operation::new(handle, kind, bytes));
    }

    /// Opens (creating if necessary) the file at `path`.
    ///
    /// Records an `open` operation and returns a fresh descriptor. The file
    /// offset starts at zero.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for quota/permission
    /// simulation without breaking callers.
    pub fn open(&mut self, path: &str) -> Result<Fd, SimFsError> {
        let handle = self.handle_for(path);
        self.files.entry(path.to_string()).or_default();
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.open.insert(fd.raw(), OpenFile { path: path.to_string(), handle, offset: 0 });
        self.record(handle, OpKind::Open, 0);
        Ok(fd)
    }

    /// Closes `fd`, recording a `close` operation.
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), SimFsError> {
        let of = self.open.remove(&fd.raw()).ok_or(SimFsError::BadFd(fd))?;
        self.record(of.handle, OpKind::Close, 0);
        Ok(())
    }

    /// Writes `bytes` bytes at the current offset, extending the file.
    ///
    /// Returns the number of bytes written (always `bytes`).
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn write(&mut self, fd: Fd, bytes: u64) -> Result<u64, SimFsError> {
        let (handle, path, end) = {
            let of = self.open.get_mut(&fd.raw()).ok_or(SimFsError::BadFd(fd))?;
            of.offset += bytes;
            (of.handle, of.path.clone(), of.offset)
        };
        let file = self.files.get_mut(&path).expect("open file must exist");
        file.size = file.size.max(end);
        self.record(handle, OpKind::Write, bytes);
        Ok(bytes)
    }

    /// Reads up to `bytes` bytes at the current offset.
    ///
    /// Returns the number of bytes actually read, truncated at end of file
    /// exactly like POSIX `read(2)`. A read at or past EOF returns 0 and is
    /// still recorded (with the truncated byte count).
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn read(&mut self, fd: Fd, bytes: u64) -> Result<u64, SimFsError> {
        let (handle, path, offset) = {
            let of = self.open_file(fd)?;
            (of.handle, of.path.clone(), of.offset)
        };
        let size = self.files.get(&path).expect("open file must exist").size;
        let available = size.saturating_sub(offset);
        let got = bytes.min(available);
        if let Some(of) = self.open.get_mut(&fd.raw()) {
            of.offset += got;
        }
        self.record(handle, OpKind::Read, got);
        Ok(got)
    }

    /// Repositions the offset of `fd`, recording an `lseek` operation.
    ///
    /// Returns the new absolute offset.
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] for unknown descriptors and
    /// [`SimFsError::NegativeOffset`] if the resulting offset would be
    /// negative.
    pub fn lseek(&mut self, fd: Fd, offset: i64, whence: SeekWhence) -> Result<u64, SimFsError> {
        let (handle, path, current) = {
            let of = self.open_file(fd)?;
            (of.handle, of.path.clone(), of.offset)
        };
        let size = self.files.get(&path).expect("open file must exist").size;
        let base: i64 = match whence {
            SeekWhence::Set => 0,
            SeekWhence::Cur => current as i64,
            SeekWhence::End => size as i64,
        };
        let target = base + offset;
        if target < 0 {
            return Err(SimFsError::NegativeOffset { fd, requested: target });
        }
        if let Some(of) = self.open.get_mut(&fd.raw()) {
            of.offset = target as u64;
        }
        self.record(handle, OpKind::Lseek, 0);
        Ok(target as u64)
    }

    /// Flushes `fd`, recording an `fsync` operation.
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn fsync(&mut self, fd: Fd) -> Result<(), SimFsError> {
        let handle = self.open_file(fd)?.handle;
        self.record(handle, OpKind::Fsync, 0);
        Ok(())
    }

    /// Queries the descriptor number, recording a negligible `fileno` call.
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn fileno(&mut self, fd: Fd) -> Result<u32, SimFsError> {
        let handle = self.open_file(fd)?.handle;
        self.record(handle, OpKind::Fileno, 0);
        Ok(fd.raw())
    }

    /// Performs a formatted read, recording a negligible `fscanf` call.
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn fscanf(&mut self, fd: Fd, bytes: u64) -> Result<(), SimFsError> {
        let handle = self.open_file(fd)?.handle;
        self.record(handle, OpKind::Fscanf, bytes);
        Ok(())
    }

    /// Current size of the file at `path`, if it exists.
    pub fn file_size(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|f| f.size)
    }

    /// Current offset of an open descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SimFsError::BadFd`] if the descriptor is not open.
    pub fn offset(&self, fd: Fd) -> Result<u64, SimFsError> {
        Ok(self.open_file(fd)?.offset)
    }

    /// Read-only view of the trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the file system and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_write_close_records_block() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        fs.write(fd, 10).unwrap();
        fs.close(fd).unwrap();
        let kinds: Vec<OpKind> = fs.trace().iter().map(|o| o.kind.clone()).collect();
        assert_eq!(kinds, vec![OpKind::Open, OpKind::Write, OpKind::Close]);
    }

    #[test]
    fn reopen_same_path_reuses_handle() {
        let mut fs = SimFs::new();
        let fd1 = fs.open("a").unwrap();
        fs.close(fd1).unwrap();
        let fd2 = fs.open("a").unwrap();
        fs.close(fd2).unwrap();
        let handles = fs.trace().handles();
        assert_eq!(handles.len(), 1);
    }

    #[test]
    fn distinct_paths_get_distinct_handles() {
        let mut fs = SimFs::new();
        let fa = fs.open("a").unwrap();
        let fb = fs.open("b").unwrap();
        fs.close(fa).unwrap();
        fs.close(fb).unwrap();
        assert_eq!(fs.trace().handles().len(), 2);
    }

    #[test]
    fn read_truncates_at_eof() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        fs.write(fd, 100).unwrap();
        fs.lseek(fd, 0, SeekWhence::Set).unwrap();
        assert_eq!(fs.read(fd, 60).unwrap(), 60);
        assert_eq!(fs.read(fd, 60).unwrap(), 40);
        assert_eq!(fs.read(fd, 60).unwrap(), 0);
    }

    #[test]
    fn write_extends_file_and_offset() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        fs.write(fd, 50).unwrap();
        fs.write(fd, 25).unwrap();
        assert_eq!(fs.file_size("a"), Some(75));
        assert_eq!(fs.offset(fd).unwrap(), 75);
    }

    #[test]
    fn lseek_whence_semantics() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        fs.write(fd, 100).unwrap();
        assert_eq!(fs.lseek(fd, 10, SeekWhence::Set).unwrap(), 10);
        assert_eq!(fs.lseek(fd, 5, SeekWhence::Cur).unwrap(), 15);
        assert_eq!(fs.lseek(fd, -20, SeekWhence::End).unwrap(), 80);
    }

    #[test]
    fn lseek_negative_errors() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        let err = fs.lseek(fd, -1, SeekWhence::Set).unwrap_err();
        assert!(matches!(err, SimFsError::NegativeOffset { .. }));
    }

    #[test]
    fn bad_fd_errors() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read(fd, 1), Err(SimFsError::BadFd(fd)));
        assert_eq!(fs.write(fd, 1), Err(SimFsError::BadFd(fd)));
        assert_eq!(fs.close(fd), Err(SimFsError::BadFd(fd)));
        assert!(fs.fsync(fd).is_err());
    }

    #[test]
    fn negligible_calls_are_recorded() {
        let mut fs = SimFs::new();
        let fd = fs.open("a").unwrap();
        fs.fileno(fd).unwrap();
        fs.fscanf(fd, 16).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.trace().count_kind(&OpKind::Fileno), 1);
        assert_eq!(fs.trace().count_kind(&OpKind::Fscanf), 1);
        let filtered = fs.trace().without_negligible();
        assert_eq!(filtered.len(), 2);
    }

    #[test]
    fn interleaved_handles_keep_chronology() {
        let mut fs = SimFs::new();
        let fa = fs.open("a").unwrap();
        let fb = fs.open("b").unwrap();
        fs.write(fa, 1).unwrap();
        fs.write(fb, 2).unwrap();
        fs.write(fa, 3).unwrap();
        fs.close(fb).unwrap();
        fs.close(fa).unwrap();
        let t = fs.into_trace();
        let bytes: Vec<u64> =
            t.iter().filter(|o| o.kind == OpKind::Write).map(|o| o.bytes).collect();
        assert_eq!(bytes, vec![1, 2, 3]);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SimFsError::BadFd(Fd(9));
        assert_eq!(e.to_string(), "descriptor fd9 is not open");
    }
}
