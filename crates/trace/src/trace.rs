//! The [`Trace`] container: a chronological sequence of operations.

use std::collections::BTreeSet;

use crate::op::{HandleId, OpKind, Operation};

/// A chronological I/O trace of one application run.
///
/// The order of operations is significant; with several file handles active
/// at once, operations of the same handle are generally *not* contiguous —
/// that interleaving is exactly why the paper converts traces to trees
/// before flattening them to strings.
///
/// # Examples
///
/// ```
/// use kastio_trace::{HandleId, OpKind, Operation, Trace};
///
/// let mut trace = Trace::new();
/// trace.push(Operation::control(HandleId::new(0), OpKind::Open));
/// trace.push(Operation::new(HandleId::new(0), OpKind::Write, 512));
/// trace.push(Operation::control(HandleId::new(0), OpKind::Close));
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.handles().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<Operation>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { ops: Vec::new() }
    }

    /// Creates an empty trace with room for `capacity` operations.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace { ops: Vec::with_capacity(capacity) }
    }

    /// Appends an operation at the end of the trace.
    pub fn push(&mut self, op: Operation) {
        self.ops.push(op);
    }

    /// Number of operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the operations in chronological order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Returns the operations as a slice.
    pub fn as_slice(&self) -> &[Operation] {
        &self.ops
    }

    /// The set of distinct handles appearing in the trace, in ascending
    /// order of their numeric index.
    pub fn handles(&self) -> Vec<HandleId> {
        let set: BTreeSet<HandleId> = self.ops.iter().map(|op| op.handle).collect();
        set.into_iter().collect()
    }

    /// Returns a copy of the trace with all negligible operations removed.
    ///
    /// This is the first preprocessing step of the paper's pipeline; see
    /// [`OpKind::is_negligible`].
    pub fn without_negligible(&self) -> Trace {
        self.ops.iter().filter(|op| !op.kind.is_negligible()).cloned().collect()
    }

    /// Returns the chronological sub-trace of a single handle.
    ///
    /// The relative order of the handle's operations is preserved.
    pub fn for_handle(&self, handle: HandleId) -> Trace {
        self.ops.iter().filter(|op| op.handle == handle).cloned().collect()
    }

    /// Counts operations of a given kind.
    pub fn count_kind(&self, kind: &OpKind) -> usize {
        self.ops.iter().filter(|op| &op.kind == kind).count()
    }

    /// Consumes the trace and returns the underlying operation vector.
    pub fn into_inner(self) -> Vec<Operation> {
        self.ops
    }
}

impl FromIterator<Operation> for Trace {
    fn from_iter<I: IntoIterator<Item = Operation>>(iter: I) -> Self {
        Trace { ops: iter.into_iter().collect() }
    }
}

impl Extend<Operation> for Trace {
    fn extend<I: IntoIterator<Item = Operation>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = Operation;
    type IntoIter = std::vec::IntoIter<Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl From<Vec<Operation>> for Trace {
    fn from(ops: Vec<Operation>) -> Self {
        Trace { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let h0 = HandleId::new(0);
        let h1 = HandleId::new(1);
        vec![
            Operation::control(h0, OpKind::Open),
            Operation::control(h1, OpKind::Open),
            Operation::new(h0, OpKind::Write, 128),
            Operation::control(h0, OpKind::Fileno),
            Operation::new(h1, OpKind::Read, 64),
            Operation::control(h1, OpKind::Close),
            Operation::control(h0, OpKind::Close),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn len_and_handles() {
        let t = sample();
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
        assert_eq!(t.handles(), vec![HandleId::new(0), HandleId::new(1)]);
    }

    #[test]
    fn without_negligible_drops_fileno() {
        let t = sample().without_negligible();
        assert_eq!(t.len(), 6);
        assert_eq!(t.count_kind(&OpKind::Fileno), 0);
        assert_eq!(t.count_kind(&OpKind::Write), 1);
    }

    #[test]
    fn for_handle_preserves_order() {
        let t = sample();
        let h0 = t.for_handle(HandleId::new(0));
        let kinds: Vec<&OpKind> = h0.iter().map(|op| &op.kind).collect();
        assert_eq!(kinds, vec![&OpKind::Open, &OpKind::Write, &OpKind::Fileno, &OpKind::Close]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert!(t.handles().is_empty());
        assert_eq!(t.without_negligible(), t);
    }

    #[test]
    fn extend_and_into_iter() {
        let mut t = Trace::new();
        t.extend(sample());
        assert_eq!(t.len(), 7);
        let back: Vec<Operation> = t.clone().into_iter().collect();
        assert_eq!(Trace::from(back), t);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let t = Trace::with_capacity(16);
        assert!(t.is_empty());
    }
}
