//! Numeric pattern signatures: burstiness, periodicity, repeatability.
//!
//! §2.1 of the paper lists the properties by which access patterns are
//! characterised, citing Liu et al.'s three supercomputing-specific
//! features: "burstiness, periodicity and repeatability". These scalar
//! signatures are *not* inputs to the kernels — the string representation
//! supersedes them — but they give the workload generators a ground truth
//! to validate against, and downstream users a cheap first-pass filter.

use crate::op::OpKind;
use crate::trace::Trace;

/// Configuration for [`PatternSignature::of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureConfig {
    /// Number of consecutive operations aggregated into one volume sample.
    pub window: usize,
    /// k-gram length used by the repeatability measure.
    pub gram: usize,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig { window: 8, gram: 4 }
    }
}

/// The three scalar signatures of one trace.
///
/// # Examples
///
/// ```
/// use kastio_trace::{parse_trace, PatternSignature};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let steady = parse_trace(&"h0 write 64\n".repeat(64))?;
/// let sig = PatternSignature::of(&steady, Default::default());
/// assert!(sig.burstiness < -0.9, "a constant stream is maximally regular");
/// assert!(sig.repeatability > 0.9, "one repeated operation everywhere");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSignature {
    /// Goh–Barabási burstiness of the per-window byte volume:
    /// `(σ − μ)/(σ + μ)` ∈ [−1, 1]. −1 = perfectly regular, ~0 = Poisson,
    /// → 1 = extremely bursty.
    pub burstiness: f64,
    /// Peak normalised autocorrelation of the per-window byte volume over
    /// lags ≥ 1, in [−1, 1]; high values mean the volume repeats with a
    /// period.
    pub periodicity: f64,
    /// 1 − (distinct op-kind k-grams / total k-grams), in [0, 1]; high
    /// values mean the operation sequence re-uses few motifs.
    pub repeatability: f64,
}

impl PatternSignature {
    /// Computes the signatures of a trace.
    ///
    /// Negligible operations are excluded (they carry no pattern
    /// information); traces shorter than one window or one k-gram yield
    /// zeros for the affected measures.
    pub fn of(trace: &Trace, config: SignatureConfig) -> PatternSignature {
        let substantive: Vec<(&OpKind, u64)> = trace
            .iter()
            .filter(|op| !op.kind.is_negligible())
            .map(|op| (&op.kind, op.bytes))
            .collect();
        let window = config.window.max(1);
        let volumes: Vec<f64> = substantive
            .chunks(window)
            .map(|chunk| chunk.iter().map(|&(_, b)| b as f64).sum())
            .collect();
        PatternSignature {
            burstiness: burstiness(&volumes),
            periodicity: periodicity(&volumes),
            repeatability: repeatability(&substantive, config.gram),
        }
    }
}

fn burstiness(volumes: &[f64]) -> f64 {
    if volumes.len() < 2 {
        return 0.0;
    }
    let n = volumes.len() as f64;
    let mean = volumes.iter().sum::<f64>() / n;
    let var = volumes.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sigma = var.sqrt();
    if sigma + mean == 0.0 {
        0.0
    } else {
        (sigma - mean) / (sigma + mean)
    }
}

fn periodicity(volumes: &[f64]) -> f64 {
    let n = volumes.len();
    if n < 4 {
        return 0.0;
    }
    let mean = volumes.iter().sum::<f64>() / n as f64;
    let denom: f64 = volumes.iter().map(|v| (v - mean) * (v - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let mut best = f64::NEG_INFINITY;
    for lag in 1..=n / 2 {
        let num: f64 = (0..n - lag).map(|i| (volumes[i] - mean) * (volumes[i + lag] - mean)).sum();
        best = best.max(num / denom);
    }
    best.clamp(-1.0, 1.0)
}

fn repeatability(ops: &[(&OpKind, u64)], gram: usize) -> f64 {
    let gram = gram.max(1);
    if ops.len() < gram {
        return 0.0;
    }
    let total = ops.len() - gram + 1;
    let mut seen = std::collections::HashSet::new();
    for w in ops.windows(gram) {
        let key: Vec<&str> = w.iter().map(|&(k, _)| k.name()).collect();
        seen.insert(key);
    }
    1.0 - seen.len() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{HandleId, Operation};
    use crate::text::parse_trace;

    fn trace_of(pattern: &[(&str, u64)], repeats: usize) -> Trace {
        let mut t = Trace::new();
        for _ in 0..repeats {
            for &(name, bytes) in pattern {
                t.push(Operation::new(HandleId::new(0), OpKind::parse(name), bytes));
            }
        }
        t
    }

    #[test]
    fn constant_stream_is_regular_and_repeatable() {
        let t = trace_of(&[("write", 64)], 128);
        let sig = PatternSignature::of(&t, SignatureConfig::default());
        assert!(sig.burstiness <= -0.99);
        assert!(sig.repeatability > 0.95);
    }

    #[test]
    fn alternating_phases_are_periodic() {
        // 8 quiet ops then 8 heavy ops, repeated: strong autocorrelation
        // at the phase length.
        let mut pattern = vec![("read", 1u64); 8];
        pattern.extend(vec![("write", 1_000_000u64); 8]);
        let t = trace_of(&pattern, 16);
        let sig = PatternSignature::of(&t, SignatureConfig { window: 8, gram: 4 });
        assert!(sig.periodicity > 0.8, "periodicity {}", sig.periodicity);
    }

    #[test]
    fn bursty_stream_scores_high_burstiness() {
        // One huge write among many empty ops.
        let mut pattern = vec![("lseek", 0u64); 63];
        pattern.push(("write", 100_000_000));
        let t = trace_of(&pattern, 4);
        let sig = PatternSignature::of(&t, SignatureConfig { window: 4, gram: 4 });
        assert!(sig.burstiness > 0.5, "burstiness {}", sig.burstiness);
    }

    #[test]
    fn diverse_sequence_scores_low_repeatability() {
        let names = ["read", "write", "lseek", "fsync"];
        let mut t = Trace::new();
        // A de Bruijn-ish wandering sequence with few repeated 4-grams.
        for i in 0..128usize {
            let name = names[(i * i + i / 3) % 4];
            t.push(Operation::new(HandleId::new(0), OpKind::parse(name), i as u64));
        }
        let sig = PatternSignature::of(&t, SignatureConfig::default());
        let steady = PatternSignature::of(&trace_of(&[("read", 1)], 128), Default::default());
        assert!(sig.repeatability < steady.repeatability);
    }

    #[test]
    fn signatures_are_bounded() {
        let t =
            parse_trace("h0 write 10\nh0 read 5\nh0 write 0\nh0 read 99\nh0 write 7\n").unwrap();
        let sig = PatternSignature::of(&t, SignatureConfig { window: 2, gram: 2 });
        assert!((-1.0..=1.0).contains(&sig.burstiness));
        assert!((-1.0..=1.0).contains(&sig.periodicity));
        assert!((0.0..=1.0).contains(&sig.repeatability));
    }

    #[test]
    fn degenerate_traces_yield_zeros() {
        let empty = Trace::new();
        let sig = PatternSignature::of(&empty, SignatureConfig::default());
        assert_eq!(sig.burstiness, 0.0);
        assert_eq!(sig.periodicity, 0.0);
        assert_eq!(sig.repeatability, 0.0);
        let tiny = parse_trace("h0 write 1\n").unwrap();
        let sig = PatternSignature::of(&tiny, SignatureConfig::default());
        assert_eq!(sig.repeatability, 0.0);
    }

    #[test]
    fn negligible_ops_are_excluded() {
        let with = parse_trace(&"h0 write 64\nh0 fileno 0\n".repeat(32)).unwrap();
        let without = parse_trace(&"h0 write 64\n".repeat(32)).unwrap();
        let a = PatternSignature::of(&with, SignatureConfig::default());
        let b = PatternSignature::of(&without, SignatureConfig::default());
        assert_eq!(a, b);
    }
}
