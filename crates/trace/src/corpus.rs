//! Corpus directories: many named, tagged traces in one directory.
//!
//! The layout the whole workspace shares — `kastio generate` writes it,
//! `kastio cluster` reads it, and the corpus index persists through it:
//! one `<name>.trace` file per entry (the [`crate::text`] format) plus a
//! `MANIFEST` of `<name> <tag>` lines. The *meaning* of the tag belongs to
//! the caller (the dataset importer maps it to a category, the index
//! stores it as a free-form label); this module only walks the layout.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::text::{parse_trace, write_trace, ParseTraceError};
use crate::trace::Trace;

/// One corpus-directory entry: a named trace with an uninterpreted tag.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// File stem of the trace (`<name>.trace`).
    pub name: String,
    /// The manifest tag (a category letter, a label — caller's business).
    pub tag: String,
    /// 1-based manifest line the entry came from (0 when writing).
    pub line: usize,
    /// The parsed trace.
    pub trace: Trace,
}

/// Errors arising while reading or writing a corpus directory.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A trace file failed to parse.
    Parse {
        /// The file that failed.
        file: String,
        /// The underlying parse error.
        source: ParseTraceError,
    },
    /// The manifest was malformed at the given line.
    BadManifest {
        /// 1-based manifest line number.
        line: usize,
    },
    /// The manifest references a trace file that does not exist.
    MissingTrace {
        /// The missing entry name.
        name: String,
    },
    /// An entry name or tag cannot be represented in the layout (empty,
    /// contains whitespace or a path separator, or starts with a dot) —
    /// writing it would produce an unloadable manifest or a file outside
    /// the corpus directory.
    BadEntry {
        /// The offending name or tag.
        field: String,
    },
}

impl fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus io: {e}"),
            CorpusIoError::Parse { file, source } => {
                write!(f, "trace file {file} failed to parse: {source}")
            }
            CorpusIoError::BadManifest { line } => {
                write!(f, "manifest line {line} is malformed (expected `<name> <tag>`)")
            }
            CorpusIoError::MissingTrace { name } => {
                write!(f, "manifest references missing trace `{name}`")
            }
            CorpusIoError::BadEntry { field } => {
                write!(
                    f,
                    "entry name/tag `{field}` cannot be written \
                     (empty, whitespace, path separator or leading dot)"
                )
            }
        }
    }
}

impl Error for CorpusIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusIoError::Io(e) => Some(e),
            CorpusIoError::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for CorpusIoError {
    fn from(e: io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}

/// Whether a string can serve as a corpus entry *name*: non-empty, no
/// whitespace (the manifest is whitespace-delimited), no path separators
/// and no leading dot (names become file names inside the corpus
/// directory).
///
/// # Examples
///
/// ```
/// use kastio_trace::valid_entry_name;
///
/// assert!(valid_entry_name("checkpoint-03"));
/// assert!(!valid_entry_name("has space"));
/// assert!(!valid_entry_name("../escape"));
/// assert!(!valid_entry_name(".hidden"));
/// assert!(!valid_entry_name(""));
/// ```
pub fn valid_entry_name(name: &str) -> bool {
    !name.is_empty()
        && !name.contains(char::is_whitespace)
        && !name.contains(['/', '\\'])
        && !name.starts_with('.')
}

/// Whether a string can serve as a corpus entry *tag* (label): non-empty
/// and whitespace-free, so the `<name> <tag>` manifest line round-trips.
///
/// # Examples
///
/// ```
/// use kastio_trace::valid_entry_tag;
///
/// assert!(valid_entry_tag("flash-io"));
/// assert!(valid_entry_tag("a/b.c")); // tags never become file names
/// assert!(!valid_entry_tag("two words"));
/// assert!(!valid_entry_tag("line\nbreak"));
/// assert!(!valid_entry_tag(""));
/// ```
pub fn valid_entry_tag(tag: &str) -> bool {
    !tag.is_empty() && !tag.contains(char::is_whitespace)
}

/// Writes `bytes` to `path` atomically with respect to process crashes:
/// the content goes to a `.tmp` sibling first and is renamed into place,
/// so a reader (or a reload after a crash mid-write) sees either the old
/// complete file or the new complete file, never a torn prefix.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    if let Err(e) = fs::write(&tmp, bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Writes `(name, tag, trace)` entries into `dir` as `<name>.trace` files
/// plus a `MANIFEST`, creating the directory if missing and overwriting
/// existing files.
///
/// Every file is written via a temp-file-plus-rename (a `.tmp` sibling
/// renamed into place), and the `MANIFEST` is written **last**: a crash mid-write
/// can therefore never leave a torn trace file or a manifest that
/// references files which were not fully written. When overwriting an
/// existing corpus the old `MANIFEST` stays in place (and loadable) until
/// every trace file of the new corpus is on disk. Note this is *per-file*
/// atomicity against process crashes — whole-*directory* atomicity (old
/// corpus preserved until the new one is complete) is layered on top by
/// the index's snapshot writer, and power-loss durability (fsync) is out
/// of scope.
///
/// Returns the total bytes written (trace files plus the manifest), so
/// snapshot observability can report the size of a save.
///
/// # Errors
///
/// * [`CorpusIoError::BadEntry`] for a name or tag the layout cannot
///   represent (checked *before* anything is written, so a save never
///   half-succeeds into an unloadable corpus);
/// * [`CorpusIoError::Io`] on any filesystem failure.
pub fn write_corpus<'a, I>(dir: &Path, entries: I) -> Result<u64, CorpusIoError>
where
    I: IntoIterator<Item = (&'a str, &'a str, &'a Trace)>,
{
    let entries: Vec<_> = entries.into_iter().collect();
    for &(name, tag, _) in &entries {
        if !valid_entry_name(name) {
            return Err(CorpusIoError::BadEntry { field: name.to_string() });
        }
        if !valid_entry_tag(tag) {
            return Err(CorpusIoError::BadEntry { field: tag.to_string() });
        }
    }
    fs::create_dir_all(dir)?;
    let mut bytes = 0u64;
    let mut manifest = String::new();
    for (name, tag, trace) in entries {
        let body = write_trace(trace);
        write_file_atomic(&dir.join(format!("{name}.trace")), body.as_bytes())?;
        bytes += body.len() as u64;
        manifest.push_str(&format!("{name} {tag}\n"));
    }
    write_file_atomic(&dir.join("MANIFEST"), manifest.as_bytes())?;
    Ok(bytes + manifest.len() as u64)
}

/// One `MANIFEST` line, before its trace file is touched.
///
/// Callers that interpret tags (the dataset importer maps them to
/// categories) validate on these first, so a tag error is reported
/// without reading or parsing any trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File stem of the trace (`<name>.trace`).
    pub name: String,
    /// The manifest tag.
    pub tag: String,
    /// 1-based manifest line number.
    pub line: usize,
}

/// Reads and parses just the `MANIFEST` of a corpus directory, in order.
/// Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// * [`CorpusIoError::Io`] on filesystem failures;
/// * [`CorpusIoError::BadManifest`] for malformed manifest lines.
pub fn read_manifest(dir: &Path) -> Result<Vec<ManifestEntry>, CorpusIoError> {
    let manifest = fs::read_to_string(dir.join("MANIFEST"))?;
    let mut entries = Vec::new();
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (name, tag) = match (parts.next(), parts.next(), parts.next()) {
            (Some(name), Some(tag), None) => (name, tag),
            _ => return Err(CorpusIoError::BadManifest { line: idx + 1 }),
        };
        entries.push(ManifestEntry { name: name.to_string(), tag: tag.to_string(), line: idx + 1 });
    }
    Ok(entries)
}

/// Loads the trace file behind one manifest entry.
///
/// # Errors
///
/// * [`CorpusIoError::MissingTrace`] if the entry has no file;
/// * [`CorpusIoError::Parse`] if the trace file is malformed;
/// * [`CorpusIoError::Io`] on other filesystem failures.
pub fn load_manifest_trace(dir: &Path, name: &str) -> Result<Trace, CorpusIoError> {
    let file = dir.join(format!("{name}.trace"));
    let text = fs::read_to_string(&file).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            CorpusIoError::MissingTrace { name: name.to_string() }
        } else {
            CorpusIoError::Io(e)
        }
    })?;
    parse_trace(&text)
        .map_err(|source| CorpusIoError::Parse { file: file.display().to_string(), source })
}

/// Reads a corpus directory back, in manifest order:
/// [`read_manifest`] plus [`load_manifest_trace`] per entry.
///
/// # Errors
///
/// Everything [`read_manifest`] and [`load_manifest_trace`] report.
pub fn read_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, CorpusIoError> {
    read_manifest(dir)?
        .into_iter()
        .map(|entry| {
            let trace = load_manifest_trace(dir, &entry.name)?;
            Ok(CorpusEntry { name: entry.name, tag: entry.tag, line: entry.line, trace })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kastio-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_entries_in_order() {
        let dir = tmpdir("roundtrip");
        let a = parse_trace("h0 write 64\n").unwrap();
        let b = parse_trace("h0 read 8\nh0 read 8\n").unwrap();
        let bytes = write_corpus(&dir, [("one", "X", &a), ("two", "label-y", &b)]).unwrap();
        let on_disk: u64 =
            fs::read_dir(&dir).unwrap().map(|e| e.unwrap().metadata().unwrap().len()).sum();
        assert_eq!(bytes, on_disk, "reported bytes match what landed on disk");
        let back = read_corpus(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!((back[0].name.as_str(), back[0].tag.as_str()), ("one", "X"));
        assert_eq!(back[0].trace, a);
        assert_eq!((back[1].name.as_str(), back[1].tag.as_str()), ("two", "label-y"));
        assert_eq!(back[1].line, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let dir = tmpdir("comments");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "# header\n\nx A\n").unwrap();
        fs::write(dir.join("x.trace"), "h0 write 1\n").unwrap();
        let back = read_corpus(&dir).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].line, 3, "line numbers count skipped lines");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unwritable_names_and_tags_are_rejected_before_writing() {
        let dir = tmpdir("badentry");
        let t = parse_trace("h0 write 1\n").unwrap();
        for (name, tag) in
            [("has space", "A"), ("../escape", "A"), (".hidden", "A"), ("", "A"), ("ok", "b ad")]
        {
            let err = write_corpus(&dir, [(name, tag, &t)]).unwrap_err();
            assert!(matches!(err, CorpusIoError::BadEntry { .. }), "{name}/{tag}: {err}");
        }
        assert!(!dir.exists(), "nothing was written for rejected entries");
        // A plain valid entry still writes fine.
        write_corpus(&dir, [("ok", "label-1", &t)]).unwrap();
        assert_eq!(read_corpus(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_leave_no_temp_files_behind() {
        let dir = tmpdir("notmp");
        let t = parse_trace("h0 write 1\n").unwrap();
        write_corpus(&dir, [("a", "X", &t), ("b", "Y", &t)]).unwrap();
        let stray: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files were left behind: {stray:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_overwrite_keeps_the_old_manifest_loadable() {
        let dir = tmpdir("failed-overwrite");
        let t = parse_trace("h0 write 1\n").unwrap();
        write_corpus(&dir, [("a", "X", &t), ("b", "Y", &t)]).unwrap();

        // A 300-byte name passes manifest validation but exceeds the
        // filesystem's name limit, so the second save fails with an IO
        // error *after* validation — mid-write, like a crash would.
        let long = "x".repeat(300);
        let err = write_corpus(&dir, [("a", "X", &t), (long.as_str(), "Y", &t)]).unwrap_err();
        assert!(matches!(err, CorpusIoError::Io(_)), "{err}");

        // MANIFEST is written last, so the old corpus is still loadable.
        let back = read_corpus(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].name, "b");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validators_are_exported_and_consistent_with_write_corpus() {
        assert!(valid_entry_name("ok-1"));
        for bad in ["has space", "../up", "a\\b", ".dot", "", "nl\n"] {
            assert!(!valid_entry_name(bad), "{bad:?}");
        }
        assert!(valid_entry_tag("label.with/odd-chars"));
        for bad in ["two words", "", "tab\there", "nl\nhere"] {
            assert!(!valid_entry_tag(bad), "{bad:?}");
        }
    }

    #[test]
    fn bad_manifest_missing_trace_and_parse_errors() {
        let dir = tmpdir("errors");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "too many fields here\n").unwrap();
        assert!(matches!(read_corpus(&dir), Err(CorpusIoError::BadManifest { line: 1 })));

        fs::write(dir.join("MANIFEST"), "ghost A\n").unwrap();
        let err = read_corpus(&dir).unwrap_err();
        assert!(matches!(&err, CorpusIoError::MissingTrace { name } if name == "ghost"));

        fs::write(dir.join("MANIFEST"), "bad A\n").unwrap();
        fs::write(dir.join("bad.trace"), "not a trace\n").unwrap();
        let err = read_corpus(&dir).unwrap_err();
        assert!(matches!(&err, CorpusIoError::Parse { file, .. } if file.contains("bad.trace")));
        assert!(err.source().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
