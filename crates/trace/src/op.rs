//! Single trace operations: file handles, operation kinds and records.

use std::fmt;

/// Identifier of a file handle within one trace.
///
/// Handles number the *logical* files of an application run. The paper's
/// tree representation groups all operations of the same handle under one
/// `HANDLE` node, so the identity (not the numeric value) is what matters.
///
/// # Examples
///
/// ```
/// use kastio_trace::HandleId;
///
/// let h = HandleId::new(3);
/// assert_eq!(h.index(), 3);
/// assert_eq!(h.to_string(), "h3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HandleId(u32);

impl HandleId {
    /// Creates a handle identifier from its numeric index.
    pub fn new(index: u32) -> Self {
        HandleId(index)
    }

    /// Returns the numeric index of this handle.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for HandleId {
    fn from(index: u32) -> Self {
        HandleId(index)
    }
}

/// The kind of an I/O operation.
///
/// The variants cover the POSIX-level calls seen in the paper's traces plus
/// a [`OpKind::Custom`] escape hatch so the text parser never loses
/// information. The paper singles out some operations as *negligible*
/// ("e.g. fileno, nmap and fscanf"); [`OpKind::is_negligible`] encodes that
/// set.
///
/// # Examples
///
/// ```
/// use kastio_trace::OpKind;
///
/// assert!(OpKind::Fileno.is_negligible());
/// assert!(!OpKind::Write.is_negligible());
/// assert_eq!(OpKind::parse("read"), OpKind::Read);
/// assert_eq!(OpKind::parse("weird"), OpKind::Custom("weird".to_string()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// `open(2)` — opens a file; becomes a `BLOCK` delimiter in the tree.
    Open,
    /// `close(2)` — closes a file; becomes a `BLOCK` delimiter in the tree.
    Close,
    /// `read(2)` — transfers bytes from the file.
    Read,
    /// `write(2)` — transfers bytes to the file.
    Write,
    /// `lseek(2)` — repositions the file offset; carries no byte count.
    Lseek,
    /// `fsync(2)` — flushes file state; carries no byte count.
    Fsync,
    /// `ftruncate(2)` — resizes the file; the byte count records the new size.
    Ftruncate,
    /// `fileno(3)` — negligible bookkeeping call.
    Fileno,
    /// `mmap(2)` (the paper's "nmap") — negligible for pattern purposes.
    Mmap,
    /// `fscanf(3)` — negligible formatted read.
    Fscanf,
    /// `ftell(3)` — negligible position query.
    Ftell,
    /// `fstat(2)` — negligible metadata query.
    Fstat,
    /// Any operation name not otherwise modelled; preserved verbatim.
    Custom(String),
}

impl OpKind {
    /// Parses an operation name as it appears in a trace file.
    ///
    /// Unknown names yield [`OpKind::Custom`] rather than an error, so a
    /// trace with exotic calls still round-trips.
    pub fn parse(name: &str) -> OpKind {
        match name {
            "open" => OpKind::Open,
            "close" => OpKind::Close,
            "read" => OpKind::Read,
            "write" => OpKind::Write,
            "lseek" => OpKind::Lseek,
            "fsync" => OpKind::Fsync,
            "ftruncate" => OpKind::Ftruncate,
            "fileno" => OpKind::Fileno,
            "mmap" | "nmap" => OpKind::Mmap,
            "fscanf" => OpKind::Fscanf,
            "ftell" => OpKind::Ftell,
            "fstat" => OpKind::Fstat,
            other => OpKind::Custom(other.to_string()),
        }
    }

    /// Returns the canonical lower-case name of the operation.
    pub fn name(&self) -> &str {
        match self {
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Lseek => "lseek",
            OpKind::Fsync => "fsync",
            OpKind::Ftruncate => "ftruncate",
            OpKind::Fileno => "fileno",
            OpKind::Mmap => "mmap",
            OpKind::Fscanf => "fscanf",
            OpKind::Ftell => "ftell",
            OpKind::Fstat => "fstat",
            OpKind::Custom(name) => name,
        }
    }

    /// Whether the operation is negligible for access-pattern purposes.
    ///
    /// The paper drops these before building the tree: "Some of these
    /// operations are negligible and hence ignored (e.g. fileno, nmap and
    /// fscanf)". We extend the set with the equally content-free `ftell`
    /// and `fstat`.
    pub fn is_negligible(&self) -> bool {
        matches!(
            self,
            OpKind::Fileno | OpKind::Mmap | OpKind::Fscanf | OpKind::Ftell | OpKind::Fstat
        )
    }

    /// Whether the operation is a block delimiter (`open`/`close`).
    ///
    /// Delimiters never become leaves of the pattern tree: "operations are
    /// given nodes, except for open and close, because the BLOCK node
    /// already plays the role of a delimiter".
    pub fn is_block_delimiter(&self) -> bool {
        matches!(self, OpKind::Open | OpKind::Close)
    }

    /// Whether the operation conventionally carries a transfer byte count.
    ///
    /// Operations without a byte count (e.g. `lseek`) always record zero
    /// bytes; compression rule 4 of the paper exploits exactly that.
    pub fn carries_bytes(&self) -> bool {
        matches!(self, OpKind::Read | OpKind::Write | OpKind::Ftruncate | OpKind::Custom(_))
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded I/O operation: a handle, an operation kind and a byte count.
///
/// Operations are stored in chronological order inside a [`crate::Trace`];
/// the position in the trace is the (implicit) timestamp. Byte counts are
/// zero for operations that transfer no payload.
///
/// # Examples
///
/// ```
/// use kastio_trace::{HandleId, OpKind, Operation};
///
/// let op = Operation::new(HandleId::new(0), OpKind::Read, 4096);
/// assert_eq!(op.bytes, 4096);
/// assert_eq!(op.to_string(), "h0 read 4096");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    /// The file handle the operation acts on.
    pub handle: HandleId,
    /// What the operation does.
    pub kind: OpKind,
    /// Number of bytes moved by the operation (zero when not applicable).
    pub bytes: u64,
}

impl Operation {
    /// Creates a new operation record.
    pub fn new(handle: HandleId, kind: OpKind, bytes: u64) -> Self {
        Operation { handle, kind, bytes }
    }

    /// Convenience constructor for zero-byte operations.
    pub fn control(handle: HandleId, kind: OpKind) -> Self {
        Operation::new(handle, kind, 0)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.handle, self.kind, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_display_and_index() {
        let h = HandleId::new(7);
        assert_eq!(h.index(), 7);
        assert_eq!(h.to_string(), "h7");
        assert_eq!(HandleId::from(7u32), h);
    }

    #[test]
    fn opkind_parse_roundtrips_known_names() {
        for name in [
            "open",
            "close",
            "read",
            "write",
            "lseek",
            "fsync",
            "ftruncate",
            "fileno",
            "mmap",
            "fscanf",
            "ftell",
            "fstat",
        ] {
            let kind = OpKind::parse(name);
            assert_eq!(kind.name(), name, "round-trip failed for {name}");
            assert!(!matches!(kind, OpKind::Custom(_)));
        }
    }

    #[test]
    fn opkind_parse_nmap_alias() {
        assert_eq!(OpKind::parse("nmap"), OpKind::Mmap);
    }

    #[test]
    fn opkind_custom_preserves_name() {
        let kind = OpKind::parse("aio_read64");
        assert_eq!(kind, OpKind::Custom("aio_read64".to_string()));
        assert_eq!(kind.name(), "aio_read64");
        assert!(!kind.is_negligible());
        assert!(kind.carries_bytes());
    }

    #[test]
    fn negligible_set_matches_paper() {
        assert!(OpKind::Fileno.is_negligible());
        assert!(OpKind::Mmap.is_negligible());
        assert!(OpKind::Fscanf.is_negligible());
        assert!(!OpKind::Read.is_negligible());
        assert!(!OpKind::Open.is_negligible());
        assert!(!OpKind::Lseek.is_negligible());
    }

    #[test]
    fn block_delimiters() {
        assert!(OpKind::Open.is_block_delimiter());
        assert!(OpKind::Close.is_block_delimiter());
        assert!(!OpKind::Read.is_block_delimiter());
    }

    #[test]
    fn byte_carriers() {
        assert!(OpKind::Read.carries_bytes());
        assert!(OpKind::Write.carries_bytes());
        assert!(!OpKind::Lseek.carries_bytes());
        assert!(!OpKind::Fsync.carries_bytes());
    }

    #[test]
    fn operation_display() {
        let op = Operation::new(HandleId::new(2), OpKind::Lseek, 0);
        assert_eq!(op.to_string(), "h2 lseek 0");
        assert_eq!(Operation::control(HandleId::new(2), OpKind::Lseek), op);
    }
}
