//! The plain-text trace format.
//!
//! The paper's input is "plain text files where each line corresponds to an
//! operation". Our concrete syntax is one operation per line:
//!
//! ```text
//! # comment lines start with '#', blank lines are ignored
//! h0 open 0
//! h0 write 4096
//! h0 close 0
//! ```
//!
//! i.e. `<handle> <op-name> <byte-count>`, whitespace separated. The handle
//! is `h<index>` (a bare integer is also accepted). Unknown operation names
//! parse to [`OpKind::Custom`] so nothing is lost.

use std::error::Error;
use std::fmt;

use crate::op::{HandleId, OpKind, Operation};
use crate::trace::Trace;

/// Why a trace file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceErrorKind {
    /// A line did not have exactly three whitespace-separated fields.
    WrongFieldCount {
        /// The number of fields found on the offending line.
        found: usize,
    },
    /// The handle field was not `h<index>` or a bare integer.
    BadHandle {
        /// The offending handle field.
        field: String,
    },
    /// The byte-count field was not an unsigned integer.
    BadBytes {
        /// The offending byte-count field.
        field: String,
    },
}

/// Error produced when parsing a plain-text trace fails.
///
/// Carries the 1-based line number of the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The specific parse failure.
    pub kind: ParseTraceErrorKind,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseTraceErrorKind::WrongFieldCount { found } => {
                write!(
                    f,
                    "line {}: expected 3 fields `<handle> <op> <bytes>`, found {}",
                    self.line, found
                )
            }
            ParseTraceErrorKind::BadHandle { field } => {
                write!(f, "line {}: invalid handle `{}`", self.line, field)
            }
            ParseTraceErrorKind::BadBytes { field } => {
                write!(f, "line {}: invalid byte count `{}`", self.line, field)
            }
        }
    }
}

impl Error for ParseTraceError {}

fn parse_handle(field: &str) -> Option<HandleId> {
    let digits = field.strip_prefix('h').unwrap_or(field);
    digits.parse::<u32>().ok().map(HandleId::new)
}

/// Parses a plain-text trace.
///
/// Blank lines and lines starting with `#` are ignored. Every other line
/// must have the shape `<handle> <op-name> <byte-count>`.
///
/// # Errors
///
/// Returns [`ParseTraceError`] naming the first offending line if a line is
/// malformed.
///
/// # Examples
///
/// ```
/// use kastio_trace::{parse_trace, OpKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 read 1024\nh0 close 0\n")?;
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.count_kind(&OpKind::Read), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_trace(input: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseTraceError {
                line: idx + 1,
                kind: ParseTraceErrorKind::WrongFieldCount { found: fields.len() },
            });
        }
        let handle = parse_handle(fields[0]).ok_or_else(|| ParseTraceError {
            line: idx + 1,
            kind: ParseTraceErrorKind::BadHandle { field: fields[0].to_string() },
        })?;
        let kind = OpKind::parse(fields[1]);
        let bytes = fields[2].parse::<u64>().map_err(|_| ParseTraceError {
            line: idx + 1,
            kind: ParseTraceErrorKind::BadBytes { field: fields[2].to_string() },
        })?;
        trace.push(Operation::new(handle, kind, bytes));
    }
    Ok(trace)
}

/// Renders a trace in the plain-text format accepted by [`parse_trace`].
///
/// # Examples
///
/// ```
/// use kastio_trace::{write_trace, HandleId, OpKind, Operation, Trace};
///
/// let trace: Trace =
///     vec![Operation::new(HandleId::new(0), OpKind::Write, 8)].into_iter().collect();
/// assert_eq!(write_trace(&trace), "h0 write 8\n");
/// ```
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    for op in trace {
        out.push_str(&op.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_trace() {
        let t = parse_trace("h0 open 0\nh0 write 100\nh0 close 0").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_slice()[1], Operation::new(HandleId::new(0), OpKind::Write, 100));
    }

    #[test]
    fn accepts_bare_integer_handles() {
        let t = parse_trace("3 read 42").unwrap();
        assert_eq!(t.as_slice()[0].handle, HandleId::new(3));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let t = parse_trace("# header\n\n  \nh0 read 1\n# trailing\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unknown_ops_become_custom() {
        let t = parse_trace("h0 pwritev2 512").unwrap();
        assert_eq!(t.as_slice()[0].kind, OpKind::Custom("pwritev2".to_string()));
    }

    #[test]
    fn reports_wrong_field_count_with_line() {
        let err = parse_trace("h0 read 1\nh0 read\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ParseTraceErrorKind::WrongFieldCount { found: 2 });
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn reports_bad_handle() {
        let err = parse_trace("x0 read 1").unwrap_err();
        assert_eq!(err.kind, ParseTraceErrorKind::BadHandle { field: "x0".to_string() });
    }

    #[test]
    fn reports_bad_bytes() {
        let err = parse_trace("h0 read -5").unwrap_err();
        assert_eq!(err.kind, ParseTraceErrorKind::BadBytes { field: "-5".to_string() });
    }

    #[test]
    fn roundtrip() {
        let src = "h0 open 0\nh0 write 4096\nh1 open 0\nh1 lseek 0\nh1 close 0\nh0 close 0\n";
        let t = parse_trace(src).unwrap();
        assert_eq!(write_trace(&t), src);
        assert_eq!(parse_trace(&write_trace(&t)).unwrap(), t);
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(parse_trace("").unwrap().is_empty());
        assert_eq!(write_trace(&Trace::new()), "");
    }
}
