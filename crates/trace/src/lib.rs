//! I/O trace model, plain-text trace format and a simulated POSIX I/O layer.
//!
//! This crate is the *substrate* of the kastio reproduction of Torres et al.,
//! "A Novel String Representation and Kernel Function for the Comparison of
//! I/O Access Patterns" (PaCT 2017). The paper consumes traces captured from
//! real parallel applications; everything downstream (tree construction,
//! weighted strings, kernels) only ever sees what this crate models — a
//! chronological sequence of operations, each carrying a file handle, an
//! operation name and a byte count.
//!
//! Three pieces live here:
//!
//! * [`Operation`] / [`Trace`] — the in-memory trace model ([`op`], [`trace`]).
//! * A plain-text trace format mirroring the paper's "plain text files where
//!   each line corresponds to an operation" ([`text`]).
//! * [`SimFs`] — a simulated POSIX file layer with open/read/write/lseek/close
//!   calls that records the trace of everything executed against it
//!   ([`simfs`]). The workload generators in `kastio-workloads` run their
//!   synthetic applications on top of it.
//! * [`ParallelTrace`] — per-rank traces of a parallel run and their merge
//!   into the single chronological stream the pipeline consumes
//!   ([`parallel`]).
//!
//! # Examples
//!
//! Recording a tiny application run and round-tripping it through the text
//! format:
//!
//! ```
//! use kastio_trace::{SimFs, text};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut fs = SimFs::new();
//! let fd = fs.open("data.bin")?;
//! fs.write(fd, 4096)?;
//! fs.write(fd, 4096)?;
//! fs.close(fd)?;
//!
//! let trace = fs.into_trace();
//! let rendered = text::write_trace(&trace);
//! let parsed = text::parse_trace(&rendered)?;
//! assert_eq!(trace, parsed);
//! # Ok(())
//! # }
//! ```

pub mod corpus;
pub mod op;
pub mod parallel;
pub mod signature;
pub mod simfs;
pub mod stats;
pub mod text;
pub mod trace;
pub mod wal;

pub use corpus::{
    load_manifest_trace, read_corpus, read_manifest, valid_entry_name, valid_entry_tag,
    write_corpus, CorpusEntry, CorpusIoError, ManifestEntry,
};
pub use op::{HandleId, OpKind, Operation};
pub use parallel::{HandleMerge, ParallelTrace};
pub use signature::{PatternSignature, SignatureConfig};
pub use simfs::{Fd, SeekWhence, SimFs, SimFsError};
pub use stats::TraceStats;
pub use text::{parse_trace, write_trace, ParseTraceError};
pub use trace::Trace;
pub use wal::{
    crc32, encode_wal_record, scan_wal, snapshot_dir, wal_dir, wal_shard_path, WalRecord, WalScan,
    MAX_WAL_RECORD_BYTES, WAL_HEADER_BYTES,
};
