//! Summary statistics over traces.
//!
//! These are not used by the kernel itself but are invaluable for sanity
//! checking workload generators: §2.1 of the paper lists the properties by
//! which access patterns are characterised (granularity, randomness,
//! concurrency, …) and these numbers are the cheap observable proxies.

use std::collections::BTreeMap;

use crate::op::OpKind;
use crate::trace::Trace;

/// Aggregate statistics of a [`Trace`].
///
/// # Examples
///
/// ```
/// use kastio_trace::{parse_trace, TraceStats};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 write 100\nh0 write 28\nh0 close 0\n")?;
/// let stats = TraceStats::of(&trace);
/// assert_eq!(stats.total_ops, 4);
/// assert_eq!(stats.bytes_written, 128);
/// assert_eq!(stats.handle_count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total number of operations, negligible ones included.
    pub total_ops: usize,
    /// Number of negligible operations (dropped by the pipeline).
    pub negligible_ops: usize,
    /// Number of distinct file handles.
    pub handle_count: usize,
    /// Total bytes transferred by `read` operations.
    pub bytes_read: u64,
    /// Total bytes transferred by `write` operations.
    pub bytes_written: u64,
    /// Number of `lseek` operations — the paper's marker of random access.
    pub seeks: usize,
    /// Number of open/close block pairs (counted as `open` operations).
    pub blocks: usize,
    /// Operation count per canonical operation name.
    pub per_kind: BTreeMap<String, usize>,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut stats = TraceStats { total_ops: trace.len(), ..TraceStats::default() };
        stats.handle_count = trace.handles().len();
        for op in trace {
            if op.kind.is_negligible() {
                stats.negligible_ops += 1;
            }
            match op.kind {
                OpKind::Read => stats.bytes_read += op.bytes,
                OpKind::Write => stats.bytes_written += op.bytes,
                OpKind::Lseek => stats.seeks += 1,
                OpKind::Open => stats.blocks += 1,
                _ => {}
            }
            *stats.per_kind.entry(op.kind.name().to_string()).or_insert(0) += 1;
        }
        stats
    }

    /// Fraction of substantive (non-negligible) operations that are seeks.
    ///
    /// A crude "randomness" score: Random POSIX I/O traces (category B of
    /// the paper) score high, sequential ones score near zero.
    pub fn seek_ratio(&self) -> f64 {
        let substantive = self.total_ops - self.negligible_ops;
        if substantive == 0 {
            0.0
        } else {
            self.seeks as f64 / substantive as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{HandleId, Operation};
    use crate::parse_trace;

    #[test]
    fn counts_everything() {
        let t = parse_trace(
            "h0 open 0\nh0 write 10\nh0 fileno 0\nh1 open 0\nh1 lseek 0\nh1 read 7\nh1 close 0\nh0 close 0\n",
        )
        .unwrap();
        let s = TraceStats::of(&t);
        assert_eq!(s.total_ops, 8);
        assert_eq!(s.negligible_ops, 1);
        assert_eq!(s.handle_count, 2);
        assert_eq!(s.bytes_read, 7);
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.per_kind["open"], 2);
        assert_eq!(s.per_kind["lseek"], 1);
    }

    #[test]
    fn seek_ratio_on_seek_heavy_trace() {
        let h = HandleId::new(0);
        let mut t = Trace::new();
        t.push(Operation::control(h, OpKind::Open));
        for _ in 0..10 {
            t.push(Operation::control(h, OpKind::Lseek));
            t.push(Operation::new(h, OpKind::Write, 8));
        }
        t.push(Operation::control(h, OpKind::Close));
        let s = TraceStats::of(&t);
        assert!(s.seek_ratio() > 0.4 && s.seek_ratio() < 0.5);
    }

    #[test]
    fn seek_ratio_of_empty_trace_is_zero() {
        assert_eq!(TraceStats::of(&Trace::new()).seek_ratio(), 0.0);
    }
}
