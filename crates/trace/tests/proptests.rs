//! Property tests for the trace substrate: text-format robustness,
//! simulated-POSIX model invariants, and the WAL record format (encode /
//! scan round trips, corruption and truncation tolerance).

use proptest::prelude::*;

use kastio_trace::wal::{encode_wal_record, scan_wal, WalRecord};
use kastio_trace::{
    parse_trace, write_trace, HandleId, OpKind, Operation, SeekWhence, SimFs, Trace, TraceStats,
};

fn arb_opkind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Open),
        Just(OpKind::Close),
        Just(OpKind::Read),
        Just(OpKind::Write),
        Just(OpKind::Lseek),
        Just(OpKind::Fsync),
        Just(OpKind::Fileno),
        Just(OpKind::Mmap),
        Just(OpKind::Fscanf),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| OpKind::parse(&s)),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u32..8, arb_opkind(), 0u64..1 << 24), 0..80).prop_map(|ops| {
        ops.into_iter()
            .map(|(h, kind, bytes)| Operation::new(HandleId::new(h), kind, bytes))
            .collect()
    })
}

/// A small WAL record: whitespace-free name/label (the payload header is
/// space-delimited) and a short trace, so the exhaustive per-byte
/// corruption and truncation sweeps below stay cheap.
fn arb_wal_record() -> impl Strategy<Value = WalRecord> {
    (
        0u32..u32::MAX,
        "[a-z][a-z0-9_.-]{0,8}",
        "[a-z][a-z0-9_.-]{0,8}",
        proptest::collection::vec((0u32..8, arb_opkind(), 0u64..1 << 24), 0..8),
    )
        .prop_map(|(id, name, label, ops)| WalRecord {
            id,
            name,
            label,
            trace: ops
                .into_iter()
                .map(|(h, kind, bytes)| Operation::new(HandleId::new(h), kind, bytes))
                .collect(),
        })
}

/// One step of a random SimFs "program".
#[derive(Debug, Clone)]
enum Step {
    Open(u8),
    Close(usize),
    Write(usize, u64),
    Read(usize, u64),
    Seek(usize, i64, u8),
    Fsync(usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(Step::Open),
            (0usize..8).prop_map(Step::Close),
            (0usize..8, 0u64..10_000).prop_map(|(f, n)| Step::Write(f, n)),
            (0usize..8, 0u64..10_000).prop_map(|(f, n)| Step::Read(f, n)),
            (0usize..8, -5_000i64..5_000, 0u8..3).prop_map(|(f, o, w)| Step::Seek(f, o, w)),
            (0usize..8).prop_map(Step::Fsync),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn text_roundtrip_is_lossless(trace in arb_trace()) {
        let text = write_trace(&trace);
        let parsed = parse_trace(&text).expect("rendered traces always parse");
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn arbitrary_input_never_panics(input in "\\PC{0,200}") {
        // parse_trace must either parse or return a structured error.
        let _ = parse_trace(&input);
    }

    #[test]
    fn stats_are_internally_consistent(trace in arb_trace()) {
        let stats = TraceStats::of(&trace);
        prop_assert_eq!(stats.total_ops, trace.len());
        prop_assert!(stats.negligible_ops <= stats.total_ops);
        let per_kind_total: usize = stats.per_kind.values().sum();
        prop_assert_eq!(per_kind_total, stats.total_ops);
        prop_assert!(stats.seek_ratio() >= 0.0 && stats.seek_ratio() <= 1.0);
        prop_assert_eq!(stats.handle_count, trace.handles().len());
    }

    #[test]
    fn without_negligible_is_idempotent(trace in arb_trace()) {
        let once = trace.without_negligible();
        prop_assert_eq!(once.without_negligible(), once.clone());
        prop_assert!(once.len() <= trace.len());
    }

    #[test]
    fn wal_records_encode_then_scan_losslessly(records in proptest::collection::vec(arb_wal_record(), 0..6)) {
        let mut log = Vec::new();
        for record in &records {
            log.extend_from_slice(&encode_wal_record(record));
        }
        let scan = scan_wal(&log);
        prop_assert_eq!(&scan.records, &records);
        prop_assert_eq!(scan.durable_bytes, log.len() as u64);
        prop_assert!(!scan.truncated);
    }

    #[test]
    fn corruption_at_every_byte_offset_never_panics_or_yields_past_it(
        records in proptest::collection::vec(arb_wal_record(), 1..4),
        mask in 1u8..=255,
    ) {
        let encoded: Vec<Vec<u8>> = records.iter().map(encode_wal_record).collect();
        let log: Vec<u8> = encoded.iter().flatten().copied().collect();
        // Which record owns each byte: the scanner must never yield that
        // record, nor anything after it, once the byte is corrupted.
        let mut owner = Vec::with_capacity(log.len());
        for (i, bytes) in encoded.iter().enumerate() {
            owner.extend(std::iter::repeat(i).take(bytes.len()));
        }
        for offset in 0..log.len() {
            let mut corrupt = log.clone();
            corrupt[offset] ^= mask;
            let scan = scan_wal(&corrupt); // must not panic, whatever the bytes say
            prop_assert!(
                scan.records.len() <= owner[offset],
                "offset {offset}^{mask:#04x}: {} records survive a corruption inside record {}",
                scan.records.len(),
                owner[offset]
            );
            for (i, record) in scan.records.iter().enumerate() {
                prop_assert_eq!(record, &records[i], "surviving records are the untouched prefix");
            }
        }
    }

    #[test]
    fn truncation_at_every_byte_offset_recovers_exactly_the_durable_prefix(
        records in proptest::collection::vec(arb_wal_record(), 1..4),
    ) {
        let encoded: Vec<Vec<u8>> = records.iter().map(encode_wal_record).collect();
        let log: Vec<u8> = encoded.iter().flatten().copied().collect();
        for cut in 0..=log.len() {
            let scan = scan_wal(&log[..cut]);
            // The durable prefix: every record that fits entirely below
            // the cut — no more (no partial record applied), no fewer
            // (nothing durable is dropped).
            let mut fit = 0usize;
            let mut fit_bytes = 0usize;
            while fit < encoded.len() && fit_bytes + encoded[fit].len() <= cut {
                fit_bytes += encoded[fit].len();
                fit += 1;
            }
            prop_assert_eq!(scan.records.len(), fit, "cut at {}", cut);
            for (i, record) in scan.records.iter().enumerate() {
                prop_assert_eq!(record, &records[i]);
            }
            prop_assert_eq!(scan.durable_bytes, fit_bytes as u64);
            prop_assert_eq!(scan.truncated, cut != fit_bytes, "cut at {}", cut);
        }
    }

    #[test]
    fn simfs_model_invariants(steps in arb_steps()) {
        let mut fs = SimFs::new();
        let mut fds = Vec::new();
        for step in steps {
            match step {
                Step::Open(file) => {
                    let fd = fs.open(&format!("file{file}")).expect("open succeeds");
                    fds.push(Some(fd));
                }
                Step::Close(slot) => {
                    if let Some(entry) = fds.get_mut(slot) {
                        if let Some(fd) = entry.take() {
                            fs.close(fd).expect("open descriptor closes");
                        }
                    }
                }
                Step::Write(slot, n) => {
                    if let Some(Some(fd)) = fds.get(slot) {
                        let wrote = fs.write(*fd, n).expect("write on open fd");
                        prop_assert_eq!(wrote, n, "writes never truncate");
                    }
                }
                Step::Read(slot, n) => {
                    if let Some(Some(fd)) = fds.get(slot) {
                        let got = fs.read(*fd, n).expect("read on open fd");
                        prop_assert!(got <= n, "reads never exceed the request");
                    }
                }
                Step::Seek(slot, off, whence) => {
                    if let Some(Some(fd)) = fds.get(slot) {
                        let whence = match whence {
                            0 => SeekWhence::Set,
                            1 => SeekWhence::Cur,
                            _ => SeekWhence::End,
                        };
                        // May legitimately fail with NegativeOffset.
                        if let Ok(pos) = fs.lseek(*fd, off, whence) {
                            prop_assert_eq!(fs.offset(*fd).unwrap(), pos);
                        }
                    }
                }
                Step::Fsync(slot) => {
                    if let Some(Some(fd)) = fds.get(slot) {
                        fs.fsync(*fd).expect("fsync on open fd");
                    }
                }
            }
        }
        // The recorded trace is itself parseable and balanced per handle.
        let trace = fs.into_trace();
        let reparsed = parse_trace(&write_trace(&trace)).expect("recorded trace parses");
        prop_assert_eq!(&reparsed, &trace);
        for handle in trace.handles() {
            let sub = trace.for_handle(handle);
            let opens = sub.count_kind(&OpKind::Open);
            let closes = sub.count_kind(&OpKind::Close);
            prop_assert!(closes <= opens, "a close always has a matching open");
        }
    }
}
