//! Single-pair kernel evaluation cost.
//!
//! Covers the paper's §4.2 performance claim: "regardless of the string
//! representation, the smaller the cut weight the most expensive the
//! computation became" — see the `kast_cut_weight` group — plus a
//! kernel-vs-kernel comparison and scaling in string length.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

use kastio_bench::microbench::{corpus_strings, example_pair};
use kastio_core::{
    pattern_string, ByteMode, IdString, KastEvaluator, KastKernel, KastOptions, StringKernel,
    TokenInterner,
};
use kastio_kernels::{
    gram_matrix, BagOfTokensKernel, BlendedSpectrumKernel, GramMode, KSpectrumKernel, KernelMatrix,
    WeightingMode,
};
use kastio_workloads::generators::{random_posix, RandomPosixParams};

fn long_pair(iters: usize) -> (IdString, IdString) {
    let mut interner = TokenInterner::new();
    let params = RandomPosixParams {
        write_iterations: iters,
        read_iterations: iters,
        read_bursts: 8,
        ..RandomPosixParams::default()
    };
    let a = random_posix(&params, 1);
    let b = random_posix(&params, 2);
    (
        interner.intern_string(&pattern_string(&a, ByteMode::Preserve)),
        interner.intern_string(&pattern_string(&b, ByteMode::Preserve)),
    )
}

/// The evaluator fast path vs. the retained naive pipeline
/// (`KastKernel::{raw,normalized}_reference`) — the numbers
/// `kastio-bench` records in BENCH_kernel.json.
fn bench_evaluator_paths(c: &mut Criterion) {
    let (a, b) = example_pair();
    let opts = KastOptions::with_cut_weight(2);
    let kernel = KastKernel::new(opts);
    let mut group = c.benchmark_group("kast_raw");
    group.bench_function("reference_naive", |bencher| {
        bencher.iter(|| black_box(kernel.raw_reference(black_box(&a), black_box(&b))));
    });
    group.bench_function("optimized_cold", |bencher| {
        bencher.iter(|| {
            let mut evaluator = KastEvaluator::new(opts);
            black_box(evaluator.raw(black_box(&a), black_box(&b)))
        });
    });
    group.bench_function("optimized_warm", |bencher| {
        let mut evaluator = KastEvaluator::new(opts);
        bencher.iter(|| black_box(evaluator.raw(black_box(&a), black_box(&b))));
    });
    group.finish();

    let strings = corpus_strings(64);
    let mut group = c.benchmark_group("gram_normalized_64");
    group.sample_size(10);
    group.bench_function("naive_per_pair", |bencher| {
        bencher.iter(|| {
            black_box(KernelMatrix::from_fn(strings.len(), |i, j| {
                kernel.normalized_reference(&strings[i], &strings[j])
            }))
        });
    });
    group.bench_function("memoized_diagonal", |bencher| {
        bencher.iter(|| black_box(gram_matrix(&kernel, &strings, GramMode::Normalized, 1)));
    });
    group.finish();
}

fn bench_cut_weight(c: &mut Criterion) {
    let (a, b) = example_pair();
    let mut group = c.benchmark_group("kast_cut_weight");
    for pow in [1u32, 4, 8] {
        let cut = 2u64.pow(pow);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        group.bench_with_input(BenchmarkId::from_parameter(cut), &cut, |bencher, _| {
            bencher.iter(|| black_box(kernel.normalized(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let (a, b) = example_pair();
    let mut group = c.benchmark_group("kernel_comparison");
    let kast = KastKernel::new(KastOptions::with_cut_weight(2));
    group.bench_function("kast_cw2", |bencher| {
        bencher.iter(|| black_box(kast.normalized(black_box(&a), black_box(&b))));
    });
    let blended = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    group.bench_function("blended_k2", |bencher| {
        bencher.iter(|| black_box(blended.normalized(black_box(&a), black_box(&b))));
    });
    let spectrum = KSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    group.bench_function("spectrum_k2", |bencher| {
        bencher.iter(|| black_box(spectrum.normalized(black_box(&a), black_box(&b))));
    });
    let bag = BagOfTokensKernel::new();
    group.bench_function("bag_of_tokens", |bencher| {
        bencher.iter(|| black_box(bag.normalized(black_box(&a), black_box(&b))));
    });
    group.finish();
}

fn bench_string_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("kast_string_length");
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    for iters in [32usize, 128, 512] {
        let (a, b) = long_pair(iters);
        group.bench_with_input(
            BenchmarkId::from_parameter(a.len().max(b.len())),
            &iters,
            |bencher, _| {
                bencher.iter(|| black_box(kernel.normalized(black_box(&a), black_box(&b))));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluator_paths,
    bench_cut_weight,
    bench_kernels,
    bench_string_length
);
fn main() {
    kastio_bench::print_parallelism_banner("kernel_eval");
    benches();
}
