//! Single-pair kernel evaluation cost.
//!
//! Covers the paper's §4.2 performance claim: "regardless of the string
//! representation, the smaller the cut weight the most expensive the
//! computation became" — see the `kast_cut_weight` group — plus a
//! kernel-vs-kernel comparison and scaling in string length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kastio_core::{
    pattern_string, ByteMode, IdString, KastKernel, KastOptions, StringKernel, TokenInterner,
};
use kastio_kernels::{BagOfTokensKernel, BlendedSpectrumKernel, KSpectrumKernel, WeightingMode};
use kastio_workloads::generators::{flash_io, random_posix, FlashIoParams, RandomPosixParams};

fn example_pair() -> (IdString, IdString) {
    let mut interner = TokenInterner::new();
    let a = flash_io(&FlashIoParams { files: 6, ..FlashIoParams::default() });
    let b = flash_io(&FlashIoParams { files: 8, blocks: 30, ..FlashIoParams::default() });
    (
        interner.intern_string(&pattern_string(&a, ByteMode::Preserve)),
        interner.intern_string(&pattern_string(&b, ByteMode::Preserve)),
    )
}

fn long_pair(iters: usize) -> (IdString, IdString) {
    let mut interner = TokenInterner::new();
    let params = RandomPosixParams {
        write_iterations: iters,
        read_iterations: iters,
        read_bursts: 8,
        ..RandomPosixParams::default()
    };
    let a = random_posix(&params, 1);
    let b = random_posix(&params, 2);
    (
        interner.intern_string(&pattern_string(&a, ByteMode::Preserve)),
        interner.intern_string(&pattern_string(&b, ByteMode::Preserve)),
    )
}

fn bench_cut_weight(c: &mut Criterion) {
    let (a, b) = example_pair();
    let mut group = c.benchmark_group("kast_cut_weight");
    for pow in [1u32, 4, 8] {
        let cut = 2u64.pow(pow);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        group.bench_with_input(BenchmarkId::from_parameter(cut), &cut, |bencher, _| {
            bencher.iter(|| black_box(kernel.normalized(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let (a, b) = example_pair();
    let mut group = c.benchmark_group("kernel_comparison");
    let kast = KastKernel::new(KastOptions::with_cut_weight(2));
    group.bench_function("kast_cw2", |bencher| {
        bencher.iter(|| black_box(kast.normalized(black_box(&a), black_box(&b))));
    });
    let blended = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    group.bench_function("blended_k2", |bencher| {
        bencher.iter(|| black_box(blended.normalized(black_box(&a), black_box(&b))));
    });
    let spectrum = KSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    group.bench_function("spectrum_k2", |bencher| {
        bencher.iter(|| black_box(spectrum.normalized(black_box(&a), black_box(&b))));
    });
    let bag = BagOfTokensKernel::new();
    group.bench_function("bag_of_tokens", |bencher| {
        bencher.iter(|| black_box(bag.normalized(black_box(&a), black_box(&b))));
    });
    group.finish();
}

fn bench_string_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("kast_string_length");
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    for iters in [32usize, 128, 512] {
        let (a, b) = long_pair(iters);
        group.bench_with_input(
            BenchmarkId::from_parameter(a.len().max(b.len())),
            &iters,
            |bencher, _| {
                bencher.iter(|| black_box(kernel.normalized(black_box(&a), black_box(&b))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cut_weight, bench_kernels, bench_string_length);
criterion_main!(benches);
