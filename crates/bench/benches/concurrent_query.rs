//! Read-side concurrency: what the sharded, `&self`-querying index buys a
//! multi-client daemon over the old single-`Mutex` scheme.
//!
//! Both regimes answer the same workload — `CLIENTS` threads, each
//! issuing `QUERIES_PER_CLIENT` distinct k-NN queries against the same
//! corpus — and differ only in how the index is shared:
//!
//! * `single_lock` — the pre-sharding daemon design: one
//!   `Mutex<PatternIndex>` locked for the duration of each query, so
//!   clients are strictly serialised no matter how many cores exist;
//! * `sharded_read_concurrent` — the current design: a plain
//!   `&PatternIndex` (shards + interior mutability), every client
//!   querying concurrently under shard *read* locks.
//!
//! The pairwise LRU is disabled and per-query scoring is kept
//! single-threaded so the benchmark isolates *lock* behaviour: with
//! caching on, repeat queries collapse to hash lookups and both regimes
//! finish instantly; with intra-query fan-out on, the single-lock holder
//! would soak every core and hide the serialisation.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::sync::Mutex;

use kastio_index::{IndexOptions, PatternIndex, PrefilterConfig};
use kastio_trace::Trace;
use kastio_workloads::{Dataset, DatasetShape};

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 8;
const SHARDS: usize = 4;

fn corpus() -> Vec<(String, String, Trace)> {
    let shape = DatasetShape { bases_a: 4, bases_b: 2, bases_c: 2, bases_d: 2, copies: 3 };
    Dataset::generate(shape, 20170904)
        .iter()
        .map(|e| (e.name.clone(), e.category.tag().to_string(), e.trace.clone()))
        .collect()
}

/// Per-client probe sets, distinct across clients and iterations so no
/// regime benefits from one probe being hot.
fn probes() -> Vec<Vec<Trace>> {
    (0..CLIENTS)
        .map(|client| {
            Dataset::generate(DatasetShape::small(), 100 + client as u64)
                .iter()
                .map(|e| e.trace.clone())
                .cycle()
                .take(QUERIES_PER_CLIENT)
                .collect()
        })
        .collect()
}

fn build_index(shards: usize) -> PatternIndex {
    let index = PatternIndex::new(IndexOptions {
        shards,
        cache_capacity: 0, // isolate locking, not caching
        threads: 1,        // one core per query; parallelism comes from clients
        prefilter: PrefilterConfig { min_candidates: 8, per_k: 2, ..PrefilterConfig::default() },
        ..IndexOptions::default()
    });
    for (name, label, trace) in corpus() {
        index.ingest(name, label, trace).unwrap();
    }
    index
}

fn bench_concurrent_query(c: &mut Criterion) {
    // Read concurrency buys wall-clock only where hardware threads exist:
    // on a single-core host the two regimes tie (which still demonstrates
    // that sharding adds no locking overhead); with H threads the sharded
    // regime approaches min(CLIENTS, H)× the single-lock throughput.
    let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "concurrent_query: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries, \
         {hardware} hardware thread(s){}",
        if hardware == 1 { " - expect a tie on one core" } else { "" }
    );
    let mut group = c.benchmark_group("concurrent_query");
    group.sample_size(10);
    let probes = probes();

    // Baseline: every query takes the one global lock (PR 2's daemon).
    let locked = Mutex::new(build_index(1));
    group.bench_function("single_lock", |bencher| {
        bencher.iter(|| {
            std::thread::scope(|scope| {
                for client_probes in &probes {
                    let locked = &locked;
                    scope.spawn(move || {
                        for probe in client_probes {
                            let index = locked.lock().unwrap();
                            black_box(index.query(black_box(probe), 3));
                        }
                    });
                }
            });
        });
    });

    // Sharded: the same traffic against `&PatternIndex`, no outer lock.
    let sharded = build_index(SHARDS);
    group.bench_function("sharded_read_concurrent", |bencher| {
        bencher.iter(|| {
            std::thread::scope(|scope| {
                for client_probes in &probes {
                    let sharded = &sharded;
                    scope.spawn(move || {
                        for probe in client_probes {
                            black_box(sharded.query(black_box(probe), 3));
                        }
                    });
                }
            });
        });
    });

    group.finish();
}

criterion_group!(benches, bench_concurrent_query);
fn main() {
    kastio_bench::print_parallelism_banner("concurrent_query");
    benches();
}
