//! Full 110×110 similarity-matrix construction (the §4.1 workload), for
//! the Kast kernel at several cut weights and for the blended baseline —
//! sequential vs parallel.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

use kastio_bench::{prepare, PAPER_SEED};
use kastio_core::{ByteMode, IdString, KastKernel, KastOptions};
use kastio_kernels::{gram_matrix, BlendedSpectrumKernel, GramMode, WeightingMode};
use kastio_workloads::Dataset;

fn strings() -> Vec<IdString> {
    let ds = Dataset::paper(PAPER_SEED);
    prepare(&ds, ByteMode::Preserve).strings
}

fn bench_gram(c: &mut Criterion) {
    let strings = strings();
    let mut group = c.benchmark_group("gram_matrix_110");
    group.sample_size(10);
    for cut in [2u64, 16, 256] {
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        group.bench_with_input(BenchmarkId::new("kast", cut), &cut, |bencher, _| {
            bencher.iter(|| {
                black_box(gram_matrix(&kernel, black_box(&strings), GramMode::Normalized, 0))
            });
        });
    }
    let blended = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    group.bench_function("blended_k2", |bencher| {
        bencher.iter(|| {
            black_box(gram_matrix(&blended, black_box(&strings), GramMode::Normalized, 0))
        });
    });
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let strings = strings();
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let mut group = c.benchmark_group("gram_matrix_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bencher, &t| {
            bencher.iter(|| {
                black_box(gram_matrix(&kernel, black_box(&strings), GramMode::Normalized, t))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gram, bench_parallelism);
fn main() {
    kastio_bench::print_parallelism_banner("gram_matrix");
    benches();
}
