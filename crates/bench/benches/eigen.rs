//! Eigendecomposition, PSD repair and Kernel PCA on the paper-sized
//! (110×110) similarity matrix.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use kastio_bench::{prepare, PAPER_SEED};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_kernels::{gram_matrix, GramMode};
use kastio_linalg::{center_gram, eigh, eigh_ql, psd_repair, KernelPca, SquareMatrix};
use kastio_workloads::Dataset;

fn paper_gram() -> SquareMatrix {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let gram = gram_matrix(&kernel, &prepared.strings, GramMode::Normalized, 0);
    SquareMatrix::from_row_major(gram.n(), gram.as_slice().to_vec())
}

fn bench_eigen(c: &mut Criterion) {
    let gram = paper_gram();
    let mut group = c.benchmark_group("linalg_110");
    group.sample_size(10);
    group.bench_function("eigh_jacobi", |bencher| {
        bencher.iter(|| black_box(eigh(black_box(&gram)).expect("symmetric")));
    });
    group.bench_function("eigh_ql", |bencher| {
        bencher.iter(|| black_box(eigh_ql(black_box(&gram)).expect("symmetric")));
    });
    group.bench_function("psd_repair", |bencher| {
        bencher.iter(|| black_box(psd_repair(black_box(&gram)).expect("symmetric")));
    });
    group.bench_function("center", |bencher| {
        bencher.iter(|| black_box(center_gram(black_box(&gram))));
    });
    let repaired = psd_repair(&gram).expect("symmetric").matrix;
    group.bench_function("kernel_pca_top2", |bencher| {
        bencher.iter(|| black_box(KernelPca::fit(black_box(&repaired), 2).expect("fits")));
    });
    group.finish();
}

criterion_group!(benches, bench_eigen);
fn main() {
    kastio_bench::print_parallelism_banner("eigen");
    benches();
}
