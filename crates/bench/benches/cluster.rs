//! Hierarchical clustering over the paper-sized distance matrix, for all
//! three linkage rules, plus the flat-cut and metric helpers.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

use kastio_bench::{prepare, PAPER_SEED};
use kastio_cluster::{
    hierarchical, hierarchical_nn_chain, purity, silhouette, DistanceMatrix, Linkage,
};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_kernels::{gram_matrix, GramMode};
use kastio_linalg::{psd_repair, SquareMatrix};
use kastio_workloads::Dataset;

fn paper_distance() -> (DistanceMatrix, Vec<usize>) {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let gram = gram_matrix(&kernel, &prepared.strings, GramMode::Normalized, 0);
    let square = SquareMatrix::from_row_major(gram.n(), gram.as_slice().to_vec());
    let repaired = psd_repair(&square).expect("symmetric").matrix;
    (DistanceMatrix::from_gram(repaired.n(), repaired.as_slice()), prepared.labels)
}

fn bench_hac(c: &mut Criterion) {
    let (distance, labels) = paper_distance();
    let mut group = c.benchmark_group("hac_110");
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{linkage:?}")),
            &linkage,
            |bencher, &l| {
                bencher.iter(|| black_box(hierarchical(black_box(&distance), l)));
            },
        );
    }
    for linkage in [Linkage::Single, Linkage::Average] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("nn_chain_{linkage:?}")),
            &linkage,
            |bencher, &l| {
                bencher.iter(|| black_box(hierarchical_nn_chain(black_box(&distance), l)));
            },
        );
    }
    group.finish();

    let dendro = hierarchical(&distance, Linkage::Single);
    let mut group = c.benchmark_group("cluster_postprocessing");
    group.bench_function("cut_k3", |bencher| {
        bencher.iter(|| black_box(dendro.cut(black_box(3))));
    });
    let pred = dendro.cut(3);
    group.bench_function("silhouette", |bencher| {
        bencher.iter(|| black_box(silhouette(black_box(&distance), black_box(&pred))));
    });
    group.bench_function("purity", |bencher| {
        bencher.iter(|| black_box(purity(black_box(&pred), black_box(&labels))));
    });
    group.finish();
}

criterion_group!(benches, bench_hac);
fn main() {
    kastio_bench::print_parallelism_banner("cluster");
    benches();
}
