//! Index-vs-naive query cost: what the `kastio-index` subsystem buys over
//! re-scanning the corpus with the batch pipeline.
//!
//! Three regimes over the same generated corpus:
//!
//! * `naive_full_scan` — the batch baseline: one Kast evaluation per
//!   corpus entry per query (pipeline work already amortised, so this
//!   isolates the kernel cost the index avoids);
//! * `index_cold` — prefiltered index with the cache disabled: the
//!   signature prefilter alone;
//! * `index_warm` — default index answering a repeated query: prefilter
//!   plus LRU cache.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use kastio_core::{pattern_string, ByteMode, KastKernel, KastOptions, StringKernel, TokenInterner};
use kastio_index::{IndexOptions, PatternIndex, PrefilterConfig};
use kastio_trace::Trace;
use kastio_workloads::{Dataset, DatasetShape};

/// A 40-example corpus: paper-style categories at a size where a full
/// scan is clearly measurable but the bench still runs quickly.
fn corpus() -> Vec<(String, String, Trace)> {
    let shape = DatasetShape { bases_a: 4, bases_b: 2, bases_c: 2, bases_d: 2, copies: 3 };
    Dataset::generate(shape, 20170904)
        .iter()
        .map(|e| (e.name.clone(), e.category.tag().to_string(), e.trace.clone()))
        .collect()
}

fn query_trace() -> Trace {
    // A mutant-free category-A base: a realistic "is this workload known?"
    // probe.
    Dataset::generate(DatasetShape::small(), 7).iter().next().unwrap().trace.clone()
}

fn build_index(opts: IndexOptions) -> PatternIndex {
    let index = PatternIndex::new(opts);
    for (name, label, trace) in corpus() {
        index.ingest(name, label, trace).unwrap();
    }
    index
}

fn bench_index_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_vs_naive");
    group.sample_size(10);

    // Naive: kernel against every corpus entry (strings pre-interned, as
    // the batch Gram-matrix path would have them).
    let mut interner = TokenInterner::new();
    let strings: Vec<_> = corpus()
        .iter()
        .map(|(_, _, trace)| interner.intern_string(&pattern_string(trace, ByteMode::Preserve)))
        .collect();
    let query = interner.intern_string(&pattern_string(&query_trace(), ByteMode::Preserve));
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    group.bench_function("naive_full_scan", |bencher| {
        bencher.iter(|| {
            let best = strings
                .iter()
                .map(|s| kernel.normalized(black_box(&query), black_box(s)))
                .fold(f64::NEG_INFINITY, f64::max);
            black_box(best)
        });
    });

    // Cold index: prefilter only (cache off), fresh trace each time.
    let cold = build_index(IndexOptions {
        cache_capacity: 0,
        prefilter: PrefilterConfig { min_candidates: 8, per_k: 2, ..PrefilterConfig::default() },
        ..IndexOptions::default()
    });
    let probe = query_trace();
    group.bench_function("index_cold", |bencher| {
        bencher.iter(|| black_box(cold.query(black_box(&probe), 3)));
    });

    // Warm index: defaults, repeated query → LRU hits.
    let warm = build_index(IndexOptions {
        prefilter: PrefilterConfig { min_candidates: 8, per_k: 2, ..PrefilterConfig::default() },
        ..IndexOptions::default()
    });
    warm.query(&probe, 3); // populate the cache
    group.bench_function("index_warm", |bencher| {
        bencher.iter(|| black_box(warm.query(black_box(&probe), 3)));
    });

    group.finish();
}

criterion_group!(benches, bench_index_vs_naive);
fn main() {
    kastio_bench::print_parallelism_banner("index_query");
    benches();
}
