//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artefact of §4 (see
//! EXPERIMENTS.md for the index); the Criterion benches in `benches/`
//! cover the performance claims. The shared pipeline lives in
//! [`experiment`] and the text rendering in [`report`].

pub mod experiment;
pub mod report;

pub use experiment::{
    analyze, analyze_with_linkage, category_tags, matches_reference, prepare, score_against,
    Analysis, ClusterScore, PreparedDataset, ReferencePartition, PAPER_SEED,
};
