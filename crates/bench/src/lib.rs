//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artefact of §4 (see
//! EXPERIMENTS.md for the index); the Criterion benches in `benches/`
//! cover the performance claims. The shared pipeline lives in
//! [`experiment`] and the text rendering in [`report`].

pub mod experiment;
pub mod microbench;
pub mod report;

/// Prints (and returns) the machine's available parallelism, so every
/// bench's output records the hardware it ran on — a single-CPU container
/// ties the concurrency benches, and the embedded count makes such ties
/// self-explaining instead of looking like regressions.
pub fn print_parallelism_banner(bench: &str) -> usize {
    let parallelism = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("{bench}: available_parallelism={parallelism}");
    parallelism
}

pub use experiment::{
    analyze, analyze_with_linkage, category_tags, matches_reference, prepare, score_against,
    Analysis, ClusterScore, PreparedDataset, ReferencePartition, PAPER_SEED,
};
