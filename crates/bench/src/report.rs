//! Text rendering for the figure/table binaries: aligned tables, PCA
//! scatter plots and per-cluster composition summaries.

use std::collections::BTreeMap;

use kastio_linalg::KernelPca;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use kastio_bench::report::Table;
///
/// let mut t = Table::new(vec!["kernel".into(), "ARI".into()]);
/// t.row(vec!["kast".into(), "1.000".into()]);
/// let text = t.render();
/// assert!(text.contains("kast"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(ncols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate().take(ncols) {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a Kernel-PCA projection as an ASCII scatter plot, one letter
/// per sample (the textual analogue of Figures 6 and 8).
///
/// `tags` supplies the letter plotted for each sample.
pub fn render_scatter(pca: &KernelPca, tags: &[char], width: usize, height: usize) -> String {
    assert_eq!(pca.len(), tags.len(), "one tag per sample");
    if pca.is_empty() {
        return String::new();
    }
    let xs: Vec<f64> = (0..pca.len()).map(|i| pca.coords(i)[0]).collect();
    let ys: Vec<f64> = (0..pca.len()).map(|i| *pca.coords(i).get(1).unwrap_or(&0.0)).collect();
    let (xmin, xmax) = min_max(&xs);
    let (ymin, ymax) = min_max(&ys);
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for i in 0..pca.len() {
        let cx = (((xs[i] - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let cy = (((ys[i] - ymin) / yspan) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy; // y grows upward
        let cell = &mut grid[row][cx];
        // Collisions: keep the first letter unless it differs — then mark
        // the overlap with '*'.
        *cell = match *cell {
            ' ' => tags[i],
            c if c == tags[i] => c,
            _ => '*',
        };
    }
    let mut out = String::new();
    out.push_str(&format!("PC1 ∈ [{xmin:.4}, {xmax:.4}], PC2 ∈ [{ymin:.4}, {ymax:.4}]\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('|');
        out.push('\n');
    }
    out
}

/// Summarises a flat clustering as "cluster → category composition" lines,
/// e.g. `cluster 0: A=50`.
pub fn cluster_composition(pred: &[usize], tags: &[char]) -> String {
    assert_eq!(pred.len(), tags.len(), "one tag per sample");
    let mut per_cluster: BTreeMap<usize, BTreeMap<char, usize>> = BTreeMap::new();
    for (&cluster, &tag) in pred.iter().zip(tags) {
        *per_cluster.entry(cluster).or_default().entry(tag).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (cluster, counts) in per_cluster {
        let body: Vec<String> = counts.iter().map(|(t, c)| format!("{t}={c}")).collect();
        out.push_str(&format!("cluster {cluster}: {}\n", body.join(" ")));
    }
    out
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only".into()]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn composition_counts() {
        let text = cluster_composition(&[0, 0, 1], &['A', 'A', 'B']);
        assert!(text.contains("cluster 0: A=2"));
        assert!(text.contains("cluster 1: B=1"));
    }

    #[test]
    #[should_panic(expected = "one tag per sample")]
    fn composition_validates_lengths() {
        let _ = cluster_composition(&[0], &[]);
    }
}
