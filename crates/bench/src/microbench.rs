//! Shared fixtures for the kernel microbenchmarks — one definition used
//! by both `benches/kernel_eval.rs` and the `kastio-bench` binary, so
//! the criterion numbers and the checked-in `BENCH_kernel.json` always
//! measure the same inputs.

use kastio_core::{pattern_string, ByteMode, IdString, TokenInterner};
use kastio_workloads::generators::{flash_io, random_posix, FlashIoParams, RandomPosixParams};

/// The pairwise-evaluation fixture: two flash-io pattern strings of
/// different shapes, interned together.
pub fn example_pair() -> (IdString, IdString) {
    let mut interner = TokenInterner::new();
    let a = flash_io(&FlashIoParams { files: 6, ..FlashIoParams::default() });
    let b = flash_io(&FlashIoParams { files: 8, blocks: 30, ..FlashIoParams::default() });
    (
        interner.intern_string(&pattern_string(&a, ByteMode::Preserve)),
        interner.intern_string(&pattern_string(&b, ByteMode::Preserve)),
    )
}

/// The Gram-matrix fixture: `n` random-posix pattern strings interned
/// together (seeded per index, so the corpus is deterministic).
pub fn corpus_strings(n: usize) -> Vec<IdString> {
    let mut interner = TokenInterner::new();
    let params = RandomPosixParams {
        write_iterations: 24,
        read_iterations: 24,
        read_bursts: 4,
        ..RandomPosixParams::default()
    };
    (0..n)
        .map(|i| {
            let trace = random_posix(&params, i as u64 + 1);
            interner.intern_string(&pattern_string(&trace, ByteMode::Preserve))
        })
        .collect()
}
