//! **Ablation** — the two under-specified knobs of the Kast kernel
//! (DESIGN.md §4.1): the cut-weight gating rule and the normalisation.
//!
//! This table justifies the crate defaults (`AllOccurrences` + `Cosine`):
//! they are the only combination that reproduces every §4.2 clustering
//! claim, including the no-byte-info "increase the cut weight to recover
//! three groups" effect. The weight-product normalisation degenerates at
//! large cut weights because strings whose every token weighs less than
//! the cut get a zero denominator.

use kastio_bench::report::Table;
use kastio_bench::{analyze, prepare, score_against, ReferencePartition, PAPER_SEED};
use kastio_core::{ByteMode, CutRule, KastKernel, KastOptions, Normalization};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    println!("Ablation — CutRule × Normalization (Kast Spectrum Kernel)\n");
    for mode in [ByteMode::Preserve, ByteMode::Ignore] {
        let prepared = prepare(&ds, mode);
        let mut table = Table::new(vec![
            "cut rule".into(),
            "normalisation".into(),
            "best 3-group ARI (cut)".into(),
            "best 2-group ARI (cut)".into(),
        ]);
        for rule in [CutRule::AnyOccurrence, CutRule::AllOccurrences, CutRule::PerStringSum] {
            for norm in [Normalization::WeightProduct, Normalization::Cosine] {
                let mut best_cd = (f64::NEG_INFINITY, 0u64);
                let mut best_two = (f64::NEG_INFINITY, 0u64);
                for pow in 1..=8u32 {
                    let cut = 2u64.pow(pow);
                    let kernel = KastKernel::new(KastOptions {
                        cut_weight: cut,
                        cut_rule: rule,
                        normalization: norm,
                    });
                    let analysis = analyze(&kernel, &prepared);
                    let cd =
                        score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
                    if cd.ari > best_cd.0 {
                        best_cd = (cd.ari, cut);
                    }
                    let two_ref = match mode {
                        ByteMode::Preserve => ReferencePartition::MergedBcd,
                        ByteMode::Ignore => ReferencePartition::MergedAcd,
                    };
                    let two = score_against(&analysis, &prepared.labels, two_ref);
                    if two.ari > best_two.0 {
                        best_two = (two.ari, cut);
                    }
                }
                table.row(vec![
                    format!("{rule:?}"),
                    format!("{norm:?}"),
                    format!("{:+.3} (cw={})", best_cd.0, best_cd.1),
                    format!("{:+.3} (cw={})", best_two.0, best_two.1),
                ]);
            }
        }
        println!("byte mode {mode:?}:");
        println!("{}", table.render());
    }
}
