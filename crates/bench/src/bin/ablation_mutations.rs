//! **Ablation** — sensitivity of every kernel to the mutation model
//! behind the paper's synthetic copies (DESIGN.md §5).
//!
//! The paper does not specify its mutations. We compare three models:
//! weight-only (duplicate/drop operations, duplicate blocks),
//! the default paper mix (adds ±10% byte-size perturbations), and an
//! aggressive mix (adds `fsync` insertion, which renames merged tokens).
//! The robustness ordering — Kast ≥ blended ≥ k-spectrum — is the paper's
//! §4.3 story in table form.

use kastio_bench::report::Table;
use kastio_bench::{analyze, prepare, score_against, ReferencePartition, PAPER_SEED};
use kastio_core::{ByteMode, KastKernel, KastOptions, StringKernel};
use kastio_kernels::{BlendedSpectrumKernel, KSpectrumKernel, WeightingMode};
use kastio_workloads::{Dataset, DatasetShape, MutationConfig};

fn main() {
    println!("Ablation — kernel robustness across mutation models (byte info kept)\n");
    let models: [(&str, MutationConfig); 3] = [
        ("weight-only", MutationConfig::weight_only()),
        ("paper mix", MutationConfig::default()),
        ("aggressive", MutationConfig::aggressive()),
    ];
    let mut table = Table::new(vec![
        "mutation model".into(),
        "kast cw=2".into(),
        "blended k=2".into(),
        "k-spectrum k=2".into(),
        "k-spectrum k=5".into(),
    ]);
    for (name, config) in models {
        let ds = Dataset::generate_with(DatasetShape::paper(), PAPER_SEED, &config);
        let prepared = prepare(&ds, ByteMode::Preserve);
        let ari = |a: &kastio_bench::Analysis| {
            score_against(a, &prepared.labels, ReferencePartition::MergedCd).ari
        };
        let kast = KastKernel::new(KastOptions::with_cut_weight(2));
        let blended = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
        let spec2 = KSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
        let spec5 = KSpectrumKernel::new(5).with_mode(WeightingMode::Counts);
        assert_eq!(kast.name(), "kast");
        table.row(vec![
            name.into(),
            format!("{:+.3}", ari(&analyze(&kast, &prepared))),
            format!("{:+.3}", ari(&analyze(&blended, &prepared))),
            format!("{:+.3}", ari(&analyze(&spec2, &prepared))),
            format!("{:+.3}", ari(&analyze(&spec5, &prepared))),
        ]);
    }
    println!("{}", table.render());
    println!("(cells: ARI of the 3-cut against the paper partition {{A}},{{B}},{{C∪D}})");
    println!("expected shape: kast stays at 1.000 across models; the fixed-length");
    println!("spectrum baselines degrade as mutations start touching token literals");
}
