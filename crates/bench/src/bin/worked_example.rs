//! **E8** — the §3.2 worked example, digit for digit.
//!
//! Two weighted strings share three substrings S1, S2, S3 with feature
//! vectors {19, 13, 15} and {35, 11, 14}; the kernel value is their inner
//! product 1018, and the normalised kernel is 1018/(64·52) = 0.3059.

use kastio_core::token::{TokenLiteral, WeightedToken};
use kastio_core::{
    CutRule, IdString, KastKernel, KastOptions, Normalization, StringKernel, TokenInterner,
    WeightedString,
};

fn sym(name: &str, w: u64) -> WeightedToken {
    WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
}

fn build(tokens: Vec<WeightedToken>, interner: &mut TokenInterner) -> IdString {
    let s: WeightedString = tokens.into_iter().collect();
    interner.intern_string(&s)
}

fn main() {
    let mut interner = TokenInterner::new();
    // String A: S1 = x y z (19); S2 = u v twice (7 + 6); S3 = w1 w2 twice
    // (6 + 9); plus fillers so that weight_{w≥4}(A) = 64, as in Eq. (1).
    let a = build(
        vec![
            sym("x", 6),
            sym("y", 6),
            sym("z", 7),
            sym("fa1", 1),
            sym("u", 3),
            sym("v", 4),
            sym("fa2", 1),
            sym("u", 2),
            sym("v", 4),
            sym("fa3", 1),
            sym("w1", 2),
            sym("w2", 4),
            sym("fa4", 1),
            sym("w1", 4),
            sym("w2", 5),
            sym("fa5", 12),
            sym("fa6", 12),
        ],
        &mut interner,
    );
    // String B: S1 twice (17 + 18 = 35); S2 twice (6 + 5 = 11); S3 twice
    // (8 + 6 = 14); weight_{w≥4}(B) = 52, as in Eq. (2).
    let b = build(
        vec![
            sym("x", 5),
            sym("y", 6),
            sym("z", 6),
            sym("gb1", 1),
            sym("x", 6),
            sym("y", 6),
            sym("z", 6),
            sym("gb2", 1),
            sym("u", 2),
            sym("v", 4),
            sym("gb3", 1),
            sym("u", 1),
            sym("v", 4),
            sym("gb4", 1),
            sym("w1", 3),
            sym("w2", 5),
            sym("gb5", 1),
            sym("w1", 2),
            sym("w2", 4),
        ],
        &mut interner,
    );

    let kernel = KastKernel::new(KastOptions {
        cut_weight: 4,
        cut_rule: CutRule::AllOccurrences,
        normalization: Normalization::WeightProduct,
    });

    println!("E8 — §3.2 worked example (cut weight 4)\n");
    println!("weight_w≥4(A) = {}   (paper: 64)", a.weight_at_least(4));
    println!("weight_w≥4(B) = {}   (paper: 52)\n", b.weight_at_least(4));

    let mut features = kernel.features(&a, &b);
    features.sort_by_key(|f| (std::cmp::Reverse(f.len()), std::cmp::Reverse(f.weight_a)));
    for (i, f) in features.iter().enumerate() {
        let literal: Vec<String> = f
            .tokens
            .iter()
            .map(|id| interner.resolve(*id).expect("interned").to_string())
            .collect();
        println!(
            "S{} = {:<22} weight in A = {:<3} weight in B = {}",
            i + 1,
            literal.join(" "),
            f.weight_a,
            f.weight_b
        );
    }

    let raw = kernel.raw(&a, &b);
    let normalized = kernel.normalized(&a, &b);
    println!(
        "\nf(A) = {:?}   (paper: [19, 13, 15])",
        features.iter().map(|f| f.weight_a).collect::<Vec<_>>()
    );
    println!(
        "f(B) = {:?}   (paper: [35, 11, 14])",
        features.iter().map(|f| f.weight_b).collect::<Vec<_>>()
    );
    println!("k_w≥4(A,B)  = {raw}   (paper: 1018)");
    println!("k̄_w≥4(A,B) = {normalized:.4} (paper: 1018/3328 = 0.3059)");

    let ok = raw == 1018.0
        && a.weight_at_least(4) == 64
        && b.weight_at_least(4) == 52
        && (normalized - 0.3059).abs() < 1e-4;
    if ok {
        println!("\n=> reproduces the paper's arithmetic exactly");
    } else {
        println!("\n=> DEVIATION from the paper's arithmetic");
    }
}
