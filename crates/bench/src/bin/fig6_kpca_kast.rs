//! **Figure 6** — Kernel PCA for the Kast Spectrum Kernel using byte
//! information, cut weight 2.
//!
//! Expected shape (paper): three clearly separated groups — Flash I/O (A),
//! Random POSIX I/O (B), and Normal + Random Access I/O (C∪D) — with no
//! misplaced examples.

use kastio_bench::report::render_scatter;
use kastio_bench::{
    analyze, category_tags, prepare, score_against, ReferencePartition, PAPER_SEED,
};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let analysis = analyze(&kernel, &prepared);
    let tags = category_tags(&prepared.labels);

    println!("Figure 6 — Kernel PCA, Kast Spectrum Kernel, byte info, cut weight 2");
    println!("(110 examples: A=50, B=20, C=20, D=20; {} eigenvalues clamped)\n", analysis.clamped);
    let pca = analysis.pca.as_ref().expect("spectrum is non-degenerate at cut weight 2");
    println!("{}", render_scatter(pca, &tags, 72, 24));

    let ev = pca.explained_ratio();
    println!(
        "explained (kept spectrum): PC1 {:.1}%  PC2 {:.1}%",
        ev.first().unwrap_or(&0.0) * 100.0,
        ev.get(1).unwrap_or(&0.0) * 100.0
    );
    let score = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
    println!(
        "\n3-group check vs {{A}},{{B}},{{C∪D}}: purity={:.3} ARI={:.3} NMI={:.3}",
        score.purity, score.ari, score.nmi
    );
    if (score.ari - 1.0).abs() < 1e-12 {
        println!("=> reproduces the paper: 3 groups, no misplaced examples");
    } else {
        println!("=> DEVIATION from the paper's reported clustering");
    }
}
