//! **E5** — §4.2's no-byte-information result.
//!
//! Expected shape (paper): "For small cut weights only two clusters were
//! identified: Random POSIX I/O (B) was the only group independently
//! separated, while (A-C-D) conformed a second group. In order to obtain
//! the same three clustering groups identified using the other string
//! category, the weight value had to be increased."

use kastio_bench::report::cluster_composition;
use kastio_bench::{
    analyze, category_tags, prepare, score_against, ReferencePartition, PAPER_SEED,
};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Ignore);
    let tags = category_tags(&prepared.labels);
    println!("E5 — Kast Spectrum Kernel, byte information ignored\n");

    let small = KastKernel::new(KastOptions::with_cut_weight(2));
    let analysis = analyze(&small, &prepared);
    println!("cut weight 2 — flat cut k=2:");
    print!("{}", cluster_composition(&analysis.dendrogram.cut(2), &tags));
    let acd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedAcd);
    println!("check vs {{B}},{{A∪C∪D}}: purity={:.3} ARI={:+.3}", acd.purity, acd.ari);
    let cd3 = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
    println!("3-group attempt at cut weight 2: ARI={:+.3} (paper: not achievable)\n", cd3.ari);

    let mut recovered_at = None;
    for pow in 2..=10u32 {
        let cut = 2u64.pow(pow);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        let analysis = analyze(&kernel, &prepared);
        let cd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
        println!("cut weight {cut:<4}: 3-group ARI={:+.3}", cd.ari);
        if (cd.ari - 1.0).abs() < 1e-12 && recovered_at.is_none() {
            recovered_at = Some(cut);
            println!("  flat cut k=3 at cut weight {cut}:");
            print!("{}", cluster_composition(&analysis.dendrogram.cut(3), &tags));
        }
    }
    match recovered_at {
        Some(cut) => println!(
            "\n=> reproduces the paper: 2 groups at small cuts; increasing the cut weight \
             (to {cut}) recovers the three groups"
        ),
        None => println!("\n=> DEVIATION: no cut weight recovered the three groups"),
    }
}
