//! **Figure 7** — Hierarchical clustering (single linkage) for the Kast
//! Spectrum Kernel using byte information, cut weight 2.
//!
//! Expected shape (paper): the dendrogram splits into {A}, {B}, {C∪D}
//! with no misplaced examples.

use kastio_bench::report::cluster_composition;
use kastio_bench::{
    analyze, category_tags, prepare, score_against, ReferencePartition, PAPER_SEED,
};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let analysis = analyze(&kernel, &prepared);
    let tags = category_tags(&prepared.labels);

    println!("Figure 7 — single-linkage HAC, Kast Spectrum Kernel, byte info, cut weight 2\n");
    println!("last 12 merges (of {}):", analysis.dendrogram.merges().len());
    let text = analysis.dendrogram.render_ascii(Some(&prepared.names));
    let lines: Vec<&str> = text.lines().collect();
    for line in lines.iter().skip(lines.len().saturating_sub(12)) {
        println!("{line}");
    }

    for k in [2usize, 3, 4] {
        let cut = analysis.dendrogram.cut(k);
        println!("\nflat cut k={k}:");
        print!("{}", cluster_composition(&cut, &tags));
    }

    let score = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
    println!(
        "\n3-group check vs {{A}},{{B}},{{C∪D}}: purity={:.3} ARI={:.3}",
        score.purity, score.ari
    );
    if (score.ari - 1.0).abs() < 1e-12 {
        println!("=> reproduces the paper: 3 groups, no misplaced examples");
    } else {
        println!("=> DEVIATION from the paper's reported clustering");
    }
}
