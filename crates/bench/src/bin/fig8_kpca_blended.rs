//! **Figure 8** — Kernel PCA for the Blended Spectrum Kernel using byte
//! information, cut weight 2 (mapped to blended length k = 2).
//!
//! Expected shape (paper): "only Flash I/O (A) examples were independently
//! separated, while Random POSIX I/O, Normal I/O and Random Access I/O
//! (B-C-D) conformed a single group."

use kastio_bench::report::render_scatter;
use kastio_bench::{
    analyze, category_tags, prepare, score_against, ReferencePartition, PAPER_SEED,
};
use kastio_core::ByteMode;
use kastio_kernels::{BlendedSpectrumKernel, WeightingMode};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    let analysis = analyze(&kernel, &prepared);
    let tags = category_tags(&prepared.labels);

    println!("Figure 8 — Kernel PCA, Blended Spectrum Kernel (k=2), byte info");
    println!("({} eigenvalues clamped)\n", analysis.clamped);
    let pca = analysis.pca.as_ref().expect("blended spectrum is non-degenerate");
    println!("{}", render_scatter(pca, &tags, 72, 24));

    let bcd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedBcd);
    let cd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
    println!("2-group check vs {{A}},{{B∪C∪D}}: purity={:.3} ARI={:.3}", bcd.purity, bcd.ari);
    println!("3-group check vs {{A}},{{B}},{{C∪D}}: purity={:.3} ARI={:.3}", cd.purity, cd.ari);
    if (bcd.ari - 1.0).abs() < 1e-12 && cd.ari < 1.0 {
        println!("=> reproduces the paper: only (A) separates; (B-C-D) conform a single group");
    } else {
        println!("=> DEVIATION from the paper's reported clustering");
    }
}
