//! **E7** — the §4.1 protocol: cut weight sweep 2¹ … 2¹⁰ for the Kast
//! Spectrum Kernel, both string representations.
//!
//! Expected shapes (paper): with byte information, small cut weights give
//! the 3-group clustering; without, small cut weights give only 2 groups
//! and the cut weight "had to be increased" for 3; and "the smaller the
//! cut weight the most expensive the computation".

use std::time::Instant;

use kastio_bench::report::Table;
use kastio_bench::{analyze, prepare, score_against, ReferencePartition, PAPER_SEED};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    println!("E7 — Kast Spectrum Kernel cut-weight sweep (110×110 similarity matrices)\n");
    for mode in [ByteMode::Preserve, ByteMode::Ignore] {
        let prepared = prepare(&ds, mode);
        let mut table = Table::new(vec![
            "cut".into(),
            "ARI {A},{B},{CD}".into(),
            "ARI {B},{ACD}".into(),
            "purity(3)".into(),
            "silhouette(3)".into(),
            "clamped".into(),
            "matrix ms".into(),
        ]);
        for pow in 1..=10u32 {
            let cut = 2u64.pow(pow);
            let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
            let start = Instant::now();
            let analysis = analyze(&kernel, &prepared);
            let elapsed = start.elapsed().as_millis();
            let cd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
            let acd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedAcd);
            table.row(vec![
                format!("2^{pow}"),
                format!("{:+.3}", cd.ari),
                format!("{:+.3}", acd.ari),
                format!("{:.3}", cd.purity),
                format!("{:.3}", cd.silhouette),
                format!("{}", analysis.clamped),
                format!("{elapsed}"),
            ]);
        }
        println!("byte mode: {mode:?}");
        println!("{}", table.render());
    }
    println!("paper expectations:");
    println!("  bytes    : ARI{{A}},{{B}},{{CD}} = 1 at small cuts (easy parametrisation)");
    println!("  no bytes : ARI{{B}},{{ACD}} = 1 at small cuts; 3 groups only at a larger cut");
    println!("  cost     : matrix time shrinks as the cut weight grows");
}
