//! `kastio-bench` — the kernel microbenchmark suite as a binary.
//!
//! Runs the hot-path measurements of `benches/kernel_eval.rs` (cold raw,
//! warm raw, normalised Gram n=64) against the retained naive pipeline
//! (`KastKernel::{raw,normalized}_reference`, via the `reference`
//! feature) and writes the medians to `BENCH_kernel.json` in the current
//! directory, seeding the repo's performance trajectory: re-run it after
//! a kernel change and diff the JSON.
//!
//! Usage: `cargo run --release --bin kastio-bench [-- <output-path>]`

use std::hint::black_box;
use std::time::Instant;

use kastio_bench::microbench::{corpus_strings, example_pair};
use kastio_core::{KastEvaluator, KastKernel, KastOptions};
use kastio_kernels::{gram_matrix, GramMode, KernelMatrix};

const GRAM_N: usize = 64;

/// Median ns per call of `f`, over `samples` batches of `per_batch`
/// calls each (one warm-up batch discarded).
fn median_ns(samples: usize, per_batch: usize, mut f: impl FnMut()) -> f64 {
    let mut run_batch = |n: usize| -> f64 {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_secs_f64() * 1e9 / n as f64
    };
    run_batch(per_batch); // warm-up (also warms scratch buffers)
    let mut per_call: Vec<f64> = (0..samples).map(|_| run_batch(per_batch)).collect();
    per_call.sort_by(|a, b| a.total_cmp(b));
    per_call[per_call.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| String::from("BENCH_kernel.json"));
    let parallelism = kastio_bench::print_parallelism_banner("kastio-bench");

    let (a, b) = example_pair();
    let opts = KastOptions::with_cut_weight(2);
    let kernel = KastKernel::new(opts);

    // Pairwise raw: naive baseline, cold evaluator, warm evaluator.
    let raw_naive = median_ns(21, 200, || {
        black_box(kernel.raw_reference(black_box(&a), black_box(&b)));
    });
    let raw_cold = median_ns(21, 200, || {
        let mut evaluator = KastEvaluator::new(opts);
        black_box(evaluator.raw(black_box(&a), black_box(&b)));
    });
    let mut warm = KastEvaluator::new(opts);
    let raw_warm = median_ns(21, 200, || {
        black_box(warm.raw(black_box(&a), black_box(&b)));
    });

    // Normalised Gram, n = 64: naive per-pair vs memoised diagonal.
    let strings = corpus_strings(GRAM_N);
    let evals = (GRAM_N * (GRAM_N + 1) / 2) as f64;
    let gram_naive = median_ns(7, 1, || {
        black_box(KernelMatrix::from_fn(strings.len(), |i, j| {
            kernel.normalized_reference(&strings[i], &strings[j])
        }));
    }) / evals;
    let gram_opt = median_ns(7, 1, || {
        black_box(gram_matrix(&kernel, &strings, GramMode::Normalized, 1));
    }) / evals;

    let speedup_raw = raw_naive / raw_warm;
    let speedup_gram = gram_naive / gram_opt;
    let json = format!(
        "{{\n  \
         \"suite\": \"kernel_eval\",\n  \
         \"available_parallelism\": {parallelism},\n  \
         \"pair_tokens\": [{}, {}],\n  \
         \"gram_n\": {GRAM_N},\n  \
         \"units\": \"ns_per_eval\",\n  \
         \"raw_naive_reference\": {raw_naive:.1},\n  \
         \"raw_optimized_cold\": {raw_cold:.1},\n  \
         \"raw_optimized_warm\": {raw_warm:.1},\n  \
         \"gram_normalized_naive_per_pair\": {gram_naive:.1},\n  \
         \"gram_normalized_memoized_diagonal\": {gram_opt:.1},\n  \
         \"speedup_warm_raw\": {speedup_raw:.2},\n  \
         \"speedup_gram_normalized\": {speedup_gram:.2}\n}}\n",
        a.len(),
        b.len(),
    );
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
