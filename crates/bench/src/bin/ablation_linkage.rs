//! **Ablation** — linkage choice for the hierarchical clustering.
//!
//! The paper uses "the simple linkage method" (single linkage). This
//! table shows whether the headline clustering survives complete and
//! average linkage.

use kastio_bench::report::Table;
use kastio_bench::{analyze_with_linkage, prepare, score_against, ReferencePartition, PAPER_SEED};
use kastio_cluster::Linkage;
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    println!("Ablation — HAC linkage (Kast Spectrum Kernel, cut weight 2)\n");
    let mut table = Table::new(vec![
        "byte mode".into(),
        "linkage".into(),
        "ARI {A},{B},{CD}".into(),
        "ARI 2-group ref".into(),
    ]);
    for mode in [ByteMode::Preserve, ByteMode::Ignore] {
        let prepared = prepare(&ds, mode);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
        let two_ref = match mode {
            ByteMode::Preserve => ReferencePartition::MergedBcd,
            ByteMode::Ignore => ReferencePartition::MergedAcd,
        };
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let analysis = analyze_with_linkage(&kernel, &prepared, linkage);
            let cd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
            let two = score_against(&analysis, &prepared.labels, two_ref);
            table.row(vec![
                format!("{mode:?}"),
                format!("{linkage:?}"),
                format!("{:+.3}", cd.ari),
                format!("{:+.3}", two.ari),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(2-group ref: {{A}},{{BCD}} with bytes; {{B}},{{ACD}} without)");
}
