//! **E6** — §4.3's baseline comparison: k-spectrum vs blended spectrum vs
//! Kast, byte information preserved.
//!
//! Expected shape (paper): "the k-Spectrum kernel was not successful at
//! finding an acceptable clustering, a task where the Blended Spectrum
//! Kernel had a better performance" — and the blended kernel in turn only
//! separates (A), while the Kast kernel finds all three groups.

use kastio_bench::report::Table;
use kastio_bench::{analyze, prepare, score_against, ReferencePartition, PAPER_SEED};
use kastio_core::{ByteMode, KastKernel, KastOptions, StringKernel};
use kastio_kernels::{BagOfTokensKernel, BlendedSpectrumKernel, KSpectrumKernel, WeightingMode};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    println!("E6 — kernel comparison, byte info, 110-example dataset\n");

    let mut table = Table::new(vec![
        "kernel".into(),
        "param".into(),
        "ARI {A},{B},{CD}".into(),
        "ARI {A},{BCD}".into(),
        "purity(3)".into(),
    ]);

    let mut add = |name: &str, param: String, analysis: &kastio_bench::Analysis| {
        let cd = score_against(analysis, &prepared.labels, ReferencePartition::MergedCd);
        let bcd = score_against(analysis, &prepared.labels, ReferencePartition::MergedBcd);
        table.row(vec![
            name.into(),
            param,
            format!("{:+.3}", cd.ari),
            format!("{:+.3}", bcd.ari),
            format!("{:.3}", cd.purity),
        ]);
    };

    let kast = KastKernel::new(KastOptions::with_cut_weight(2));
    add(kast.name(), "cw=2".into(), &analyze(&kast, &prepared));

    for k in [2usize, 3, 5] {
        let blended = BlendedSpectrumKernel::new(k).with_mode(WeightingMode::Counts);
        add(blended.name(), format!("k={k}"), &analyze(&blended, &prepared));
        let spectrum = KSpectrumKernel::new(k).with_mode(WeightingMode::Counts);
        add(spectrum.name(), format!("k={k}"), &analyze(&spectrum, &prepared));
    }

    let bag = BagOfTokensKernel::new();
    add(bag.name(), "-".into(), &analyze(&bag, &prepared));

    println!("{}", table.render());
    println!("paper expectations:");
    println!("  kast cw=2           : three groups, no misplaced examples (ARI 3-group = 1)");
    println!("  blended spectrum    : only (A) separates (ARI {{A}},{{BCD}} = 1, 3-group < 1)");
    println!("  k-spectrum          : no acceptable clustering (3-group ARI < blended's)");
    println!("  bag-of-tokens       : discarded a priori by the paper; shown for completeness");
}
