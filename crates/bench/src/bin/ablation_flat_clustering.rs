//! **Ablation** — does the paper's grouping survive a different
//! clustering algorithm entirely?
//!
//! Runs k-medoids (PAM) over the same kernel distances the dendrograms
//! use, and reports the cophenetic correlation of each linkage — i.e. how
//! faithfully the dendrogram of Fig. 7 represents the kernel metric.

use kastio_bench::report::Table;
use kastio_bench::{analyze, prepare, ReferencePartition, PAPER_SEED};
use kastio_cluster::{
    adjusted_rand_index, cophenetic_correlation, hierarchical, k_medoids, Linkage,
};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let analysis = analyze(&kernel, &prepared);
    let expected = ReferencePartition::MergedCd.project(&prepared.labels);

    println!("Ablation — flat clustering and dendrogram fidelity");
    println!("(Kast kernel, byte info, cut weight 2)\n");

    let mut table = Table::new(vec!["method".into(), "k".into(), "ARI {A},{B},{CD}".into()]);
    for k in [2usize, 3, 4] {
        let result = k_medoids(&analysis.distance, k);
        table.row(vec![
            "k-medoids (PAM)".into(),
            k.to_string(),
            format!("{:+.3}", adjusted_rand_index(&result.labels, &expected)),
        ]);
    }
    let hac3 = analysis.dendrogram.cut(3);
    table.row(vec![
        "single-linkage HAC".into(),
        "3".into(),
        format!("{:+.3}", adjusted_rand_index(&hac3, &expected)),
    ]);
    println!("{}", table.render());

    let mut table = Table::new(vec!["linkage".into(), "cophenetic correlation".into()]);
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let dendro = hierarchical(&analysis.distance, linkage);
        table.row(vec![
            format!("{linkage:?}"),
            format!("{:.4}", cophenetic_correlation(&analysis.distance, &dendro)),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: k-medoids at k=3 agrees with the paper grouping, and the");
    println!("single-linkage dendrogram correlates strongly with the kernel metric.");
}
