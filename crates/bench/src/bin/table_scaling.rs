//! **Extension** — scalability beyond the paper: dataset size vs quality
//! and cost.
//!
//! The paper stops at 110 examples. This sweep doubles the corpus up and
//! down and reports whether the headline clustering survives and how the
//! wall-clock cost of the full analysis grows (Gram build is O(n²)
//! kernel evaluations; the eigensolve O(n³)).

use std::time::Instant;

use kastio_bench::report::Table;
use kastio_bench::{analyze, prepare, score_against, ReferencePartition, PAPER_SEED};
use kastio_core::{ByteMode, KastKernel, KastOptions};
use kastio_workloads::{Dataset, DatasetShape};

fn main() {
    println!("Extension — dataset-size scaling (Kast kernel, byte info, cut weight 2)\n");
    let mut table = Table::new(vec![
        "examples".into(),
        "shape (bases A/B/C/D × copies+1)".into(),
        "ARI {A},{B},{CD}".into(),
        "analysis ms".into(),
    ]);
    let shapes = [
        DatasetShape { bases_a: 5, bases_b: 2, bases_c: 2, bases_d: 2, copies: 1 },
        DatasetShape { bases_a: 5, bases_b: 2, bases_c: 2, bases_d: 2, copies: 4 },
        DatasetShape::paper(),
        DatasetShape { bases_a: 10, bases_b: 4, bases_c: 4, bases_d: 4, copies: 9 },
        DatasetShape { bases_a: 20, bases_b: 8, bases_c: 8, bases_d: 8, copies: 4 },
    ];
    for shape in shapes {
        let ds = Dataset::generate(shape, PAPER_SEED);
        let prepared = prepare(&ds, ByteMode::Preserve);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
        let start = Instant::now();
        let analysis = analyze(&kernel, &prepared);
        let elapsed = start.elapsed().as_millis();
        let score = score_against(&analysis, &prepared.labels, ReferencePartition::MergedCd);
        table.row(vec![
            ds.len().to_string(),
            format!(
                "{}/{}/{}/{} × {}",
                shape.bases_a,
                shape.bases_b,
                shape.bases_c,
                shape.bases_d,
                shape.copies + 1
            ),
            format!("{:+.3}", score.ari),
            elapsed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: the grouping survives at every size; cost grows ~n².");
}
