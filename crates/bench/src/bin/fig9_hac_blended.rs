//! **Figure 9** — Hierarchical clustering (single linkage) for the
//! Blended Spectrum Kernel using byte information, cut weight 2 (k = 2).
//!
//! Expected shape (paper): only (A) splits off; (B-C-D) form one group.

use kastio_bench::report::cluster_composition;
use kastio_bench::{
    analyze, category_tags, prepare, score_against, ReferencePartition, PAPER_SEED,
};
use kastio_core::ByteMode;
use kastio_kernels::{BlendedSpectrumKernel, WeightingMode};
use kastio_workloads::Dataset;

fn main() {
    let ds = Dataset::paper(PAPER_SEED);
    let prepared = prepare(&ds, ByteMode::Preserve);
    let kernel = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    let analysis = analyze(&kernel, &prepared);
    let tags = category_tags(&prepared.labels);

    println!("Figure 9 — single-linkage HAC, Blended Spectrum Kernel (k=2), byte info\n");
    println!("last 12 merges (of {}):", analysis.dendrogram.merges().len());
    let text = analysis.dendrogram.render_ascii(Some(&prepared.names));
    let lines: Vec<&str> = text.lines().collect();
    for line in lines.iter().skip(lines.len().saturating_sub(12)) {
        println!("{line}");
    }

    for k in [2usize, 3] {
        let cut = analysis.dendrogram.cut(k);
        println!("\nflat cut k={k}:");
        print!("{}", cluster_composition(&cut, &tags));
    }

    let bcd = score_against(&analysis, &prepared.labels, ReferencePartition::MergedBcd);
    println!("\n2-group check vs {{A}},{{B∪C∪D}}: purity={:.3} ARI={:.3}", bcd.purity, bcd.ari);
    if (bcd.ari - 1.0).abs() < 1e-12 {
        println!("=> reproduces the paper: only (A) separates at the top level");
    } else {
        println!("=> DEVIATION from the paper's reported clustering");
    }
}
