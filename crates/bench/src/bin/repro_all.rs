//! Runs every experiment check and prints the consolidated
//! paper-vs-measured summary used to fill EXPERIMENTS.md.

use std::time::Instant;

use kastio_bench::report::Table;
use kastio_bench::{
    analyze, matches_reference, prepare, score_against, ReferencePartition, PAPER_SEED,
};
use kastio_core::token::{TokenLiteral, WeightedToken};
use kastio_core::{
    ByteMode, CutRule, KastKernel, KastOptions, Normalization, StringKernel, TokenInterner,
    WeightedString,
};
use kastio_kernels::{BlendedSpectrumKernel, KSpectrumKernel, WeightingMode};
use kastio_workloads::Dataset;

fn main() {
    let start = Instant::now();
    let ds = Dataset::paper(PAPER_SEED);
    let with_bytes = prepare(&ds, ByteMode::Preserve);
    let no_bytes = prepare(&ds, ByteMode::Ignore);

    let mut table = Table::new(vec![
        "exp".into(),
        "artefact".into(),
        "paper expectation".into(),
        "measured".into(),
        "status".into(),
    ]);

    // E1/E2 — Kast, bytes, cw=2 → {A},{B},{C∪D} exactly.
    let kast2 = KastKernel::new(KastOptions::with_cut_weight(2));
    let a = analyze(&kast2, &with_bytes);
    let s = score_against(&a, &with_bytes.labels, ReferencePartition::MergedCd);
    let ok = matches_reference(&a, &with_bytes.labels, ReferencePartition::MergedCd);
    table.row(vec![
        "E1/E2".into(),
        "Fig 6+7: kast, bytes, cw=2".into(),
        "3 groups {A},{B},{C∪D}, none misplaced".into(),
        format!("ARI={:+.3} purity={:.3}", s.ari, s.purity),
        status(ok),
    ]);

    // E3/E4 — blended, bytes, k=2 → only {A} separates.
    let blended = BlendedSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
    let a = analyze(&blended, &with_bytes);
    let bcd = score_against(&a, &with_bytes.labels, ReferencePartition::MergedBcd);
    let cd = score_against(&a, &with_bytes.labels, ReferencePartition::MergedCd);
    let ok = (bcd.ari - 1.0).abs() < 1e-12 && cd.ari < 1.0;
    table.row(vec![
        "E3/E4".into(),
        "Fig 8+9: blended, bytes, k=2".into(),
        "only {A} separates; {B∪C∪D} one group".into(),
        format!("2grp ARI={:+.3}, 3grp ARI={:+.3}", bcd.ari, cd.ari),
        status(ok),
    ]);

    // E5 — kast, no bytes: 2 groups at cw=2; 3 groups at some larger cut.
    let a = analyze(&kast2, &no_bytes);
    let acd = score_against(&a, &no_bytes.labels, ReferencePartition::MergedAcd);
    let small_cd = score_against(&a, &no_bytes.labels, ReferencePartition::MergedCd);
    let ok_small = (acd.ari - 1.0).abs() < 1e-12 && small_cd.ari < 1.0;
    table.row(vec![
        "E5a".into(),
        "§4.2: kast, no bytes, cw=2".into(),
        "2 groups {B},{A∪C∪D} only".into(),
        format!("2grp ARI={:+.3}, 3grp ARI={:+.3}", acd.ari, small_cd.ari),
        status(ok_small),
    ]);
    let mut recovered = None;
    for pow in 2..=10u32 {
        let cut = 2u64.pow(pow);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        let a = analyze(&kernel, &no_bytes);
        if matches_reference(&a, &no_bytes.labels, ReferencePartition::MergedCd) {
            recovered = Some(cut);
            break;
        }
    }
    table.row(vec![
        "E5b".into(),
        "§4.2: kast, no bytes, larger cw".into(),
        "3 groups recovered by raising the cut".into(),
        match recovered {
            Some(cut) => format!("3 groups at cw={cut}"),
            None => "never recovered".into(),
        },
        status(recovered.is_some()),
    ]);

    // E6 — k-spectrum fails where blended partially succeeds.
    let mut worst_spec: f64 = 1.0;
    for k in [2usize, 3, 5] {
        let spec = KSpectrumKernel::new(k).with_mode(WeightingMode::Counts);
        let a = analyze(&spec, &with_bytes);
        let cd = score_against(&a, &with_bytes.labels, ReferencePartition::MergedCd);
        worst_spec = worst_spec.min(cd.ari);
    }
    let ok = worst_spec < 1.0;
    table.row(vec![
        "E6".into(),
        "§4.3: k-spectrum, bytes, k∈{2,3,5}".into(),
        "no acceptable 3-group clustering".into(),
        format!("worst 3grp ARI={worst_spec:+.3}"),
        status(ok),
    ]);

    // E7 — cost falls as the cut weight grows.
    let mut t_small = 0u128;
    let mut t_large = 0u128;
    for (cut, slot) in [(2u64, &mut t_small), (256u64, &mut t_large)] {
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        let t0 = Instant::now();
        let _ = analyze(&kernel, &with_bytes);
        *slot = t0.elapsed().as_micros();
    }
    let ok = t_small >= t_large;
    table.row(vec![
        "E7".into(),
        "§4.2: cost vs cut weight".into(),
        "smaller cut ⇒ costlier computation".into(),
        format!("cw=2: {}µs ≥ cw=256: {}µs", t_small, t_large),
        status(ok),
    ]);

    // E8 — worked example arithmetic.
    let (wa, wb) = worked_example_strings();
    let kernel = KastKernel::new(KastOptions {
        cut_weight: 4,
        cut_rule: CutRule::AllOccurrences,
        normalization: Normalization::WeightProduct,
    });
    let raw = kernel.raw(&wa, &wb);
    let norm = kernel.normalized(&wa, &wb);
    let ok = raw == 1018.0 && (norm - 1018.0 / 3328.0).abs() < 1e-12;
    table.row(vec![
        "E8".into(),
        "§3.2 worked example".into(),
        "k=1018, k̄=0.3059".into(),
        format!("k={raw}, k̄={norm:.4}"),
        status(ok),
    ]);

    println!("kastio — consolidated reproduction summary (seed {PAPER_SEED})\n");
    println!("{}", table.render());
    println!("total wall time: {:.1}s", start.elapsed().as_secs_f64());
    println!("\nper-artefact binaries: fig6_kpca_kast fig7_hac_kast fig8_kpca_blended");
    println!("fig9_hac_blended table_cut_sweep table_no_bytes table_kspectrum");
    println!("worked_example ablation_cut_rule ablation_mutations ablation_linkage");
}

fn status(ok: bool) -> String {
    if ok {
        "OK".into()
    } else {
        "DEVIATION".into()
    }
}

fn worked_example_strings() -> (kastio_core::IdString, kastio_core::IdString) {
    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }
    let mut interner = TokenInterner::new();
    let a: WeightedString = vec![
        sym("x", 6),
        sym("y", 6),
        sym("z", 7),
        sym("fa1", 1),
        sym("u", 3),
        sym("v", 4),
        sym("fa2", 1),
        sym("u", 2),
        sym("v", 4),
        sym("fa3", 1),
        sym("w1", 2),
        sym("w2", 4),
        sym("fa4", 1),
        sym("w1", 4),
        sym("w2", 5),
        sym("fa5", 12),
        sym("fa6", 12),
    ]
    .into_iter()
    .collect();
    let b: WeightedString = vec![
        sym("x", 5),
        sym("y", 6),
        sym("z", 6),
        sym("gb1", 1),
        sym("x", 6),
        sym("y", 6),
        sym("z", 6),
        sym("gb2", 1),
        sym("u", 2),
        sym("v", 4),
        sym("gb3", 1),
        sym("u", 1),
        sym("v", 4),
        sym("gb4", 1),
        sym("w1", 3),
        sym("w2", 5),
        sym("gb5", 1),
        sym("w1", 2),
        sym("w2", 4),
    ]
    .into_iter()
    .collect();
    (interner.intern_string(&a), interner.intern_string(&b))
}
