//! The experiment pipeline shared by every figure/table binary:
//! dataset → strings → Gram matrix → PSD repair → Kernel PCA + HAC →
//! scores.

use kastio_cluster::{
    adjusted_rand_index, hierarchical, normalized_mutual_information, purity, silhouette,
    Dendrogram, DistanceMatrix, Linkage,
};
use kastio_core::{pattern_string, ByteMode, IdString, StringKernel, TokenInterner};
use kastio_kernels::{gram_matrix, GramMode, KernelMatrix};
use kastio_linalg::{psd_repair, KernelPca, SquareMatrix};
use kastio_workloads::Dataset;

/// A dataset converted to interned weighted strings under one byte mode.
#[derive(Debug)]
pub struct PreparedDataset {
    /// Example names, aligned with `strings`.
    pub names: Vec<String>,
    /// Ground-truth category indices (0–3 = A–D).
    pub labels: Vec<usize>,
    /// The interned pattern strings.
    pub strings: Vec<IdString>,
    /// The shared interner (needed to decode tokens).
    pub interner: TokenInterner,
}

/// The seed every paper artefact is generated from (the conference date).
pub const PAPER_SEED: u64 = 20170904;

/// One-letter category tags (`A`–`D`) for a label vector.
pub fn category_tags(labels: &[usize]) -> Vec<char> {
    labels.iter().map(|&l| (b'A' + l as u8) as char).collect()
}

/// Converts every trace of `ds` with the paper's default pipeline.
pub fn prepare(ds: &Dataset, mode: ByteMode) -> PreparedDataset {
    let mut interner = TokenInterner::new();
    let mut strings = Vec::with_capacity(ds.len());
    for example in ds.iter() {
        let ws = pattern_string(&example.trace, mode);
        strings.push(interner.intern_string(&ws));
    }
    PreparedDataset { names: ds.names(), labels: ds.labels(), strings, interner }
}

/// Everything §4.1 derives from one similarity matrix.
#[derive(Debug)]
pub struct Analysis {
    /// The raw (normalised-kernel) similarity matrix.
    pub gram: KernelMatrix,
    /// The PSD-repaired similarity matrix the learners actually see.
    pub repaired: SquareMatrix,
    /// How many negative eigenvalues the repair clamped.
    pub clamped: usize,
    /// Kernel PCA projection (top components) of the repaired matrix;
    /// `None` when the centred spectrum is degenerate (e.g. an all-zero
    /// similarity matrix at an extreme cut weight).
    pub pca: Option<KernelPca>,
    /// Kernel-induced distances.
    pub distance: DistanceMatrix,
    /// Single-linkage dendrogram over those distances.
    pub dendrogram: Dendrogram,
}

/// Runs the full §4.1 analysis for one kernel over prepared strings.
///
/// # Panics
///
/// Panics if the eigensolver rejects the similarity matrix (cannot happen
/// for the symmetric matrices produced here) — the experiment binaries
/// prefer a loud failure over a silently wrong figure.
pub fn analyze<K: StringKernel + Sync>(kernel: &K, prepared: &PreparedDataset) -> Analysis {
    analyze_with_linkage(kernel, prepared, Linkage::Single)
}

/// [`analyze`] with an explicit linkage (for the linkage ablation).
pub fn analyze_with_linkage<K: StringKernel + Sync>(
    kernel: &K,
    prepared: &PreparedDataset,
    linkage: Linkage,
) -> Analysis {
    let gram = gram_matrix(kernel, &prepared.strings, GramMode::Normalized, 0);
    let n = gram.n();
    let square = SquareMatrix::from_row_major(n, gram.as_slice().to_vec());
    let repair = psd_repair(&square).expect("normalised gram matrices are symmetric");
    let pca = KernelPca::fit(&repair.matrix, 2).ok();
    let distance = DistanceMatrix::from_gram(n, repair.matrix.as_slice());
    let dendrogram = hierarchical(&distance, linkage);
    Analysis { gram, repaired: repair.matrix, clamped: repair.clamped, pca, distance, dendrogram }
}

/// The reference partitions the paper's prose describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferencePartition {
    /// Four categories kept apart: {A}, {B}, {C}, {D}.
    FourWay,
    /// The headline result: {A}, {B}, {C ∪ D}.
    MergedCd,
    /// The no-byte-info small-cut result: {B}, {A ∪ C ∪ D}.
    MergedAcd,
    /// The blended-kernel result: {A}, {B ∪ C ∪ D}.
    MergedBcd,
}

impl ReferencePartition {
    /// Number of clusters in the partition.
    pub fn k(self) -> usize {
        match self {
            ReferencePartition::FourWay => 4,
            ReferencePartition::MergedCd => 3,
            ReferencePartition::MergedAcd | ReferencePartition::MergedBcd => 2,
        }
    }

    /// Maps ground-truth category indices (0–3 = A–D) to this partition's
    /// cluster ids.
    pub fn project(self, truth: &[usize]) -> Vec<usize> {
        truth
            .iter()
            .map(|&t| match self {
                ReferencePartition::FourWay => t,
                ReferencePartition::MergedCd => match t {
                    0 => 0,
                    1 => 1,
                    _ => 2,
                },
                ReferencePartition::MergedAcd => usize::from(t == 1),
                ReferencePartition::MergedBcd => usize::from(t != 0),
            })
            .collect()
    }
}

/// External + internal quality scores of one flat clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterScore {
    /// Purity against the reference partition.
    pub purity: f64,
    /// Adjusted Rand index against the reference partition.
    pub ari: f64,
    /// Normalised mutual information against the reference partition.
    pub nmi: f64,
    /// Mean silhouette of the predicted clustering.
    pub silhouette: f64,
}

/// Cuts the dendrogram at the reference partition's cluster count and
/// scores the result against it.
pub fn score_against(
    analysis: &Analysis,
    truth: &[usize],
    reference: ReferencePartition,
) -> ClusterScore {
    let expected = reference.project(truth);
    let pred = analysis.dendrogram.cut(reference.k());
    ClusterScore {
        purity: purity(&pred, &expected),
        ari: adjusted_rand_index(&pred, &expected),
        nmi: normalized_mutual_information(&pred, &expected),
        silhouette: silhouette(&analysis.distance, &pred),
    }
}

/// Whether a flat cut reproduces the reference partition *exactly* (the
/// paper's "no misplaced examples").
pub fn matches_reference(
    analysis: &Analysis,
    truth: &[usize],
    reference: ReferencePartition,
) -> bool {
    let s = score_against(analysis, truth, reference);
    (s.ari - 1.0).abs() < 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_core::{KastKernel, KastOptions};
    use kastio_workloads::DatasetShape;

    #[test]
    fn prepare_aligns_everything() {
        let ds = Dataset::generate(DatasetShape::small(), 1);
        let p = prepare(&ds, ByteMode::Preserve);
        assert_eq!(p.names.len(), ds.len());
        assert_eq!(p.labels.len(), ds.len());
        assert_eq!(p.strings.len(), ds.len());
        assert!(p.interner.len() > 4, "op tokens beyond the structural ones");
    }

    #[test]
    fn analyze_produces_consistent_shapes() {
        let ds = Dataset::generate(DatasetShape::small(), 2);
        let p = prepare(&ds, ByteMode::Preserve);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
        let a = analyze(&kernel, &p);
        assert_eq!(a.gram.n(), ds.len());
        assert_eq!(a.pca.as_ref().expect("pca fits").len(), ds.len());
        assert_eq!(a.dendrogram.len(), ds.len());
    }

    #[test]
    fn reference_partitions_project_correctly() {
        let truth = vec![0, 1, 2, 3];
        assert_eq!(ReferencePartition::FourWay.project(&truth), vec![0, 1, 2, 3]);
        assert_eq!(ReferencePartition::MergedCd.project(&truth), vec![0, 1, 2, 2]);
        assert_eq!(ReferencePartition::MergedAcd.project(&truth), vec![0, 1, 0, 0]);
        assert_eq!(ReferencePartition::MergedBcd.project(&truth), vec![0, 1, 1, 1]);
    }
}
