//! `kastio bench-diff`: regression gating between two `BENCH_serve.json`
//! documents.
//!
//! CI runs the load smoke against the current build, then diffs the fresh
//! artifact against the committed baseline: for every (scenario, verb)
//! pair present in both, throughput must not drop — and client-observed
//! p99 must not grow — beyond a configurable noise band. The comparison
//! is deliberately coarse (load numbers on shared CI hosts are noisy;
//! the default band is ±25% and CI uses a wider one), but it turns a
//! 10× latency regression from a number someone might read into a red
//! build.
//!
//! The JSON reader is a minimal recursive-descent parser (the build
//! environment has no serde); it handles the full JSON grammar, not just
//! the shapes our own writer emits, so hand-edited baselines still load.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogates only arise for astral chars our
                            // writer never emits; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// One compared metric of one (scenario, verb) pair.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Scenario name.
    pub scenario: String,
    /// Verb within the scenario.
    pub verb: String,
    /// `throughput_rps` or `p99_us`.
    pub metric: &'static str,
    /// The baseline document's value.
    pub baseline: f64,
    /// The new document's value.
    pub new: f64,
    /// Whether the movement left the noise band in the bad direction.
    pub regressed: bool,
}

/// The full comparison of two bench documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Fractional noise band the rows were judged against (0.25 = ±25%).
    pub band: f64,
    /// Every compared metric, in scenario/verb order.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// The rows that regressed beyond the band.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|row| row.regressed).collect()
    }

    /// Human-readable table: one line per row, regressions marked.
    pub fn render(&self) -> String {
        let mut out = format!("bench-diff (band ±{:.0}%)\n", self.band * 100.0);
        for row in &self.rows {
            let change = if row.baseline.abs() > f64::EPSILON {
                format!("{:+.1}%", (row.new / row.baseline - 1.0) * 100.0)
            } else {
                "n/a".to_string()
            };
            out.push_str(&format!(
                "  {} {}/{:<7} {:<14} {:>10.1} -> {:>10.1}  ({change})\n",
                if row.regressed { "REGRESSION" } else { "ok        " },
                row.scenario,
                row.verb,
                row.metric,
                row.baseline,
                row.new,
            ));
        }
        out
    }
}

/// A bench document indexed as `(scenario, verb) -> (throughput_rps, p99_us)`.
type VerbMetrics = BTreeMap<(String, String), (f64, f64)>;

fn per_verb_metrics(report: &Json) -> Result<VerbMetrics, String> {
    let scenarios = report
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("document has no `scenarios` array (not a BENCH_serve.json?)")?;
    let mut metrics = BTreeMap::new();
    for scenario in scenarios {
        let name = scenario
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scenario without a `name`")?
            .to_string();
        let Some(Json::Obj(verbs)) = scenario.get("per_verb") else {
            return Err(format!("scenario `{name}` has no `per_verb` object"));
        };
        for (verb, stats) in verbs {
            let field = |key: &str| {
                stats.get(key).and_then(Json::as_f64).ok_or_else(|| {
                    format!("scenario `{name}` verb `{verb}` has no numeric `{key}`")
                })
            };
            metrics
                .insert((name.clone(), verb.clone()), (field("throughput_rps")?, field("p99_us")?));
        }
    }
    Ok(metrics)
}

/// Compares a fresh bench document against a baseline.
///
/// Regression rules, per (scenario, verb) pair present in both documents:
/// throughput below `baseline × (1 − band)`, or p99 above
/// `baseline × (1 + band)`. Pairs present on only one side are ignored
/// (scenario sets evolve); a baseline with *no* overlapping pairs is an
/// error, because a diff that compared nothing must not pass CI.
///
/// # Errors
///
/// Returns a message when either document is not a bench report or the
/// overlap is empty.
pub fn diff_reports(new: &Json, baseline: &Json, band: f64) -> Result<DiffReport, String> {
    let new_metrics = per_verb_metrics(new)?;
    let base_metrics = per_verb_metrics(baseline)?;
    let mut rows = Vec::new();
    for ((scenario, verb), (base_rps, base_p99)) in &base_metrics {
        let Some((new_rps, new_p99)) = new_metrics.get(&(scenario.clone(), verb.clone())) else {
            continue;
        };
        rows.push(DiffRow {
            scenario: scenario.clone(),
            verb: verb.clone(),
            metric: "throughput_rps",
            baseline: *base_rps,
            new: *new_rps,
            regressed: *new_rps < base_rps * (1.0 - band),
        });
        rows.push(DiffRow {
            scenario: scenario.clone(),
            verb: verb.clone(),
            metric: "p99_us",
            baseline: *base_p99,
            new: *new_p99,
            regressed: *new_p99 > base_p99 * (1.0 + band),
        });
    }
    if rows.is_empty() {
        return Err("no (scenario, verb) pair is present in both documents".to_string());
    }
    Ok(DiffReport { band, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(query_rps: f64, query_p99: f64) -> Json {
        parse_json(&format!(
            r#"{{
              "suite": "serve_load",
              "scenarios": [
                {{
                  "name": "read-heavy",
                  "per_verb": {{
                    "QUERY": {{"count": 100, "throughput_rps": {query_rps}, "p99_us": {query_p99}}},
                    "INGEST": {{"count": 10, "throughput_rps": 50.0, "p99_us": 800.0}}
                  }}
                }}
              ]
            }}"#
        ))
        .expect("test document parses")
    }

    #[test]
    fn parser_handles_the_grammar() {
        let doc =
            parse_json(r#"{"a": [1, -2.5, 1e3], "b": "x\"\nA", "c": null, "d": true, "e": {}}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2], Json::Num(1000.0));
        assert_eq!(doc.get("b").unwrap().as_str().unwrap(), "x\"\nA");
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("e"), Some(&Json::Obj(vec![])));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }

    #[test]
    fn parser_round_trips_our_own_writer() {
        use crate::client::{ScenarioRun, VerbStats};
        use crate::histogram::Histogram;
        use std::collections::BTreeMap;
        let mut histogram = Histogram::new();
        histogram.record(1_000_000);
        let mut per_verb = BTreeMap::new();
        per_verb.insert("QUERY", VerbStats { count: 1, errors: 0, busy: 0, histogram });
        let run = ScenarioRun {
            per_verb,
            elapsed: std::time::Duration::from_secs(1),
            requests: 1,
            errors: 0,
            busy: 0,
        };
        let fences = BTreeMap::new();
        let report = crate::report::Report {
            seed: 1,
            clients: 1,
            duration_secs: 1.0,
            server: "self-spawned".to_string(),
            shards: 1,
            available_parallelism: 1,
            scenarios: vec![crate::report::ScenarioReport::new(
                "read-heavy",
                &run,
                &fences,
                &fences,
            )],
        };
        let doc = parse_json(&report.to_json()).expect("writer output parses");
        let (rps, p99) = per_verb_metrics(&doc).unwrap()[&("read-heavy".into(), "QUERY".into())];
        assert!((rps - 1.0).abs() < 1e-9);
        assert!(p99 >= 1_000.0);
    }

    #[test]
    fn identical_documents_pass() {
        let doc = bench_doc(1000.0, 500.0);
        let diff = diff_reports(&doc, &doc, 0.25).unwrap();
        assert_eq!(diff.rows.len(), 4, "two verbs x two metrics");
        assert!(diff.regressions().is_empty(), "{}", diff.render());
    }

    #[test]
    fn a_10x_p99_regression_is_flagged() {
        let baseline = bench_doc(1000.0, 500.0);
        let slow = bench_doc(1000.0, 5000.0);
        let diff = diff_reports(&slow, &baseline, 0.25).unwrap();
        let regressions = diff.regressions();
        assert_eq!(regressions.len(), 1, "{}", diff.render());
        assert_eq!(regressions[0].metric, "p99_us");
        assert_eq!(regressions[0].verb, "QUERY");
        assert!(diff.render().contains("REGRESSION"));
    }

    #[test]
    fn a_throughput_collapse_is_flagged_and_noise_is_not() {
        let baseline = bench_doc(1000.0, 500.0);
        let noisy = bench_doc(850.0, 590.0); // −15% rps, +18% p99: in band
        assert!(diff_reports(&noisy, &baseline, 0.25).unwrap().regressions().is_empty());
        let collapsed = bench_doc(200.0, 500.0);
        let diff = diff_reports(&collapsed, &baseline, 0.25).unwrap();
        assert_eq!(diff.regressions()[0].metric, "throughput_rps");
    }

    #[test]
    fn disjoint_documents_are_an_error() {
        let a = bench_doc(1000.0, 500.0);
        let mut b_text = r#"{"scenarios": [{"name": "other", "per_verb": {}}]}"#.to_string();
        let b = parse_json(&b_text).unwrap();
        assert!(diff_reports(&a, &b, 0.25).unwrap_err().contains("no (scenario, verb) pair"));
        b_text = r#"{"hello": 1}"#.to_string();
        let not_bench = parse_json(&b_text).unwrap();
        assert!(diff_reports(&a, &not_bench, 0.25).is_err());
    }
}
