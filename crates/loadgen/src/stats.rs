//! Parsing the daemon's `STATS` reply and differencing two snapshots, so
//! a load run can attribute cache hits, kernel evaluations and snapshot
//! activity to the scenario that ran between them.

use std::collections::BTreeMap;

/// Parses a framed `STAT <key> <value> … END` reply into a key → value
/// map. Non-numeric values (`last_snapshot_ok -` before any snapshot)
/// are skipped — they carry no deltable information.
///
/// # Errors
///
/// Returns a message when the reply is not a `STAT` block (e.g. an
/// `ERR …` line), so callers surface protocol drift instead of reporting
/// an empty delta.
pub fn parse_stats(reply: &str) -> Result<BTreeMap<String, u64>, String> {
    if !reply.starts_with("STAT ") {
        return Err(format!("not a STATS reply: {}", reply.lines().next().unwrap_or("")));
    }
    let mut map = BTreeMap::new();
    for line in reply.lines() {
        if line == "END" {
            return Ok(map);
        }
        let mut fields = line.split_whitespace();
        let (stat, key, value) = (fields.next(), fields.next(), fields.next());
        match (stat, key, value) {
            (Some("STAT"), Some(key), Some(value)) => {
                if let Ok(number) = value.parse::<u64>() {
                    map.insert(key.to_string(), number);
                }
            }
            _ => return Err(format!("malformed STAT line: {line}")),
        }
    }
    Err("STATS reply not terminated by END".to_string())
}

/// Per-key `after - before` (signed: a key can shrink, e.g. `uptime`
/// never but `cached_pairs` can on eviction). Keys present on only one
/// side are treated as 0 on the other.
pub fn stats_delta(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> BTreeMap<String, i64> {
    let mut delta = BTreeMap::new();
    for key in before.keys().chain(after.keys()) {
        let b = before.get(key).copied().unwrap_or(0) as i64;
        let a = after.get(key).copied().unwrap_or(0) as i64;
        delta.entry(key.clone()).or_insert(a - b);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPLY: &str = "STAT entries 3\nSTAT shards 2\nSTAT cache_hits 7\n\
                         STAT last_snapshot_ok -\nEND\n";

    #[test]
    fn parses_a_stats_block_skipping_non_numeric_values() {
        let map = parse_stats(REPLY).unwrap();
        assert_eq!(map.get("entries"), Some(&3));
        assert_eq!(map.get("cache_hits"), Some(&7));
        assert!(!map.contains_key("last_snapshot_ok"), "`-` is skipped");
    }

    #[test]
    fn rejects_non_stats_replies() {
        assert!(parse_stats("ERR nope\n").unwrap_err().contains("not a STATS reply"));
        assert!(parse_stats("STAT entries 3\n").unwrap_err().contains("END"));
        assert!(parse_stats("STAT entries\nEND\n").unwrap_err().contains("malformed"));
    }

    #[test]
    fn deltas_are_signed_and_total() {
        let before = parse_stats("STAT a 5\nSTAT b 10\nEND\n").unwrap();
        let after = parse_stats("STAT a 8\nSTAT b 4\nSTAT c 2\nEND\n").unwrap();
        let delta = stats_delta(&before, &after);
        assert_eq!(delta.get("a"), Some(&3));
        assert_eq!(delta.get("b"), Some(&-6));
        assert_eq!(delta.get("c"), Some(&2));
    }
}
