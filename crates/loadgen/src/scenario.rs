//! Seeded, reproducible load scenarios.
//!
//! A scenario is a *deterministic* stream of protocol operations per
//! client: the stream is a pure function of `(kind, seed, client id)`,
//! independent of thread scheduling, so the same `--seed` always sends
//! the same request sequence — a timed run just consumes a prefix of it.
//! [`dry_run_trace`] renders that sequence as text, which is both the
//! `--dry-run` output and the determinism contract the test suite pins.
//!
//! All clients share one [`TracePool`] (derived from the seed alone), so
//! the hot-key scenario's skewed picks actually collide across clients
//! and exercise the server's kernel LRU and memoised self-kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The built-in scenario mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// ~70% `QUERY`, ~15% `MQUERY`, ~10% `INGEST`, ~5% `STATS`: the
    /// classifier-serving steady state. Queries pick pool traces
    /// uniformly.
    ReadHeavy,
    /// ~45% `INGEST`, ~20% `BATCH INGEST`, ~25% `QUERY`, ~10% `STATS`:
    /// corpus build-up under concurrent reads.
    WriteHeavy,
    /// Read-heavy with zipf-skewed trace choice (exponent ~1.1): a few
    /// hot queries dominate, so cache hit rates and memoised
    /// self-kernels should climb — visible in the STATS delta.
    HotKey,
    /// ~88% `QUERY`, ~10% `INGEST`, ~2% `SAVE`: hot read traffic with
    /// snapshots (and, under `--wal`, log compactions) landing in the
    /// middle of it. The per-verb SAVE histogram shows what a snapshot
    /// costs; the QUERY histogram shows whether it stalls readers.
    SaveStorm,
    /// ~45% fat `BATCH INGEST` (big items), ~25% `MQUERY`, ~20% `QUERY`,
    /// ~5% `INGEST`, ~5% `STATS`: a memory-pressure storm, meant to run
    /// against a server with a small `--max-memory-bytes` budget. The
    /// interesting measurement is the shed counters — the server must
    /// answer `ERR busy` instead of growing. **Not** part of
    /// [`ScenarioKind::ALL`]: against an ungoverned server it is just a
    /// write flood, and bench baselines should not contain it.
    Overload,
    /// ~80% `QUERY`, ~10% `INGEST`, ~10% `SAVE`: save-storm's aggressive
    /// sibling. Snapshots land five times as often, each preceded by
    /// enough ingests that `save_index_if_changed` actually rewrites the
    /// directory — so the per-verb SAVE histogram measures real snapshot
    /// cost and the QUERY histogram shows whether those snapshots stall
    /// hot read traffic. Opt-in (`--scenario snapshot-stall`): it spends
    /// most of its wall clock on disk I/O, so baselines stay lean
    /// without it.
    SnapshotStall,
    /// Connection churn: every operation is a *fresh* short-lived
    /// connection — connect → `HELLO` → one `QUERY` → close — so the
    /// measured latency includes TCP setup and the handshake, and the
    /// server's accept path (thread spawn or reactor registration,
    /// connection accounting, idle bookkeeping) is exercised thousands
    /// of times instead of once per client. Opt-in
    /// (`--scenario churn`): its histogram measures connection setup,
    /// not steady-state request service, so it would skew baselines.
    Churn,
}

impl ScenarioKind {
    /// Every *default* scenario, in the order `kastio loadgen` runs
    /// them. [`ScenarioKind::Overload`], [`ScenarioKind::SnapshotStall`]
    /// and [`ScenarioKind::Churn`] are opt-in (`--scenario <name>`)
    /// because each measures something a default baseline should not
    /// contain: sheds, snapshot disk I/O, connection-setup cost.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::ReadHeavy,
        ScenarioKind::WriteHeavy,
        ScenarioKind::HotKey,
        ScenarioKind::SaveStorm,
    ];

    /// The opt-in scenarios, for tests and docs that want to cover every
    /// kind: [`ScenarioKind::ALL`] plus these is the full set.
    pub const OPT_IN: [ScenarioKind; 3] =
        [ScenarioKind::Overload, ScenarioKind::SnapshotStall, ScenarioKind::Churn];

    /// The scenario's CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::ReadHeavy => "read-heavy",
            ScenarioKind::WriteHeavy => "write-heavy",
            ScenarioKind::HotKey => "hot-key",
            ScenarioKind::SaveStorm => "save-storm",
            ScenarioKind::Overload => "overload",
            ScenarioKind::SnapshotStall => "snapshot-stall",
            ScenarioKind::Churn => "churn",
        }
    }

    /// Parses a CLI name (`skewed-hot-key` is accepted as an alias).
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        match name {
            "read-heavy" => Some(ScenarioKind::ReadHeavy),
            "write-heavy" => Some(ScenarioKind::WriteHeavy),
            "hot-key" | "skewed-hot-key" => Some(ScenarioKind::HotKey),
            "save-storm" => Some(ScenarioKind::SaveStorm),
            "overload" => Some(ScenarioKind::Overload),
            "snapshot-stall" => Some(ScenarioKind::SnapshotStall),
            "churn" => Some(ScenarioKind::Churn),
            _ => None,
        }
    }

    /// Whether each operation runs on its own fresh connection
    /// (connect → `HELLO` → op → close) instead of a persistent one.
    /// Only [`ScenarioKind::Churn`] — the scenario *is* the reconnect.
    pub fn reconnects_per_op(self) -> bool {
        matches!(self, ScenarioKind::Churn)
    }
}

/// The four synthetic trace families, loosely after the paper's
/// IOR/FLASH-IO workloads. Labels double as classification targets.
const FAMILIES: [&str; 4] = ["ckpt", "scan", "mixed", "stride"];

fn build_trace(family: usize, rng: &mut StdRng) -> String {
    let mut ops: Vec<String> = vec!["h0 open 0".to_string()];
    match FAMILIES[family % FAMILIES.len()] {
        "ckpt" => {
            let size = 1u64 << rng.gen_range(12..=20u32);
            for _ in 0..rng.gen_range(8..=24usize) {
                ops.push(format!("h0 write {size}"));
            }
            ops.push("h0 fsync 0".to_string());
        }
        "scan" => {
            let size = 4096 * rng.gen_range(1..=8u64);
            for _ in 0..rng.gen_range(8..=32usize) {
                ops.push(format!("h0 read {size}"));
            }
        }
        "mixed" => {
            let (rd, wr) = (4096 * rng.gen_range(1..=4u64), 1u64 << rng.gen_range(12..=16u32));
            for _ in 0..rng.gen_range(6..=16usize) {
                ops.push(format!("h0 read {rd}"));
                ops.push(format!("h0 write {wr}"));
            }
        }
        _ => {
            // stride: seek/read pairs at a growing offset.
            let (stride, size) = (1u64 << rng.gen_range(16..=22u32), 4096u64);
            for i in 0..rng.gen_range(6..=20u64) {
                ops.push(format!("h0 lseek {}", i * stride));
                ops.push(format!("h0 read {size}"));
            }
        }
    }
    ops.push("h0 close 0".to_string());
    ops.join(";")
}

/// A deterministic pool of labelled wire-format traces, shared by every
/// client of a run (it depends on the seed only).
#[derive(Debug, Clone)]
pub struct TracePool {
    entries: Vec<(String, String)>,
}

/// Pool size: 16 variants of each of the 4 families.
const POOL_SIZE: usize = 64;

/// Salt separating the pool's RNG stream from the per-client op streams.
const POOL_SALT: u64 = 0x706f_6f6c; // "pool"

impl TracePool {
    /// Builds the pool for `seed`: [`POOL_SIZE`][`TracePool::len`]
    /// labelled traces, families interleaved.
    pub fn new(seed: u64) -> TracePool {
        let mut rng = StdRng::seed_from_u64(seed ^ POOL_SALT);
        let entries = (0..POOL_SIZE)
            .map(|i| (FAMILIES[i % FAMILIES.len()].to_string(), build_trace(i, &mut rng)))
            .collect();
        TracePool { entries }
    }

    /// Number of pooled traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(label, wire-trace)` pair at `idx` (modulo the pool size).
    pub fn entry(&self, idx: usize) -> (&str, &str) {
        let (label, wire) = &self.entries[idx % self.entries.len()];
        (label, wire)
    }
}

/// One protocol operation a load client performs, with everything needed
/// to put it on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `INGEST <label> <trace>`.
    Ingest {
        /// Label of the new entry.
        label: String,
        /// Wire-format trace.
        trace: String,
    },
    /// `BATCH INGEST <n>` plus its item lines.
    BatchIngest {
        /// The `(label, trace)` item lines.
        items: Vec<(String, String)>,
    },
    /// `QUERY k=<k> <trace>`.
    Query {
        /// Neighbour count.
        k: usize,
        /// Wire-format query trace.
        trace: String,
    },
    /// `MQUERY k=<k> <n>` plus its trace lines.
    MQuery {
        /// Neighbour count per query.
        k: usize,
        /// The query trace lines.
        traces: Vec<String>,
    },
    /// `STATS`.
    Stats,
    /// `SAVE`.
    Save,
}

impl Op {
    /// The verb this op is accounted under in the report.
    pub fn verb(&self) -> &'static str {
        match self {
            Op::Ingest { .. } => "INGEST",
            Op::BatchIngest { .. } => "BATCH",
            Op::Query { .. } => "QUERY",
            Op::MQuery { .. } => "MQUERY",
            Op::Stats => "STATS",
            Op::Save => "SAVE",
        }
    }

    /// Renders the complete wire text: header line plus any item lines,
    /// every line newline-terminated, ready for one `write_all`.
    pub fn render(&self) -> String {
        match self {
            Op::Ingest { label, trace } => format!("INGEST {label} {trace}\n"),
            Op::BatchIngest { items } => {
                let mut out = format!("BATCH INGEST {}\n", items.len());
                for (label, trace) in items {
                    out.push_str(&format!("{label} {trace}\n"));
                }
                out
            }
            Op::Query { k, trace } => format!("QUERY k={k} {trace}\n"),
            Op::MQuery { k, traces } => {
                let mut out = format!("MQUERY k={k} {}\n", traces.len());
                for trace in traces {
                    out.push_str(trace);
                    out.push('\n');
                }
                out
            }
            Op::Stats => "STATS\n".to_string(),
            Op::Save => "SAVE\n".to_string(),
        }
    }
}

/// Zipf exponent of the hot-key scenario. ~1.1 gives the classic
/// "few keys dominate, long tail exists" shape without degenerating to
/// a single key.
const ZIPF_EXPONENT: f64 = 1.1;

/// The deterministic per-client operation stream.
#[derive(Debug, Clone)]
pub struct ScenarioGen {
    kind: ScenarioKind,
    rng: StdRng,
    pool: TracePool,
    /// Normalised zipf CDF over pool indices (hot-key scenario only).
    zipf_cdf: Vec<f64>,
}

impl ScenarioGen {
    /// Creates the op stream for one client. Streams for different
    /// `client` ids are decorrelated by a golden-ratio seed spread; the
    /// pool is shared (seed-only) so clients contend on the same keys.
    pub fn new(kind: ScenarioKind, seed: u64, client: u64) -> ScenarioGen {
        let pool = TracePool::new(seed);
        let zipf_cdf = match kind {
            ScenarioKind::HotKey => {
                let weights: Vec<f64> =
                    (0..pool.len()).map(|k| 1.0 / ((k + 1) as f64).powf(ZIPF_EXPONENT)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                weights
                    .iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        ScenarioGen {
            kind,
            rng: StdRng::seed_from_u64(
                seed.wrapping_add((client + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
            pool,
            zipf_cdf,
        }
    }

    fn uniform_pick(&mut self) -> usize {
        self.rng.gen_range(0..self.pool.len())
    }

    fn zipf_pick(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        self.zipf_cdf.partition_point(|&cdf| cdf < u).min(self.pool.len() - 1)
    }

    fn fresh_ingest(&mut self) -> (String, String) {
        let family = self.rng.gen_range(0..FAMILIES.len());
        let trace = build_trace(family, &mut self.rng);
        (FAMILIES[family].to_string(), trace)
    }

    /// A deliberately heavy checkpoint-like ingest (~200 operations,
    /// ~10 KiB of corpus footprint) — the overload scenario's pressure
    /// source. Big enough that a small budget fills within a few
    /// batches, small enough to stay far under the per-line cap.
    fn fat_ingest(&mut self) -> (String, String) {
        let size = 1u64 << self.rng.gen_range(12..=20u32);
        let ops: Vec<String> =
            (0..self.rng.gen_range(192..=256usize)).map(|_| format!("h0 write {size}")).collect();
        ("ckpt".to_string(), ops.join(";"))
    }

    /// The next operation in this client's stream.
    pub fn next_op(&mut self) -> Op {
        let draw = self.rng.gen_range(0..100u32);
        match self.kind {
            ScenarioKind::ReadHeavy => match draw {
                0..=69 => {
                    let idx = self.uniform_pick();
                    Op::Query { k: 3, trace: self.pool.entry(idx).1.to_string() }
                }
                70..=84 => {
                    let traces = (0..4)
                        .map(|_| {
                            let idx = self.uniform_pick();
                            self.pool.entry(idx).1.to_string()
                        })
                        .collect();
                    Op::MQuery { k: 2, traces }
                }
                85..=94 => {
                    let (label, trace) = self.fresh_ingest();
                    Op::Ingest { label, trace }
                }
                _ => Op::Stats,
            },
            ScenarioKind::WriteHeavy => match draw {
                0..=44 => {
                    let (label, trace) = self.fresh_ingest();
                    Op::Ingest { label, trace }
                }
                45..=64 => Op::BatchIngest { items: (0..4).map(|_| self.fresh_ingest()).collect() },
                65..=89 => {
                    let idx = self.uniform_pick();
                    Op::Query { k: 3, trace: self.pool.entry(idx).1.to_string() }
                }
                _ => Op::Stats,
            },
            ScenarioKind::SaveStorm => match draw {
                0..=87 => {
                    let idx = self.uniform_pick();
                    Op::Query { k: 3, trace: self.pool.entry(idx).1.to_string() }
                }
                88..=97 => {
                    let (label, trace) = self.fresh_ingest();
                    Op::Ingest { label, trace }
                }
                _ => Op::Save,
            },
            ScenarioKind::Overload => match draw {
                0..=44 => Op::BatchIngest { items: (0..8).map(|_| self.fat_ingest()).collect() },
                45..=69 => {
                    let traces = (0..6)
                        .map(|_| {
                            let idx = self.uniform_pick();
                            self.pool.entry(idx).1.to_string()
                        })
                        .collect();
                    Op::MQuery { k: 2, traces }
                }
                70..=89 => {
                    let idx = self.uniform_pick();
                    Op::Query { k: 2, trace: self.pool.entry(idx).1.to_string() }
                }
                90..=94 => {
                    let (label, trace) = self.fat_ingest();
                    Op::Ingest { label, trace }
                }
                _ => Op::Stats,
            },
            ScenarioKind::SnapshotStall => match draw {
                0..=79 => {
                    let idx = self.uniform_pick();
                    Op::Query { k: 3, trace: self.pool.entry(idx).1.to_string() }
                }
                80..=89 => {
                    let (label, trace) = self.fresh_ingest();
                    Op::Ingest { label, trace }
                }
                _ => Op::Save,
            },
            ScenarioKind::Churn => {
                // Every op is one whole connection; a single uniform
                // QUERY keeps the scenario about connection setup, not
                // request mix.
                let idx = self.uniform_pick();
                Op::Query { k: 2, trace: self.pool.entry(idx).1.to_string() }
            }
            ScenarioKind::HotKey => match draw {
                0..=79 => {
                    let idx = self.zipf_pick();
                    Op::Query { k: 3, trace: self.pool.entry(idx).1.to_string() }
                }
                80..=91 => {
                    let traces = (0..4)
                        .map(|_| {
                            let idx = self.zipf_pick();
                            self.pool.entry(idx).1.to_string()
                        })
                        .collect();
                    Op::MQuery { k: 2, traces }
                }
                92..=97 => {
                    let (label, trace) = self.fresh_ingest();
                    Op::Ingest { label, trace }
                }
                _ => Op::Stats,
            },
        }
    }
}

/// Renders the first `ops_per_client` operations of every client's
/// stream, verbatim wire text under per-client headers. Two calls with
/// equal `(kind, seed, clients, ops_per_client)` return identical
/// strings — the reproducibility contract `BENCH_serve.json` comparisons
/// rest on, pinned by `tests/loadgen_determinism.rs`.
pub fn dry_run_trace(
    kind: ScenarioKind,
    seed: u64,
    clients: usize,
    ops_per_client: usize,
) -> String {
    let mut out = format!(
        "# scenario={} seed={seed} clients={clients} ops-per-client={ops_per_client}\n",
        kind.name()
    );
    for client in 0..clients {
        out.push_str(&format!("--- client {client} ---\n"));
        let mut gen = ScenarioGen::new(kind, seed, client as u64);
        for _ in 0..ops_per_client {
            out.push_str(&gen.next_op().render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_in_the_seed() {
        let a = TracePool::new(7);
        let b = TracePool::new(7);
        let c = TracePool::new(8);
        assert_eq!(a.entries, b.entries);
        assert_ne!(a.entries, c.entries);
        assert_eq!(a.len(), POOL_SIZE);
    }

    #[test]
    fn every_rendered_op_is_valid_protocol() {
        use kastio_index::protocol::{decode_trace_inline, parse_batch_ingest_item, parse_request};
        for kind in ScenarioKind::ALL.into_iter().chain(ScenarioKind::OPT_IN) {
            let mut gen = ScenarioGen::new(kind, 42, 0);
            for _ in 0..200 {
                let op = gen.next_op();
                let wire = op.render();
                let mut lines = wire.lines();
                let header = lines.next().expect("op renders at least one line");
                let request =
                    parse_request(header).unwrap_or_else(|e| panic!("bad header `{header}`: {e}"));
                match op {
                    Op::BatchIngest { ref items } => {
                        assert_eq!(lines.clone().count(), items.len());
                        for line in lines {
                            parse_batch_ingest_item(line)
                                .unwrap_or_else(|e| panic!("bad item `{line}`: {e}"));
                        }
                    }
                    Op::MQuery { ref traces, .. } => {
                        assert_eq!(lines.clone().count(), traces.len());
                        for line in lines {
                            decode_trace_inline(line)
                                .unwrap_or_else(|e| panic!("bad trace `{line}`: {e}"));
                        }
                    }
                    _ => assert_eq!(lines.count(), 0, "single-line op {request:?}"),
                }
            }
        }
    }

    #[test]
    fn client_streams_are_deterministic_and_decorrelated() {
        for kind in ScenarioKind::ALL {
            let ops = |client: u64| -> Vec<String> {
                let mut gen = ScenarioGen::new(kind, 99, client);
                (0..50).map(|_| gen.next_op().render()).collect()
            };
            assert_eq!(ops(0), ops(0), "{kind:?} stream is deterministic");
            assert_ne!(ops(0), ops(1), "{kind:?} clients are decorrelated");
        }
    }

    #[test]
    fn hot_key_skews_toward_low_pool_indices() {
        let mut gen = ScenarioGen::new(ScenarioKind::HotKey, 5, 0);
        let hottest = gen.pool.entry(0).1.to_string();
        let (mut hot, mut queries) = (0u32, 0u32);
        for _ in 0..2000 {
            if let Op::Query { trace, .. } = gen.next_op() {
                queries += 1;
                if trace == hottest {
                    hot += 1;
                }
            }
        }
        // Under zipf(1.1) over 64 keys the first key carries ~21% of the
        // mass; uniform would give ~1.6%. Assert well above uniform.
        assert!(queries > 1000, "scenario is query-dominated ({queries})");
        assert!(
            hot as f64 / queries as f64 > 0.10,
            "hottest key drew {hot}/{queries} queries — not skewed"
        );
    }

    #[test]
    fn scenario_names_round_trip() {
        for kind in ScenarioKind::ALL.into_iter().chain(ScenarioKind::OPT_IN) {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("skewed-hot-key"), Some(ScenarioKind::HotKey));
        assert_eq!(ScenarioKind::parse("nope"), None);
        for kind in ScenarioKind::OPT_IN {
            assert!(
                !ScenarioKind::ALL.contains(&kind),
                "{} is opt-in, never part of a default (baseline) run",
                kind.name()
            );
        }
        assert!(ScenarioKind::Churn.reconnects_per_op(), "churn is the reconnecting scenario");
        assert!(
            ScenarioKind::ALL.iter().all(|kind| !kind.reconnects_per_op()),
            "default scenarios keep persistent connections"
        );
    }

    #[test]
    fn churn_streams_are_all_queries() {
        let mut gen = ScenarioGen::new(ScenarioKind::Churn, 11, 0);
        for _ in 0..100 {
            assert!(matches!(gen.next_op(), Op::Query { .. }));
        }
    }

    #[test]
    fn snapshot_stall_saves_far_more_often_than_save_storm() {
        let saves = |kind: ScenarioKind| {
            let mut gen = ScenarioGen::new(kind, 11, 0);
            (0..1000).filter(|_| matches!(gen.next_op(), Op::Save)).count()
        };
        let (storm, stall) = (saves(ScenarioKind::SaveStorm), saves(ScenarioKind::SnapshotStall));
        assert!(stall >= 3 * storm, "snapshot-stall saved {stall}x vs save-storm {storm}x");
        assert!(stall >= 50, "~10% of 1000 draws should SAVE, got {stall}");
    }
}
