//! # kastio-loadgen
//!
//! An end-to-end load harness for the `kastio serve` daemon. It drives N
//! concurrent TCP clients through seeded, reproducible scenario mixes —
//! [`ScenarioKind::ReadHeavy`], [`ScenarioKind::WriteHeavy`], the
//! zipf-skewed [`ScenarioKind::HotKey`] and the snapshot-punctuated
//! [`ScenarioKind::SaveStorm`] — measuring per-verb throughput
//! and p50/p95/p99 latency with a constant-memory log-bucketed
//! [`Histogram`], and bracketing every scenario with `STATS` snapshots so
//! the report correlates client-side latency with server-side cache,
//! kernel and snapshot counters. Three scenarios are opt-in
//! (`--scenario <name>`) because they measure things a baseline should
//! not contain: [`ScenarioKind::Overload`] (load shedding under a tiny
//! memory budget), [`ScenarioKind::SnapshotStall`] (aggressive `SAVE`
//! pressure inside hot reads) and [`ScenarioKind::Churn`] (one fresh
//! connect → `HELLO` → `QUERY` → close connection per operation, timing
//! the accept path itself).
//!
//! The harness either targets a running daemon (`addr`) or self-spawns an
//! in-process [`kastio_index::Server`] on an ephemeral port — with a
//! scratch save directory and a write-ahead log attached, so `SAVE` is a
//! servable verb and every ingest pays the real ack-after-fsync price
//! (the report's `wal_records`/`wal_fsyncs` STATS deltas come from
//! there). Every client
//! opens with the `HELLO` handshake and refuses to run against a server
//! speaking a different protocol version. `kastio loadgen` fronts [`run`]
//! on the command line and writes the [`Report`] to `BENCH_serve.json`.
//!
//! Reproducibility: client `c`'s request stream is the pure function
//! `ScenarioGen::new(kind, seed, c)` of the configuration — wall-clock
//! time only decides how much of the stream is consumed. [`dry_run_trace`]
//! renders those streams as text without touching the network.

pub mod client;
pub mod diff;
pub mod histogram;
pub mod report;
pub mod scenario;
pub mod scrape;
pub mod stats;

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kastio_index::protocol::read_reply;
use kastio_index::{IndexOptions, PatternIndex, Server, WalManager};

pub use client::{run_scenario, ScenarioRun, VerbStats};
pub use diff::{diff_reports, parse_json, DiffReport, DiffRow, Json};
pub use histogram::Histogram;
pub use report::{Report, ScenarioReport, ServerLatency, VerbReport};
pub use scenario::{dry_run_trace, Op, ScenarioGen, ScenarioKind, TracePool};
pub use scrape::{latency_delta, parse_latency_buckets, LatencyBuckets};
pub use stats::{parse_stats, stats_delta};

/// Everything a load run needs; `kastio loadgen` builds one from flags.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Scenarios to run, in order.
    pub scenarios: Vec<ScenarioKind>,
    /// Concurrent client connections per scenario.
    pub clients: usize,
    /// Wall-clock duration of each scenario.
    pub duration: Duration,
    /// RNG seed: same seed, same request streams.
    pub seed: u64,
    /// Target an already-running daemon instead of self-spawning one.
    pub addr: Option<String>,
    /// Shards of the self-spawned server (ignored with `addr`).
    pub shards: usize,
    /// Memory budget of the self-spawned server (ignored with `addr`) —
    /// the overload scenario pairs a small budget with its write flood
    /// to measure load shedding. `None` (the default) means unlimited.
    pub max_memory_bytes: Option<u64>,
    /// Traces ingested up-front so read-heavy scenarios query a
    /// non-trivial corpus from the first request.
    pub seed_corpus: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            scenarios: ScenarioKind::ALL.to_vec(),
            clients: 4,
            duration: Duration::from_secs(2),
            seed: 20170904,
            addr: None,
            shards: 4,
            max_memory_bytes: None,
            seed_corpus: 48,
        }
    }
}

/// A control-plane connection: handshakes on connect, then runs one
/// framed request/reply exchange at a time (corpus seeding, STATS
/// fences, final SHUTDOWN).
struct Control {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Control {
    fn connect(addr: &str) -> Result<Control, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone failed: {e}"))?;
        let mut control = Control { writer, reader: BufReader::new(stream) };
        let hello = control.exchange("HELLO 1 kastio-loadgen\n")?;
        if !hello.starts_with("OK kastio proto=") {
            return Err(format!("server rejected the handshake: {}", hello.trim_end()));
        }
        Ok(control)
    }

    fn exchange(&mut self, wire: &str) -> Result<String, String> {
        self.writer
            .write_all(wire.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("control write failed: {e}"))?;
        read_reply(&mut self.reader).map_err(|e| format!("control read failed: {e}"))
    }

    fn fetch_stats(&mut self) -> Result<BTreeMap<String, u64>, String> {
        parse_stats(&self.exchange("STATS\n")?)
    }
}

/// Ingests `count` pool traces over `control` so every scenario starts
/// against the same seeded corpus. Uses `BATCH INGEST` — the bulk path a
/// real loader would use.
fn seed_corpus(control: &mut Control, seed: u64, count: usize) -> Result<(), String> {
    if count == 0 {
        return Ok(());
    }
    let pool = TracePool::new(seed);
    let mut wire = format!("BATCH INGEST {count}\n");
    for i in 0..count {
        let (label, trace) = pool.entry(i);
        wire.push_str(&format!("{label} {trace}\n"));
    }
    let reply = control.exchange(&wire)?;
    if reply.starts_with("ERR") {
        return Err(format!("corpus seeding failed: {}", reply.trim_end()));
    }
    Ok(())
}

/// Runs the configured scenarios and assembles the report.
///
/// With `addr` unset, an in-process [`Server`] is bound to an ephemeral
/// `127.0.0.1` port, served on a background thread, and shut down (via
/// its own `SHUTDOWN` verb) when the run completes. With `addr` set, the
/// target daemon is left running — the harness only sends requests.
///
/// # Errors
///
/// Returns the first failure: bind/connect errors, handshake rejection
/// (version-mismatched or pre-`HELLO` server), corpus-seeding `ERR`, or
/// a client IO error mid-run. Protocol `ERR` replies during a scenario
/// are measurements, not errors.
pub fn run(config: &LoadConfig) -> Result<Report, String> {
    if config.scenarios.is_empty() {
        return Err("no scenarios selected".to_string());
    }
    if config.clients == 0 {
        return Err("need at least one client".to_string());
    }

    // Self-spawn unless pointed at a live daemon.
    let (addr, server_label, server_thread, scratch) = match &config.addr {
        Some(addr) => (addr.clone(), addr.clone(), None, None),
        None => {
            let index = PatternIndex::new(IndexOptions {
                shards: config.shards,
                ..IndexOptions::default()
            });
            // A durable scratch root: SAVE is a first-class verb in the
            // op mixes (save-storm), so the self-spawned server needs a
            // snapshot target — and a WAL, so ingests pay the real
            // ack-after-fsync price the daemon pays under `--wal`.
            static SCRATCH_ID: AtomicU64 = AtomicU64::new(0);
            let scratch = std::env::temp_dir().join(format!(
                "kastio-loadgen-{}-{}",
                std::process::id(),
                SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
            ));
            let wal = WalManager::open(&scratch, config.shards, Duration::from_millis(2))
                .map_err(|e| format!("cannot open the load server's WAL: {e}"))?;
            let server = Server::bind("127.0.0.1:0", index)
                .map_err(|e| format!("cannot bind load server: {e}"))?
                .with_save_dir(Some(scratch.clone()))
                .with_wal(Some(wal))
                .with_memory_limit(config.max_memory_bytes);
            let addr = server.local_addr().map_err(|e| format!("no local addr: {e}"))?.to_string();
            let thread = std::thread::spawn(move || server.serve());
            (addr, "self-spawned".to_string(), Some(thread), Some(scratch))
        }
    };

    let result = drive(config, &addr, &server_label);

    // Stop a self-spawned server even when the run failed; a SHUTDOWN on
    // a fresh connection is the daemon's own clean-exit path.
    if let Some(thread) = server_thread {
        if let Ok(mut control) = Control::connect(&addr) {
            let _ = control.exchange("SHUTDOWN\n");
        }
        thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server failed: {e}"))?;
    }
    if let Some(scratch) = scratch {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    result
}

fn drive(config: &LoadConfig, addr: &str, server_label: &str) -> Result<Report, String> {
    let mut control = Control::connect(addr)?;
    seed_corpus(&mut control, config.seed, config.seed_corpus)?;

    let mut scenarios = Vec::with_capacity(config.scenarios.len());
    for &kind in &config.scenarios {
        let before = control.fetch_stats()?;
        // METRICS fences bracket the scenario so the report can carry the
        // server-side latency distribution of exactly this run. An `ERR`
        // from a pre-METRICS daemon parses to an empty map — the report
        // simply omits `server_latency` entries in that case.
        let metrics_before = parse_latency_buckets(&control.exchange("METRICS\n")?);
        let run = run_scenario(addr, kind, config.seed, config.clients, config.duration)?;
        let after = control.fetch_stats()?;
        let metrics_after = parse_latency_buckets(&control.exchange("METRICS\n")?);
        scenarios.push(
            ScenarioReport::new(kind.name(), &run, &before, &after)
                .with_server_latency(&latency_delta(&metrics_before, &metrics_after)),
        );
    }

    Ok(Report {
        seed: config.seed,
        clients: config.clients,
        duration_secs: config.duration.as_secs_f64(),
        server: server_label.to_string(),
        shards: if config.addr.is_none() { config.shards } else { 0 },
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A whole self-spawned run, kept tiny so the suite stays fast: the
    /// full path (bind, handshake, corpus, four scenarios, STATS
    /// fences, shutdown) in around a second.
    #[test]
    fn self_spawned_run_produces_a_complete_report() {
        let config = LoadConfig {
            clients: 2,
            duration: Duration::from_millis(60),
            seed_corpus: 8,
            shards: 2,
            ..LoadConfig::default()
        };
        let report = run(&config).expect("load run succeeds");
        assert_eq!(report.server, "self-spawned");
        assert_eq!(report.scenarios.len(), 4);
        for scenario in &report.scenarios {
            assert!(scenario.requests > 0, "{} sent requests", scenario.name);
            assert_eq!(scenario.errors, 0, "{} had ERR replies", scenario.name);
            assert!(scenario.throughput_rps > 0.0);
            let delta_requests = scenario.stats_delta.get("requests_total").copied().unwrap_or(0);
            // Server-side counter moved by at least the client-side count
            // (the fences themselves add a couple of STATS requests).
            assert!(
                delta_requests >= scenario.requests as i64,
                "{}: server saw {} requests, clients sent {}",
                scenario.name,
                delta_requests,
                scenario.requests
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"suite\": \"serve_load\""));
        assert!(json.contains("\"hot-key\""));
        assert!(json.contains("\"save-storm\""));

        // Server-side observability: the METRICS fences must have caught
        // the scenario's queries, and the server's view of QUERY latency
        // must be consistent with the clients'. The server times a subset
        // of each request's life (no connect, no client-side read), so
        // server quantiles sit at or under client quantiles — but the
        // server's clock stops after `flush()`, so a deschedule at that
        // exact point inflates individual samples, which on a contended
        // one-core CI box makes the *tail* noisy. The median is robust
        // (only rare samples are inflated); assert tightly there and only
        // loosely at p99. Scrape reconstruction adds ≤ one bucket (~6%).
        for scenario in &report.scenarios {
            let server = scenario
                .server_latency
                .get("query")
                .unwrap_or_else(|| panic!("{}: no server-side QUERY latency", scenario.name));
            let client = scenario
                .per_verb
                .iter()
                .find(|verb| verb.verb == "QUERY")
                .expect("clients sent QUERYs");
            // Every client QUERY lands between the fences, modulo at most
            // one in-flight request per client at each fence boundary.
            assert!(
                server.count.abs_diff(client.count) <= config.clients as u64,
                "{}: server timed {} QUERYs, clients sent {}",
                scenario.name,
                server.count,
                client.count
            );
            assert!(
                server.p50_us <= client.p50_us * 2.0,
                "{}: server QUERY p50 {}us vs client p50 {}us",
                scenario.name,
                server.p50_us,
                client.p50_us
            );
            assert!(
                server.p99_us <= client.p99_us * 5.0,
                "{}: server QUERY p99 {}us wildly exceeds client p99 {}us",
                scenario.name,
                server.p99_us,
                client.p99_us
            );
        }
    }

    /// The save-storm contract: snapshots (with WAL compaction) land in
    /// the middle of hot QUERY traffic, and the per-verb histograms let
    /// us assert they do not stall readers — snapshots run from shard
    /// *read* locks, so QUERY p99 stays bounded even while SAVE rewrites
    /// the corpus directory and compacts the logs.
    #[test]
    fn save_storm_snapshots_do_not_stall_queries() {
        let config = LoadConfig {
            scenarios: vec![ScenarioKind::SaveStorm],
            clients: 2,
            duration: Duration::from_millis(150),
            seed_corpus: 24,
            shards: 2,
            ..LoadConfig::default()
        };
        let report = run(&config).expect("save-storm run succeeds");
        let scenario = &report.scenarios[0];
        assert_eq!(scenario.errors, 0, "every SAVE (and everything else) was served");

        let verb = |name: &str| {
            scenario
                .per_verb
                .iter()
                .find(|v| v.verb == name)
                .unwrap_or_else(|| panic!("save-storm recorded no {name} ops"))
        };
        let (save, query) = (verb("SAVE"), verb("QUERY"));
        assert!(save.count >= 1, "the storm actually snapshotted");
        assert!(query.count > save.count, "queries dominate the mix");
        // Bounded tail: a QUERY that waited behind a snapshot would cost
        // ~a SAVE; allow generous CI noise but not serialization.
        assert!(
            query.p99_us <= (3.0 * save.p99_us).max(50_000.0),
            "QUERY p99 {}us vs SAVE p99 {}us — snapshots are stalling readers",
            query.p99_us,
            save.p99_us
        );

        // The WAL counters moved: ingests were logged and group-commits
        // ran, and each SAVE compacted (visible as a non-negative delta
        // computed against a log that keeps shrinking back).
        let delta = |key: &str| scenario.stats_delta.get(key).copied().unwrap_or(0);
        assert!(delta("wal_records") > 0, "ingests were journalled: {:?}", scenario.stats_delta);
        assert!(delta("wal_fsyncs") > 0, "group commits ran: {:?}", scenario.stats_delta);
    }

    /// The snapshot-stall contract: SAVEs land five times as often as in
    /// save-storm, right in the middle of hot QUERY traffic, and the
    /// per-verb histograms prove the point of the scenario — the SAVE
    /// histogram prices a snapshot, the QUERY histogram shows readers
    /// kept flowing past it (snapshots hold shard *read* locks only).
    #[test]
    fn snapshot_stall_keeps_queries_flowing_past_saves() {
        let config = LoadConfig {
            scenarios: vec![ScenarioKind::SnapshotStall],
            clients: 2,
            duration: Duration::from_millis(150),
            seed_corpus: 24,
            shards: 2,
            ..LoadConfig::default()
        };
        let report = run(&config).expect("snapshot-stall run succeeds");
        let scenario = &report.scenarios[0];
        assert_eq!(scenario.errors, 0, "every SAVE (and everything else) was served");

        let verb = |name: &str| {
            scenario
                .per_verb
                .iter()
                .find(|v| v.verb == name)
                .unwrap_or_else(|| panic!("snapshot-stall recorded no {name} ops"))
        };
        let (save, query) = (verb("SAVE"), verb("QUERY"));
        assert!(save.count >= 2, "a ~10% SAVE mix must snapshot repeatedly ({})", save.count);
        assert!(query.count > save.count, "queries dominate the mix");
        assert!(save.p99_us > 0.0, "the SAVE histogram actually recorded samples");
        // The stall assertion itself: a QUERY that serialised behind a
        // snapshot would cost ~a SAVE; allow generous CI noise but not
        // serialization.
        assert!(
            query.p99_us <= (3.0 * save.p99_us).max(50_000.0),
            "QUERY p99 {}us vs SAVE p99 {}us — snapshots are stalling readers",
            query.p99_us,
            save.p99_us
        );
        // Each effective SAVE bumped the snapshot counter.
        let delta = |key: &str| scenario.stats_delta.get(key).copied().unwrap_or(0);
        assert!(delta("snapshots") >= 1, "snapshots ran: {:?}", scenario.stats_delta);
    }

    /// The churn contract: every op is a fresh connect → HELLO → QUERY →
    /// close, so the server's connection counter advances once per
    /// operation — the accept path is the thing under test.
    #[test]
    fn churn_opens_one_connection_per_operation() {
        let config = LoadConfig {
            scenarios: vec![ScenarioKind::Churn],
            clients: 2,
            duration: Duration::from_millis(120),
            seed_corpus: 8,
            shards: 2,
            ..LoadConfig::default()
        };
        let report = run(&config).expect("churn run succeeds");
        let scenario = &report.scenarios[0];
        assert_eq!(scenario.errors, 0, "short-lived connections were all served");
        let query = scenario
            .per_verb
            .iter()
            .find(|v| v.verb == "QUERY")
            .expect("churn sends one QUERY per connection");
        assert_eq!(query.count, scenario.requests, "churn is all queries");
        assert!(query.count >= 2, "the run had time for a few connections");
        // One connection per op, exactly: the STATS fences bracket the
        // scenario and the control connection predates the `before`
        // fence, so the connections delta is the scenario's own churn.
        let delta = |key: &str| scenario.stats_delta.get(key).copied().unwrap_or(0);
        assert_eq!(
            delta("connections"),
            query.count as i64,
            "server accepted a different number of connections than ops: {:?}",
            scenario.stats_delta
        );
        // And each of those connections said HELLO before its QUERY.
        assert_eq!(delta("verb_hello"), query.count as i64, "{:?}", scenario.stats_delta);
    }

    /// The overload contract: against a deliberately tiny memory budget
    /// the server sheds loudly (`ERR busy`) instead of growing, stays up
    /// for the whole storm, keeps answering reads — and its shed
    /// counters agree, one for one, with the busy replies the clients
    /// actually saw.
    #[test]
    fn overload_run_sheds_loudly_and_counts_every_shed() {
        let config = LoadConfig {
            scenarios: vec![ScenarioKind::Overload],
            clients: 2,
            duration: Duration::from_millis(250),
            seed_corpus: 8,
            shards: 2,
            max_memory_bytes: Some(1 << 20), // 1 MiB: a few fat batches fill it
            ..LoadConfig::default()
        };
        let report = run(&config).expect("overload run completes cleanly");
        let scenario = &report.scenarios[0];
        assert!(scenario.requests > 0, "the storm sent traffic");
        assert!(scenario.busy > 0, "a 1 MiB budget must shed under this mix");
        // Every ERR the clients saw was a deliberate shed, not a broken
        // request or a panic.
        assert_eq!(
            scenario.errors, scenario.busy,
            "non-busy errors under overload: {:?}",
            scenario.per_verb
        );
        // One-for-one accounting: the server's shed counter moved by
        // exactly the number of busy replies the clients received (the
        // control fences bracket the scenario and nothing else runs).
        let delta = |key: &str| scenario.stats_delta.get(key).copied().unwrap_or(0);
        assert_eq!(
            delta("shed_memory"),
            scenario.busy as i64,
            "server-side sheds vs client-observed busy replies: {:?}",
            scenario.stats_delta
        );
        // Reads kept working under pressure: queries ran and none errored.
        let query = scenario
            .per_verb
            .iter()
            .find(|v| v.verb == "QUERY")
            .expect("overload mixes in queries");
        assert!(query.count > 0);
        assert_eq!(query.errors, query.busy, "queries failed for a non-memory reason");
        let json = report.to_json();
        assert!(json.contains("\"overload\""), "{json}");
    }

    #[test]
    fn run_against_an_external_server_leaves_it_up() {
        let index = PatternIndex::new(IndexOptions::default());
        let server = Server::bind("127.0.0.1:0", index).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.shutdown_handle().unwrap();
        let thread = std::thread::spawn(move || server.serve());

        let config = LoadConfig {
            scenarios: vec![ScenarioKind::ReadHeavy],
            clients: 2,
            duration: Duration::from_millis(40),
            addr: Some(addr.clone()),
            seed_corpus: 4,
            ..LoadConfig::default()
        };
        let report = run(&config).expect("external run succeeds");
        assert_eq!(report.server, addr);
        assert_eq!(report.shards, 0, "external shard count is unknown");

        // The server must still answer after the harness detaches.
        let mut control = Control::connect(&addr).expect("server still up");
        assert!(control.fetch_stats().is_ok());
        drop(control);
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn empty_configs_are_rejected() {
        let no_scenarios = LoadConfig { scenarios: vec![], ..LoadConfig::default() };
        assert!(run(&no_scenarios).unwrap_err().contains("no scenarios"));
        let no_clients = LoadConfig { clients: 0, ..LoadConfig::default() };
        assert!(run(&no_clients).unwrap_err().contains("at least one client"));
    }
}
