//! The load harness's latency histogram — re-exported from
//! [`kastio_obs`], where the implementation lives since the serve
//! daemon started recording server-side latencies into the very same
//! buckets. `kastio_loadgen::Histogram` keeps its full public API
//! (`new`/`record`/`merge`/`percentile`/`mean`/`min`/`max`/`count`),
//! so existing callers and the determinism tests are unaffected.

pub use kastio_obs::Histogram;
