//! The concurrent client pool: N OS threads, one TCP connection each
//! (except [`ScenarioKind::Churn`], which opens a fresh connection per
//! operation), every client driving its own deterministic
//! [`ScenarioGen`] stream against the daemon until the deadline, timing
//! each request from first write to complete framed reply.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use kastio_index::protocol::read_reply;

use crate::histogram::Histogram;
use crate::scenario::{ScenarioGen, ScenarioKind};

/// Accumulated measurements for one verb.
#[derive(Debug, Clone, Default)]
pub struct VerbStats {
    /// Requests sent (a batched form counts once).
    pub count: u64,
    /// Requests answered with `ERR`.
    pub errors: u64,
    /// The subset of `errors` that were `ERR busy …` load sheds — the
    /// server protecting itself, not a broken request. The overload
    /// scenario asserts these, one for one, against the server's shed
    /// counters.
    pub busy: u64,
    /// Request→full-reply latency samples, in nanoseconds.
    pub histogram: Histogram,
}

/// The merged outcome of one scenario run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRun {
    /// Per-verb measurements, keyed by wire verb.
    pub per_verb: BTreeMap<&'static str, VerbStats>,
    /// Wall-clock time from first request to last reply across the pool.
    pub elapsed: Duration,
    /// Total requests across all verbs and clients.
    pub requests: u64,
    /// Total `ERR` replies across all verbs and clients.
    pub errors: u64,
    /// Total `ERR busy …` sheds across all verbs and clients.
    pub busy: u64,
}

fn merge_runs(
    into: &mut BTreeMap<&'static str, VerbStats>,
    from: BTreeMap<&'static str, VerbStats>,
) {
    for (verb, stats) in from {
        let entry = into.entry(verb).or_default();
        entry.count += stats.count;
        entry.errors += stats.errors;
        entry.busy += stats.busy;
        entry.histogram.merge(&stats.histogram);
    }
}

fn drive_client(
    addr: &str,
    kind: ScenarioKind,
    seed: u64,
    client: u64,
    deadline: Instant,
) -> Result<BTreeMap<&'static str, VerbStats>, String> {
    if kind.reconnects_per_op() {
        return drive_churn_client(addr, kind, seed, client, deadline);
    }
    let stream = TcpStream::connect(addr)
        .map_err(|e| format!("client {client}: cannot connect to {addr}: {e}"))?;
    let mut writer =
        stream.try_clone().map_err(|e| format!("client {client}: clone failed: {e}"))?;
    let mut reader = BufReader::new(stream);

    // Handshake first: the harness refuses to benchmark a server whose
    // protocol it might be misreading.
    writer
        .write_all(b"HELLO 1 kastio-loadgen\n")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("client {client}: handshake write failed: {e}"))?;
    let hello = read_reply(&mut reader)
        .map_err(|e| format!("client {client}: handshake read failed: {e}"))?;
    if !hello.starts_with("OK kastio proto=") {
        return Err(format!("client {client}: server rejected the handshake: {hello}"));
    }

    let mut gen = ScenarioGen::new(kind, seed, client);
    let mut per_verb: BTreeMap<&'static str, VerbStats> = BTreeMap::new();
    while Instant::now() < deadline {
        let op = gen.next_op();
        let wire = op.render();
        let start = Instant::now();
        writer
            .write_all(wire.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("client {client}: write failed: {e}"))?;
        let reply =
            read_reply(&mut reader).map_err(|e| format!("client {client}: read failed: {e}"))?;
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let stats = per_verb.entry(op.verb()).or_default();
        stats.count += 1;
        stats.histogram.record(nanos);
        if reply.starts_with("ERR") {
            stats.errors += 1;
            if reply.starts_with("ERR busy") {
                stats.busy += 1;
            }
        }
    }
    Ok(per_verb)
}

/// The churn variant of [`drive_client`]: every operation is a whole
/// short-lived connection — connect → `HELLO` → the op → close — so the
/// recorded latency *includes* TCP setup and the handshake. That is the
/// point: the scenario measures the server's accept path (thread spawn
/// or reactor registration, connection accounting) under a flood of
/// one-shot clients, the c10k anti-pattern persistent pools hide.
fn drive_churn_client(
    addr: &str,
    kind: ScenarioKind,
    seed: u64,
    client: u64,
    deadline: Instant,
) -> Result<BTreeMap<&'static str, VerbStats>, String> {
    let mut gen = ScenarioGen::new(kind, seed, client);
    let mut per_verb: BTreeMap<&'static str, VerbStats> = BTreeMap::new();
    while Instant::now() < deadline {
        let op = gen.next_op();
        let wire = op.render();
        let start = Instant::now();
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("client {client}: cannot connect to {addr}: {e}"))?;
        let mut writer =
            stream.try_clone().map_err(|e| format!("client {client}: clone failed: {e}"))?;
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"HELLO 1 kastio-loadgen\n")
            .and_then(|()| writer.write_all(wire.as_bytes()))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("client {client}: write failed: {e}"))?;
        let hello = read_reply(&mut reader)
            .map_err(|e| format!("client {client}: handshake read failed: {e}"))?;
        if !hello.starts_with("OK kastio proto=") {
            return Err(format!("client {client}: server rejected the handshake: {hello}"));
        }
        let reply =
            read_reply(&mut reader).map_err(|e| format!("client {client}: read failed: {e}"))?;
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let stats = per_verb.entry(op.verb()).or_default();
        stats.count += 1;
        stats.histogram.record(nanos);
        if reply.starts_with("ERR") {
            stats.errors += 1;
            if reply.starts_with("ERR busy") {
                stats.busy += 1;
            }
        }
        // Dropping writer+reader closes the connection; the next op
        // starts from a fresh socket.
    }
    Ok(per_verb)
}

/// Runs `clients` concurrent connections of scenario `kind` against the
/// daemon at `addr` for `duration`, and merges their measurements.
///
/// Client `c` sends the deterministic stream `ScenarioGen::new(kind,
/// seed, c)`; the run length only decides how much of each stream is
/// consumed.
///
/// # Errors
///
/// Returns the first client error (connect failure, handshake rejection,
/// mid-run IO error). Protocol-level `ERR` replies are *not* errors —
/// they are counted per verb and reported.
pub fn run_scenario(
    addr: &str,
    kind: ScenarioKind,
    seed: u64,
    clients: usize,
    duration: Duration,
) -> Result<ScenarioRun, String> {
    assert!(clients > 0, "at least one client");
    let started = Instant::now();
    let deadline = started + duration;
    let results: Vec<Result<BTreeMap<&'static str, VerbStats>, String>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    scope.spawn(move || drive_client(addr, kind, seed, client as u64, deadline))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| Err("client thread panicked".to_string()))
                })
                .collect()
        });
    let elapsed = started.elapsed();

    let mut run = ScenarioRun { elapsed, ..ScenarioRun::default() };
    for result in results {
        merge_runs(&mut run.per_verb, result?);
    }
    run.requests = run.per_verb.values().map(|v| v.count).sum();
    run.errors = run.per_verb.values().map(|v| v.errors).sum();
    run.busy = run.per_verb.values().map(|v| v.busy).sum();
    Ok(run)
}
