//! Scraping the server's `METRICS` exposition back into [`Histogram`]s.
//!
//! The daemon renders its per-verb latency histograms as cumulative
//! Prometheus `_bucket` series whose `le` bounds are the histogram's own
//! bucket uppers in exact nanoseconds. Because every bucket upper maps
//! back into its own bucket, replaying `record_n(le, count)` rebuilds the
//! occupancy loss-free — so the harness can fence a scenario with two
//! scrapes and report the *server-side* latency distribution of exactly
//! the requests in between, alongside its own client-side measurements.

use std::collections::BTreeMap;

use crate::histogram::Histogram;

/// Per-verb, per-bucket occupancy parsed from one `METRICS` reply:
/// `verb -> bucket_upper_ns -> count` (de-cumulated, `+Inf` dropped).
pub type LatencyBuckets = BTreeMap<String, BTreeMap<u64, u64>>;

/// Parses the `kastio_request_latency_ns_bucket` series out of a
/// `METRICS` reply. Unrelated lines are skipped, so the parser survives
/// new metric families. Returns an empty map for a reply that carries no
/// latency series (e.g. an `ERR unknown verb` from an old server).
pub fn parse_latency_buckets(reply: &str) -> LatencyBuckets {
    let mut buckets = LatencyBuckets::new();
    for line in reply.lines() {
        let Some(rest) = line.strip_prefix("kastio_request_latency_ns_bucket{verb=\"") else {
            continue;
        };
        let Some((verb, rest)) = rest.split_once("\",le=\"") else { continue };
        let Some((le, count)) = rest.split_once("\"} ") else { continue };
        let Ok(le) = le.parse::<u64>() else { continue }; // drops +Inf
        let Ok(cumulative) = count.parse::<u64>() else { continue };
        buckets.entry(verb.to_string()).or_default().insert(le, cumulative);
    }
    // The wire series is cumulative; store per-bucket occupancy so two
    // scrapes subtract bucket-wise.
    for counts in buckets.values_mut() {
        let mut previous = 0;
        for count in counts.values_mut() {
            let occupancy = count.saturating_sub(previous);
            previous = *count;
            *count = occupancy;
        }
    }
    buckets
}

/// `after − before`, rebuilt into one [`Histogram`] per verb (verbs whose
/// counts did not move are omitted). Counters are monotonic, so a
/// negative movement can only mean a server restart between the fences;
/// it is clamped to zero rather than reported as data.
pub fn latency_delta(
    before: &LatencyBuckets,
    after: &LatencyBuckets,
) -> BTreeMap<String, Histogram> {
    let empty = BTreeMap::new();
    let mut delta = BTreeMap::new();
    for (verb, counts) in after {
        let prior = before.get(verb).unwrap_or(&empty);
        let mut histogram = Histogram::new();
        for (&le, &count) in counts {
            histogram.record_n(le, count.saturating_sub(prior.get(&le).copied().unwrap_or(0)));
        }
        if histogram.count() > 0 {
            delta.insert(verb.clone(), histogram);
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "OK metrics\n\
        # TYPE kastio_request_latency_ns histogram\n\
        kastio_request_latency_ns_bucket{verb=\"query\",le=\"1000\"} 2\n\
        kastio_request_latency_ns_bucket{verb=\"query\",le=\"4096\"} 5\n\
        kastio_request_latency_ns_bucket{verb=\"query\",le=\"+Inf\"} 5\n\
        kastio_request_latency_ns_sum{verb=\"query\"} 9000\n\
        kastio_request_latency_ns_count{verb=\"query\"} 5\n\
        kastio_stage_latency_ns_bucket{stage=\"kernel\",le=\"512\"} 9\n\
        END\n";

    #[test]
    fn parses_and_decumulates_verb_buckets() {
        let buckets = parse_latency_buckets(SCRAPE);
        assert_eq!(buckets.len(), 1, "stage series are not request latency");
        let query = &buckets["query"];
        assert_eq!(query.get(&1000), Some(&2));
        assert_eq!(query.get(&4096), Some(&3), "de-cumulated");
        assert!(!query.contains_key(&u64::MAX), "+Inf dropped");
    }

    #[test]
    fn err_replies_scrape_as_empty() {
        assert!(parse_latency_buckets("ERR unknown verb `METRICS`\n").is_empty());
    }

    #[test]
    fn delta_rebuilds_only_the_moved_requests() {
        let before = parse_latency_buckets(SCRAPE);
        let after_wire = SCRAPE
            .replace("le=\"1000\"} 2", "le=\"1000\"} 6")
            .replace("le=\"4096\"} 5", "le=\"4096\"} 9");
        let after = parse_latency_buckets(&after_wire);
        let delta = latency_delta(&before, &after);
        let query = &delta["query"];
        assert_eq!(query.count(), 4, "only the four new sub-1000ns samples");
        assert_eq!(query.max(), 1000);
        // A verb that did not move is absent entirely.
        assert_eq!(delta.len(), 1);
        assert!(latency_delta(&before, &before).is_empty());
    }
}
