//! The `BENCH_serve.json` document: per-scenario, per-verb throughput
//! and latency quantiles plus the server-side STATS deltas, rendered
//! with a hand-rolled JSON writer (the build environment has no serde).

use std::collections::BTreeMap;

use crate::client::ScenarioRun;
use crate::stats::stats_delta;

/// Latency/throughput summary for one verb within one scenario.
#[derive(Debug, Clone)]
pub struct VerbReport {
    /// Wire verb (`QUERY`, `INGEST`, …).
    pub verb: String,
    /// Requests sent.
    pub count: u64,
    /// `ERR` replies received.
    pub errors: u64,
    /// The subset of `errors` that were `ERR busy …` load sheds.
    pub busy: u64,
    /// Requests per second over the scenario's wall clock.
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Worst latency, microseconds.
    pub max_us: f64,
}

/// Server-side latency for one verb over one scenario, rebuilt from the
/// `METRICS` bucket series scraped before and after the run.
#[derive(Debug, Clone)]
pub struct ServerLatency {
    /// Requests the server timed during the scenario.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

impl ServerLatency {
    /// Digests one scraped histogram (nanoseconds) into the report row.
    pub fn from_histogram(histogram: &crate::histogram::Histogram) -> ServerLatency {
        ServerLatency {
            count: histogram.count(),
            p50_us: histogram.percentile(50.0) as f64 / 1e3,
            p95_us: histogram.percentile(95.0) as f64 / 1e3,
            p99_us: histogram.percentile(99.0) as f64 / 1e3,
        }
    }
}

/// One scenario's results: client-side measurements and the server-side
/// STATS movement attributable to the run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (`read-heavy`, …).
    pub name: String,
    /// Wall-clock seconds from first request to last reply.
    pub elapsed_secs: f64,
    /// Total requests across verbs and clients.
    pub requests: u64,
    /// Total `ERR` replies.
    pub errors: u64,
    /// Total `ERR busy …` sheds (a subset of `errors`) — what an
    /// overload run compares against the server's `shed_*` counters.
    pub busy: u64,
    /// Aggregate requests per second.
    pub throughput_rps: f64,
    /// Per-verb breakdown, in verb order.
    pub per_verb: Vec<VerbReport>,
    /// `STATS` after − before, per key (cache hits, kernel evals, shard
    /// entries, snapshot counters, connection/verb counters, …).
    pub stats_delta: BTreeMap<String, i64>,
    /// Server-side latency per verb (lowercase server names), scraped
    /// from the `METRICS` fences. Empty against a server without the
    /// `METRICS` verb.
    pub server_latency: BTreeMap<String, ServerLatency>,
}

impl ScenarioReport {
    /// Builds a report from the measured run and its two STATS fences.
    pub fn new(
        name: &str,
        run: &ScenarioRun,
        before: &BTreeMap<String, u64>,
        after: &BTreeMap<String, u64>,
    ) -> ScenarioReport {
        let secs = run.elapsed.as_secs_f64();
        let per_verb = run
            .per_verb
            .iter()
            .map(|(verb, stats)| VerbReport {
                verb: (*verb).to_string(),
                count: stats.count,
                errors: stats.errors,
                busy: stats.busy,
                throughput_rps: stats.count as f64 / secs,
                p50_us: stats.histogram.percentile(50.0) as f64 / 1e3,
                p95_us: stats.histogram.percentile(95.0) as f64 / 1e3,
                p99_us: stats.histogram.percentile(99.0) as f64 / 1e3,
                mean_us: stats.histogram.mean() / 1e3,
                max_us: stats.histogram.max() as f64 / 1e3,
            })
            .collect();
        ScenarioReport {
            name: name.to_string(),
            elapsed_secs: secs,
            requests: run.requests,
            errors: run.errors,
            busy: run.busy,
            throughput_rps: run.requests as f64 / secs,
            per_verb,
            stats_delta: stats_delta(before, after),
            server_latency: BTreeMap::new(),
        }
    }

    /// Attaches the server-side latency scraped around this scenario.
    #[must_use]
    pub fn with_server_latency(
        mut self,
        latency: &BTreeMap<String, crate::histogram::Histogram>,
    ) -> ScenarioReport {
        self.server_latency = latency
            .iter()
            .map(|(verb, histogram)| (verb.clone(), ServerLatency::from_histogram(histogram)))
            .collect();
        self
    }
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scenario RNG seed (rerun with the same seed for comparable runs).
    pub seed: u64,
    /// Concurrent clients per scenario.
    pub clients: usize,
    /// Configured duration per scenario, seconds.
    pub duration_secs: f64,
    /// `self-spawned` or the external server address.
    pub server: String,
    /// Shards of the self-spawned server (0 when external: unknown).
    pub shards: usize,
    /// Threads the container advertises (1 on the CI box — quote
    /// latency numbers with that in mind).
    pub available_parallelism: usize,
    /// One entry per scenario, in run order.
    pub scenarios: Vec<ScenarioReport>,
}

fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// `f64` with enough (but not absurd) precision for a bench artifact.
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_string()
    }
}

impl Report {
    /// Renders the document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"suite\": \"serve_load\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"duration_secs\": {},\n", num(self.duration_secs)));
        out.push_str(&format!("  \"server\": \"{}\",\n", escape(&self.server)));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"available_parallelism\": {},\n", self.available_parallelism));
        out.push_str("  \"scenarios\": [\n");
        for (i, scenario) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", escape(&scenario.name)));
            out.push_str(&format!("      \"elapsed_secs\": {},\n", num(scenario.elapsed_secs)));
            out.push_str(&format!("      \"requests\": {},\n", scenario.requests));
            out.push_str(&format!("      \"errors\": {},\n", scenario.errors));
            out.push_str(&format!("      \"busy\": {},\n", scenario.busy));
            out.push_str(&format!("      \"throughput_rps\": {},\n", num(scenario.throughput_rps)));
            out.push_str("      \"per_verb\": {\n");
            for (j, verb) in scenario.per_verb.iter().enumerate() {
                out.push_str(&format!(
                    "        \"{}\": {{\"count\": {}, \"errors\": {}, \"busy\": {}, \
                     \"throughput_rps\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                     \"p99_us\": {}, \"mean_us\": {}, \"max_us\": {}}}{}\n",
                    escape(&verb.verb),
                    verb.count,
                    verb.errors,
                    verb.busy,
                    num(verb.throughput_rps),
                    num(verb.p50_us),
                    num(verb.p95_us),
                    num(verb.p99_us),
                    num(verb.mean_us),
                    num(verb.max_us),
                    if j + 1 < scenario.per_verb.len() { "," } else { "" },
                ));
            }
            out.push_str("      },\n");
            out.push_str("      \"server_latency\": {\n");
            let server: Vec<_> = scenario.server_latency.iter().collect();
            for (j, (verb, latency)) in server.iter().enumerate() {
                out.push_str(&format!(
                    "        \"{}\": {{\"count\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                     \"p99_us\": {}}}{}\n",
                    escape(verb),
                    latency.count,
                    num(latency.p50_us),
                    num(latency.p95_us),
                    num(latency.p99_us),
                    if j + 1 < server.len() { "," } else { "" },
                ));
            }
            out.push_str("      },\n");
            out.push_str("      \"stats_delta\": {\n");
            let deltas: Vec<_> = scenario.stats_delta.iter().collect();
            for (j, (key, delta)) in deltas.iter().enumerate() {
                out.push_str(&format!(
                    "        \"{}\": {}{}\n",
                    escape(key),
                    delta,
                    if j + 1 < deltas.len() { "," } else { "" },
                ));
            }
            out.push_str("      }\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.scenarios.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::VerbStats;
    use crate::histogram::Histogram;
    use std::time::Duration;

    fn sample_report() -> Report {
        let mut histogram = Histogram::new();
        for v in 1..=100u64 {
            histogram.record(v * 10_000);
        }
        let mut per_verb = BTreeMap::new();
        per_verb.insert("QUERY", VerbStats { count: 100, errors: 2, busy: 1, histogram });
        let run = ScenarioRun {
            per_verb,
            elapsed: Duration::from_secs(2),
            requests: 100,
            errors: 2,
            busy: 1,
        };
        let before = crate::stats::parse_stats("STAT cache_hits 5\nEND\n").unwrap();
        let after = crate::stats::parse_stats("STAT cache_hits 25\nEND\n").unwrap();
        let mut server_hist = Histogram::new();
        server_hist.record_n(500_000, 50);
        let server_latency = BTreeMap::from([("query".to_string(), server_hist)]);
        Report {
            seed: 42,
            clients: 4,
            duration_secs: 2.0,
            server: "self-spawned".to_string(),
            shards: 4,
            available_parallelism: 1,
            scenarios: vec![ScenarioReport::new("read-heavy", &run, &before, &after)
                .with_server_latency(&server_latency)],
        }
    }

    #[test]
    fn json_contains_the_documented_fields() {
        let json = sample_report().to_json();
        for needle in [
            "\"suite\": \"serve_load\"",
            "\"seed\": 42",
            "\"name\": \"read-heavy\"",
            "\"requests\": 100",
            "\"QUERY\": {\"count\": 100, \"errors\": 2, \"busy\": 1",
            "\"busy\": 1,",
            "\"p50_us\":",
            "\"p95_us\":",
            "\"p99_us\":",
            "\"cache_hits\": 20",
            "\"server_latency\": {",
            "\"query\": {\"count\": 50,",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = sample_report().to_json();
        // A serde-less sanity check: every brace/bracket closes, and no
        // trailing comma precedes a closer (the classic hand-writer bug).
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in json.chars() {
            match c {
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
            assert!(braces >= 0 && brackets >= 0);
        }
        assert_eq!((braces, brackets), (0, 0));
        let squashed: String = json.split_whitespace().collect();
        assert!(!squashed.contains(",}"), "trailing comma before }}");
        assert!(!squashed.contains(",]"), "trailing comma before ]");
    }
}
