//! Property tests for the observability primitives: histogram merge is
//! associative/commutative (the contract that lets stripes, clients and
//! scrapes all fold into one histogram in any order) and the bucketed
//! quantiles stay within the documented relative error bound.

use kastio_obs::Histogram;
use proptest::prelude::*;

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix the tiny linear range, realistic latencies and huge outliers.
    proptest::collection::vec(
        prop_oneof![0u64..16, 16u64..100_000, 100_000u64..4_000_000_000, Just(u64::MAX)],
        0..=200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a ⊕ (b ⊕ c)
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);
        // c ⊕ b ⊕ a
        let mut reversed = build(&c);
        reversed.merge(&build(&b));
        reversed.merge(&build(&a));

        for h in [&right, &reversed] {
            prop_assert_eq!(left.count(), h.count());
            prop_assert_eq!(left.sum(), h.sum());
            prop_assert_eq!(left.min(), h.min());
            prop_assert_eq!(left.max(), h.max());
            prop_assert_eq!(left.nonzero_buckets(), h.nonzero_buckets());
        }
        for p in [1.0, 50.0, 95.0, 99.0, 100.0] {
            prop_assert_eq!(left.percentile(p), right.percentile(p));
            prop_assert_eq!(left.percentile(p), reversed.percentile(p));
        }
    }

    #[test]
    fn merge_equals_recording_the_concatenation(a in samples(), b in samples()) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let together = build(&both);
        prop_assert_eq!(merged.count(), together.count());
        prop_assert_eq!(merged.nonzero_buckets(), together.nonzero_buckets());
        for p in [10.0, 50.0, 90.0, 99.9] {
            prop_assert_eq!(merged.percentile(p), together.percentile(p));
        }
    }

    #[test]
    fn quantile_error_is_within_the_bucket_resolution(
        mut values in proptest::collection::vec(1u64..2_000_000_000, 1..=300),
        p in 1u32..=100,
    ) {
        let h = build(&values);
        values.sort_unstable();
        let p = f64::from(p);
        let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
        let exact = values[rank - 1];
        let got = h.percentile(p);
        // The bucketed answer is an upper bound on the exact quantile,
        // at most one sub-bucket (1/16 of an octave ⇒ < 6.25%) above —
        // and exact at the observed extremes thanks to min/max clamping.
        prop_assert!(got >= exact, "p{p}: got {got} < exact {exact}");
        let bound = exact as f64 * (1.0 + 1.0 / 16.0) + 1.0;
        prop_assert!(
            (got as f64) <= bound,
            "p{}: got {} exceeds {:.1} (exact {})", p, got, bound, exact
        );
    }

    #[test]
    fn record_n_matches_repeated_record(value in 0u64..=u64::MAX, n in 1u64..=64) {
        let mut bulk = Histogram::new();
        bulk.record_n(value, n);
        let mut single = Histogram::new();
        for _ in 0..n {
            single.record(value);
        }
        prop_assert_eq!(bulk.count(), single.count());
        prop_assert_eq!(bulk.sum(), single.sum());
        prop_assert_eq!(bulk.nonzero_buckets(), single.nonzero_buckets());
    }
}
