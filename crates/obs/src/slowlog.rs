//! A Redis-style slow-query log: a bounded in-memory ring buffer of the
//! requests whose total latency crossed a configured threshold, each
//! entry carrying the verb, a compact argument summary and a per-stage
//! timing breakdown. The server keeps one and exposes it through the
//! `SLOWLOG` verb.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One over-threshold request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Monotonic entry id, never reused — survives `RESET` so log
    /// readers can tell a truncated log from a quiet one.
    pub id: u64,
    /// Microseconds since the server started, at request completion.
    pub at_micros: u64,
    /// Wire verb (`QUERY`, `BATCH INGEST`, …).
    pub verb: &'static str,
    /// Compact, space-free argument summary (`k=3,trace_ops=420`).
    pub args: String,
    /// Full request latency in microseconds (read → reply flushed).
    pub total_micros: u64,
    /// Per-stage breakdown as `(stage, micros)` pairs, request order.
    pub stages: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct State {
    entries: VecDeque<SlowEntry>,
    next_id: u64,
}

/// Bounded ring buffer of slow requests.
///
/// A `SlowLog` is always constructed (the `SLOWLOG` verb answers even
/// when logging is off); recording only happens when a threshold is
/// configured and the request's total latency reaches it. Threshold 0
/// logs every request — the test hook, mirroring Redis's
/// `slowlog-log-slower-than 0`.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    threshold_micros: Option<u64>,
    state: Mutex<State>,
}

impl SlowLog {
    /// Ring capacity used by the server.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// A log that never records; `len` stays 0.
    pub fn disabled() -> SlowLog {
        SlowLog::new(SlowLog::DEFAULT_CAPACITY, None)
    }

    /// A log keeping the most recent `capacity` entries at or over
    /// `threshold_micros` (when `Some`).
    pub fn new(capacity: usize, threshold_micros: Option<u64>) -> SlowLog {
        assert!(capacity > 0, "slow log capacity must be positive");
        SlowLog { capacity, threshold_micros, state: Mutex::new(State::default()) }
    }

    /// The configured threshold, `None` when logging is off.
    pub fn threshold_micros(&self) -> Option<u64> {
        self.threshold_micros
    }

    /// Records the request if it crossed the threshold; returns whether
    /// it was kept. The oldest entry is evicted at capacity.
    pub fn record(
        &self,
        at_micros: u64,
        verb: &'static str,
        args: String,
        total_micros: u64,
        stages: Vec<(&'static str, u64)>,
    ) -> bool {
        let Some(threshold) = self.threshold_micros else {
            return false;
        };
        if total_micros < threshold {
            return false;
        }
        let mut state = self.state.lock().expect("slow log lock poisoned");
        let id = state.next_id;
        state.next_id += 1;
        if state.entries.len() == self.capacity {
            state.entries.pop_front();
        }
        state.entries.push_back(SlowEntry { id, at_micros, verb, args, total_micros, stages });
        true
    }

    /// Entries, newest first (the Redis `SLOWLOG GET` order).
    pub fn entries(&self) -> Vec<SlowEntry> {
        let state = self.state.lock().expect("slow log lock poisoned");
        state.entries.iter().rev().cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.state.lock().expect("slow log lock poisoned").entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the entries; ids keep counting from where they were.
    pub fn reset(&self) {
        self.state.lock().expect("slow log lock poisoned").entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(us: u64) -> Vec<(&'static str, u64)> {
        vec![("parse", 1), ("reply", us)]
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = SlowLog::disabled();
        assert!(!log.record(0, "QUERY", "k=1".into(), u64::MAX, stage(1)));
        assert!(log.is_empty());
        assert_eq!(log.threshold_micros(), None);
    }

    #[test]
    fn threshold_gates_recording() {
        let log = SlowLog::new(8, Some(100));
        assert!(!log.record(10, "QUERY", "k=1".into(), 99, stage(1)));
        assert!(log.record(20, "QUERY", "k=1".into(), 100, stage(2)));
        assert!(log.record(30, "STATS", String::new(), 2000, stage(3)));
        assert_eq!(log.len(), 2);
        let entries = log.entries();
        // Newest first, ids monotonic in record order.
        assert_eq!(entries[0].verb, "STATS");
        assert_eq!(entries[1].verb, "QUERY");
        assert!(entries[0].id > entries[1].id);
    }

    #[test]
    fn capacity_evicts_oldest_and_reset_keeps_ids() {
        let log = SlowLog::new(3, Some(0));
        for i in 0..5u64 {
            log.record(i, "QUERY", format!("n={i}"), i, vec![]);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries.iter().map(|e| e.id).collect::<Vec<_>>(), vec![4, 3, 2]);
        log.reset();
        assert!(log.is_empty());
        log.record(9, "SAVE", String::new(), 1, vec![]);
        assert_eq!(log.entries()[0].id, 5, "ids survive RESET");
    }
}
