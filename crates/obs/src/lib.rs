//! # kastio-obs
//!
//! Shared observability primitives for the kastio workspace — the
//! measurement vocabulary used on both sides of the wire:
//!
//! * [`Histogram`] — a constant-memory, mergeable, log-bucketed
//!   (HDR-style) latency histogram with ~3% bounded quantile error.
//!   The load harness records client-side round trips into it, and the
//!   serve daemon records per-verb and per-stage latencies into the
//!   same buckets, so the two sides are directly comparable.
//! * [`StripedHistogram`] — a concurrent recorder: per-thread stripes
//!   behind independent mutexes, merged on demand into a [`Histogram`]
//!   snapshot. The server's request hot path records through this.
//! * [`SlowLog`] — a Redis-style bounded ring buffer of over-threshold
//!   requests with per-stage breakdowns, behind the `SLOWLOG` verb.
//! * [`Exposition`] — a Prometheus-style text exposition builder
//!   (`# TYPE` lines, labelled samples, cumulative `_bucket`/`_sum`/
//!   `_count` series), behind the `METRICS` verb.
//!
//! This crate deliberately has no dependencies: it sits below
//! `kastio-index` (the server records into it) and `kastio-loadgen`
//! (the harness records into it and re-exports [`Histogram`]).

pub mod expose;
pub mod histogram;
pub mod slowlog;
pub mod striped;

pub use expose::Exposition;
pub use histogram::Histogram;
pub use slowlog::{SlowEntry, SlowLog};
pub use striped::StripedHistogram;
