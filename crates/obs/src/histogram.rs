//! A log-bucketed latency histogram (HDR-style, base-2 with 16 linear
//! sub-buckets per octave), so a load run records any number of samples
//! in constant memory with a bounded ~3% relative quantile error.

/// Exact buckets for values below 16; above that, 16 sub-buckets per
/// power of two up to `u64::MAX`.
const LINEAR_CUTOFF: u64 = 16;
const SUB_BUCKETS: usize = 16;
const N_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUB_BUCKETS;

fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        return value as usize;
    }
    let exponent = 63 - value.leading_zeros() as usize; // >= 4
    let sub = ((value >> (exponent - 4)) & 0xF) as usize;
    LINEAR_CUTOFF as usize + (exponent - 4) * SUB_BUCKETS + sub
}

/// The largest value mapping to bucket `index` — the conservative
/// (upper-bound) representative reported for quantiles.
fn bucket_upper(index: usize) -> u64 {
    if index < LINEAR_CUTOFF as usize {
        return index as u64;
    }
    let offset = index - LINEAR_CUTOFF as usize;
    let exponent = offset / SUB_BUCKETS + 4;
    let sub = (offset % SUB_BUCKETS) as u64;
    let width = 1u64 << (exponent - 4);
    let lower = (1u64 << exponent) + sub * width;
    lower + (width - 1)
}

/// Fixed-size latency histogram over `u64` nanosecond samples.
///
/// # Examples
///
/// ```
/// use kastio_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for ns in 1..=1000u64 {
///     h.record(ns * 1000);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((480_000..=530_000).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: vec![0; N_BUCKETS], count: 0, total: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in one step — the bulk path used
    /// when reconstructing a histogram from an exposition scrape, where
    /// each bucket's upper bound stands in for its samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)] += n;
        self.count += n;
        self.total += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, not bucketed).
    pub fn sum(&self) -> u128 {
        self.total
    }

    /// The occupied buckets as `(upper_bound, count)` pairs in
    /// increasing bucket order — the exposition format for this
    /// histogram. Re-recording each `upper_bound` with [`record_n`]
    /// reproduces the bucket occupancy exactly, because every bucket's
    /// upper bound maps back into that same bucket.
    ///
    /// [`record_n`]: Histogram::record_n
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (bucket_upper(index), n))
            .collect()
    }

    /// The value at or below which `p` percent of samples fall, within
    /// the bucket resolution (`p` in `[0, 100]`; exact `min`/`max` are
    /// used at the extremes). Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Clamp to observed bounds so p0/p100 are exact.
                return bucket_upper(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of all samples (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total as f64 / self.count as f64
    }

    /// Largest sample recorded (exact). 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample recorded (exact). 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_domain_in_order() {
        let mut last = 0;
        for value in [0u64, 1, 15, 16, 17, 100, 1_000, 65_536, 1 << 40, u64::MAX] {
            let index = bucket_index(value);
            assert!(index >= last, "indices are monotonic in the value");
            assert!(index < N_BUCKETS);
            assert!(bucket_upper(index) >= value, "upper bound holds for {value}");
            last = index;
        }
    }

    #[test]
    fn percentiles_track_exact_quantiles_within_resolution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 5_000u64), (95.0, 9_500), (99.0, 9_900)] {
            let got = h.percentile(p);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.04, "p{p}: got {got}, exact {exact}, err {err:.3}");
        }
        assert_eq!(h.percentile(100.0), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_once() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            a.record(v * 7);
            all.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 1000 + 3);
            all.record(v * 1000 + 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.nonzero_buckets().is_empty());
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn exposition_buckets_round_trip_through_record_n() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 17, 900, 65_000, 1 << 33] {
            h.record_n(v, 5);
        }
        let mut rebuilt = Histogram::new();
        for (upper, n) in h.nonzero_buckets() {
            rebuilt.record_n(upper, n);
        }
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.nonzero_buckets(), h.nonzero_buckets());
        for p in [50.0, 95.0, 99.0] {
            // Same occupancy ⇒ same bucketed quantiles, up to the exact
            // min/max clamping (rebuilt min/max sit on bucket uppers).
            assert!(rebuilt.percentile(p) >= h.percentile(p));
        }
    }
}
