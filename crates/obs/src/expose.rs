//! A Prometheus-style text exposition builder: `# TYPE` lines, counter
//! and gauge samples, and cumulative `_bucket`/`_sum`/`_count` series
//! rendered from a [`Histogram`]. The server's `METRICS` verb renders
//! its whole state through one [`Exposition`].

use crate::histogram::Histogram;

/// Accumulates exposition lines in emission order.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Emits `# TYPE <name> <kind>` — once per metric family, before
    /// its samples.
    pub fn type_line(&mut self, name: &str, kind: &str) {
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits one sample line; `labels` is either empty or the inner
    /// label list (`verb="QUERY"`), braces added here.
    pub fn sample(&mut self, name: &str, labels: &str, value: impl std::fmt::Display) {
        if labels.is_empty() {
            self.out.push_str(&format!("{name} {value}\n"));
        } else {
            self.out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    }

    /// Emits the cumulative `_bucket{le=…}` series (occupied buckets
    /// plus `+Inf`), `_sum` and `_count` for one histogram. Bucket
    /// bounds are the histogram's native unit (nanoseconds in this
    /// workspace), exposed as exact integers so a scraper can rebuild
    /// the occupancy loss-free.
    pub fn histogram(&mut self, name: &str, labels: &str, histogram: &Histogram) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (upper, count) in histogram.nonzero_buckets() {
            cumulative += count;
            self.sample(
                &format!("{name}_bucket"),
                &format!("{labels}{sep}le=\"{upper}\""),
                cumulative,
            );
        }
        self.sample(
            &format!("{name}_bucket"),
            &format!("{labels}{sep}le=\"+Inf\""),
            histogram.count(),
        );
        self.sample(&format!("{name}_sum"), labels, histogram.sum());
        self.sample(&format!("{name}_count"), labels, histogram.count());
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_render_with_and_without_labels() {
        let mut exp = Exposition::new();
        exp.type_line("kastio_requests_total", "counter");
        exp.sample("kastio_requests_total", "", 42u64);
        exp.sample("kastio_verb_requests_total", "verb=\"QUERY\"", 7u64);
        let text = exp.finish();
        assert_eq!(
            text,
            "# TYPE kastio_requests_total counter\n\
             kastio_requests_total 42\n\
             kastio_verb_requests_total{verb=\"QUERY\"} 7\n"
        );
    }

    #[test]
    fn histogram_series_are_cumulative_and_capped_by_inf() {
        let mut h = Histogram::new();
        h.record_n(10, 3);
        h.record_n(1_000, 2);
        let mut exp = Exposition::new();
        exp.histogram("kastio_latency_ns", "verb=\"QUERY\"", &h);
        let text = exp.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "kastio_latency_ns_bucket{verb=\"QUERY\",le=\"10\"} 3");
        assert!(lines[1].starts_with("kastio_latency_ns_bucket{verb=\"QUERY\",le=\"1"), "{text}");
        assert!(lines[1].ends_with("} 5"), "cumulative count: {text}");
        assert_eq!(lines[2], "kastio_latency_ns_bucket{verb=\"QUERY\",le=\"+Inf\"} 5");
        assert_eq!(lines[3], "kastio_latency_ns_sum{verb=\"QUERY\"} 2030");
        assert_eq!(lines[4], "kastio_latency_ns_count{verb=\"QUERY\"} 5");
    }

    #[test]
    fn unlabelled_histogram_needs_no_leading_comma() {
        let mut h = Histogram::new();
        h.record(5);
        let mut exp = Exposition::new();
        exp.histogram("kastio_snapshot_us", "", &h);
        let text = exp.finish();
        assert!(text.starts_with("kastio_snapshot_us_bucket{le=\"5\"} 1\n"), "{text}");
    }
}
