//! A striped concurrent histogram recorder: N mutex-guarded
//! [`Histogram`] stripes, each thread pinned to one stripe, so the
//! server's hot path records a latency sample with an uncontended lock
//! in the common case and never serialises unrelated connections behind
//! a single histogram mutex.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::histogram::Histogram;

/// Stripes per recorder. Eight is comfortably above the container's
/// advertised parallelism while keeping a snapshot merge trivial.
const N_STRIPES: usize = 8;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each recording thread is assigned a home stripe round-robin on
    /// first use; with `N_STRIPES` ≥ concurrent recorders the home
    /// stripe lock is effectively always free.
    static HOME_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % N_STRIPES;
}

/// A thread-safe histogram: concurrent `record` calls land on
/// per-thread stripes, [`snapshot`](StripedHistogram::snapshot) merges
/// them into one mergeable [`Histogram`].
///
/// # Examples
///
/// ```
/// use kastio_obs::StripedHistogram;
///
/// let latency = StripedHistogram::new();
/// std::thread::scope(|scope| {
///     for t in 0..4u64 {
///         let latency = &latency;
///         scope.spawn(move || {
///             for v in 0..100u64 {
///                 latency.record(t * 1000 + v);
///             }
///         });
///     }
/// });
/// assert_eq!(latency.snapshot().count(), 400);
/// ```
#[derive(Debug, Default)]
pub struct StripedHistogram {
    stripes: [Mutex<Histogram>; N_STRIPES],
}

impl StripedHistogram {
    /// An empty recorder.
    pub fn new() -> StripedHistogram {
        StripedHistogram::default()
    }

    /// Records one sample on the calling thread's home stripe; falls
    /// through to the first free stripe if the home stripe is busy, and
    /// only blocks when every stripe is contended at once.
    pub fn record(&self, value: u64) {
        let home = HOME_STRIPE.with(|stripe| *stripe);
        for offset in 0..N_STRIPES {
            let index = (home + offset) % N_STRIPES;
            if let Ok(mut stripe) = self.stripes[index].try_lock() {
                stripe.record(value);
                return;
            }
        }
        self.stripes[home].lock().expect("stripe lock poisoned").record(value);
    }

    /// Total samples across all stripes.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().expect("stripe lock poisoned").count()).sum()
    }

    /// Merges all stripes into one point-in-time [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut merged = Histogram::new();
        for stripe in &self.stripes {
            merged.merge(&stripe.lock().expect("stripe lock poisoned"));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merges_all_stripes() {
        let striped = StripedHistogram::new();
        for v in 1..=1000u64 {
            striped.record(v);
        }
        let snap = striped.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(striped.count(), 1000);
        assert_eq!(snap.min(), 1);
        assert_eq!(snap.max(), 1000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let striped = StripedHistogram::new();
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let striped = &striped;
                scope.spawn(move || {
                    for v in 0..per_thread {
                        striped.record(t * per_thread + v + 1);
                    }
                });
            }
        });
        let snap = striped.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
        assert_eq!(snap.min(), 1);
        assert_eq!(snap.max(), threads * per_thread);
    }
}
