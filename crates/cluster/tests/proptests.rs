//! Property tests for clustering: dendrogram structure, metric axioms
//! and label-quality measures on random distance matrices.

use proptest::prelude::*;

use kastio_cluster::{
    adjusted_rand_index, cophenetic_correlation, cophenetic_distances, hierarchical,
    hierarchical_nn_chain, k_medoids, normalized_mutual_information, purity, silhouette,
    DistanceMatrix, Linkage,
};

fn arb_distance(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0.01f64..100.0, n * (n.saturating_sub(1)) / 2).prop_map(
            move |vals| {
                let mut it = vals.into_iter();
                DistanceMatrix::from_fn(n, |_, _| it.next().expect("enough values"))
            },
        )
    })
}

fn arb_labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n)
}

fn arb_linkage() -> impl Strategy<Value = Linkage> {
    prop_oneof![Just(Linkage::Single), Just(Linkage::Complete), Just(Linkage::Average)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dendrogram_has_full_merge_list(d in arb_distance(12), linkage in arb_linkage()) {
        let dendro = hierarchical(&d, linkage);
        prop_assert_eq!(dendro.merges().len(), d.len() - 1);
        // Sizes grow to n at the last merge.
        if let Some(last) = dendro.merges().last() {
            prop_assert_eq!(last.size, d.len());
        }
    }

    #[test]
    fn single_linkage_merge_heights_are_monotone(d in arb_distance(12)) {
        // Single linkage is provably monotone (no inversions).
        let dendro = hierarchical(&d, Linkage::Single);
        for w in dendro.merges().windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-12);
        }
    }

    #[test]
    fn cut_produces_exactly_k_dense_labels(d in arb_distance(12), k in 1usize..12) {
        let k = k.min(d.len());
        let labels = hierarchical(&d, Linkage::Average).cut(k);
        prop_assert_eq!(labels.len(), d.len());
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), k);
        prop_assert!(labels.iter().all(|&l| l < k), "labels are dense in 0..k");
    }

    #[test]
    fn cophenetic_is_an_ultrametric_for_single_linkage(d in arb_distance(10)) {
        let dendro = hierarchical(&d, Linkage::Single);
        let coph = cophenetic_distances(&dendro);
        let n = d.len();
        for i in 0..n {
            prop_assert_eq!(coph.get(i, i), 0.0);
            for j in 0..n {
                for l in 0..n {
                    // Ultrametric inequality.
                    let lhs = coph.get(i, j);
                    let rhs = coph.get(i, l).max(coph.get(l, j));
                    prop_assert!(lhs <= rhs + 1e-9);
                }
            }
        }
        // Single-linkage cophenetic distances never exceed the original.
        for i in 0..n {
            for j in 0..n {
                prop_assert!(coph.get(i, j) <= d.get(i, j) + 1e-9);
            }
        }
    }

    #[test]
    fn cophenetic_correlation_is_bounded(d in arb_distance(10), linkage in arb_linkage()) {
        let dendro = hierarchical(&d, linkage);
        let r = cophenetic_correlation(&d, &dendro);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn ari_axioms(labels in arb_labels(12, 4), perm in proptest::sample::select(vec![[1usize,2,3,0],[3,0,1,2],[2,3,0,1]])) {
        // Self-agreement.
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        // Permutation invariance.
        let renamed: Vec<usize> = labels.iter().map(|&l| perm[l]).collect();
        let ari = adjusted_rand_index(&labels, &renamed);
        prop_assert!((ari - 1.0).abs() < 1e-12);
        // Symmetry.
        let other: Vec<usize> = labels.iter().rev().cloned().collect();
        prop_assert!((adjusted_rand_index(&labels, &other)
            - adjusted_rand_index(&other, &labels)).abs() < 1e-12);
    }

    #[test]
    fn purity_and_nmi_bounds(pred in arb_labels(14, 4), truth in arb_labels(14, 4)) {
        let p = purity(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((purity(&truth, &truth) - 1.0).abs() < 1e-12);
        let nmi = normalized_mutual_information(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&nmi));
        prop_assert!((normalized_mutual_information(&truth, &truth) - 1.0).abs() < 1e-12);
        // All-singletons prediction has purity 1 by definition.
        let singletons: Vec<usize> = (0..14).collect();
        prop_assert_eq!(purity(&singletons, &truth), 1.0);
    }

    #[test]
    fn silhouette_is_bounded(d in arb_distance(10), k in 2usize..4) {
        let k = k.min(d.len());
        let labels = hierarchical(&d, Linkage::Average).cut(k);
        let s = silhouette(&d, &labels);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn nn_chain_agrees_with_naive_hac(d in arb_distance(11), linkage in arb_linkage()) {
        // Same merge-height multiset and identical cophenetic structure
        // (random continuous distances make ties measure-zero, but the
        // comparison tolerates them anyway by comparing structure, not
        // merge order).
        let naive = hierarchical(&d, linkage);
        let chain = hierarchical_nn_chain(&d, linkage);
        let mut h1: Vec<f64> = naive.merges().iter().map(|m| m.distance).collect();
        let mut h2: Vec<f64> = chain.merges().iter().map(|m| m.distance).collect();
        h1.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        h2.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for (a, b) in h1.iter().zip(&h2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let (c1, c2) = (cophenetic_distances(&naive), cophenetic_distances(&chain));
        for i in 0..d.len() {
            for j in 0..d.len() {
                prop_assert!((c1.get(i, j) - c2.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kmedoids_structure(d in arb_distance(10), k in 1usize..5) {
        let k = k.min(d.len());
        let result = k_medoids(&d, k);
        prop_assert_eq!(result.medoids.len(), k);
        prop_assert_eq!(result.labels.len(), d.len());
        // Medoids are distinct and label themselves.
        let mut ms = result.medoids.clone();
        ms.sort_unstable();
        ms.dedup();
        prop_assert_eq!(ms.len(), k);
        for (slot, &m) in result.medoids.iter().enumerate() {
            prop_assert_eq!(result.labels[m], slot);
        }
        // Every point is assigned to its nearest medoid.
        for i in 0..d.len() {
            let assigned = d.get(i, result.medoids[result.labels[i]]);
            for &m in &result.medoids {
                prop_assert!(assigned <= d.get(i, m) + 1e-9);
            }
        }
        // Cost equals the sum of assigned distances.
        let cost: f64 = (0..d.len()).map(|i| d.get(i, result.medoids[result.labels[i]])).sum();
        prop_assert!((cost - result.cost).abs() < 1e-9);
    }
}
