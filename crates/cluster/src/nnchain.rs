//! Nearest-neighbour-chain agglomerative clustering.
//!
//! The naive Lance–Williams loop in [`crate::hac`] scans all active pairs
//! per merge — O(n³) total. For *reducible* linkages (single, complete
//! and average all are) the nearest-neighbour-chain algorithm performs
//! the same agglomeration in O(n²) time: follow nearest-neighbour links
//! until two clusters are mutual nearest neighbours, merge them, and
//! continue from the remaining chain. Reducibility guarantees the chain
//! never has to be rebuilt after a merge, and that the resulting
//! *dendrogram heights* equal the naive algorithm's (the merge order may
//! differ under ties, but the induced cophenetic structure is identical —
//! the property tests pin exactly that down).

use crate::dendrogram::{Dendrogram, Merge};
use crate::distance::DistanceMatrix;
use crate::hac::Linkage;

/// Runs NN-chain agglomerative clustering; equivalent in O(n²) to
/// [`crate::hac::hierarchical`] for the (reducible) supported linkages.
///
/// Merges are re-sorted by height afterwards, so `cut` and friends behave
/// like the textbook algorithm's output.
///
/// # Examples
///
/// ```
/// use kastio_cluster::{hierarchical_nn_chain, DistanceMatrix, Linkage};
///
/// let d = DistanceMatrix::from_fn(4, |i, j| {
///     if (i < 2) == (j < 2) { 1.0 } else { 10.0 }
/// });
/// let dendro = hierarchical_nn_chain(&d, Linkage::Single);
/// let labels = dendro.cut(2);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn hierarchical_nn_chain(dist: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = dist.len();
    if n == 0 {
        return Dendrogram::new(0, Vec::new());
    }

    // Working distance matrix between cluster *slots*; slot i initially
    // holds leaf i. Dead slots are skipped via `alive`.
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = dist.get(i, j);
        }
    }
    let mut alive = vec![true; n];
    let mut sizes = vec![1usize; n];
    let mut ids: Vec<usize> = (0..n).collect();
    let mut next_id = n;

    let mut raw_merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            let start = alive.iter().position(|&a| a).expect("clusters remain");
            chain.push(start);
        }
        loop {
            let tip = *chain.last().expect("chain is non-empty");
            // Nearest alive neighbour of `tip` (deterministic tie-break on
            // index; prefer the chain predecessor on ties so mutual pairs
            // terminate).
            let prev = if chain.len() >= 2 { Some(chain[chain.len() - 2]) } else { None };
            let mut best = (f64::INFINITY, usize::MAX);
            for c in 0..n {
                if c == tip || !alive[c] {
                    continue;
                }
                let dd = d[tip * n + c];
                if dd < best.0 || (dd == best.0 && Some(c) == prev) {
                    best = (dd, c);
                }
            }
            let (dist_tc, nearest) = best;
            if Some(nearest) == prev {
                // Mutual nearest neighbours: merge tip and prev.
                chain.pop();
                chain.pop();
                let (a, b) = (nearest, tip);
                for c in 0..n {
                    if alive[c] && c != a && c != b {
                        let updated = match linkage {
                            Linkage::Single => d[a * n + c].min(d[b * n + c]),
                            Linkage::Complete => d[a * n + c].max(d[b * n + c]),
                            Linkage::Average => {
                                let (na, nb) = (sizes[a] as f64, sizes[b] as f64);
                                (na * d[a * n + c] + nb * d[b * n + c]) / (na + nb)
                            }
                        };
                        d[a * n + c] = updated;
                        d[c * n + a] = updated;
                    }
                }
                raw_merges.push(Merge {
                    left: ids[a],
                    right: ids[b],
                    distance: dist_tc,
                    size: sizes[a] + sizes[b],
                });
                sizes[a] += sizes[b];
                ids[a] = next_id;
                next_id += 1;
                alive[b] = false;
                remaining -= 1;
                break;
            }
            chain.push(nearest);
        }
    }

    // NN-chain discovers merges out of height order; restore the
    // monotone order the naive algorithm produces. Node ids must be
    // remapped to match the new positions.
    sort_merges(n, raw_merges)
}

/// Stably sorts merges by height and renumbers internal node ids.
fn sort_merges(n: usize, raw: Vec<Merge>) -> Dendrogram {
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&x, &y| {
        raw[x].distance.partial_cmp(&raw[y].distance).expect("distances are finite").then(x.cmp(&y))
    });
    // old internal id (n + old_index) → new internal id (n + new_index)
    let mut remap = vec![usize::MAX; raw.len()];
    for (new_index, &old_index) in order.iter().enumerate() {
        remap[old_index] = n + new_index;
    }
    let translate = |id: usize| -> usize {
        if id < n {
            id
        } else {
            remap[id - n]
        }
    };
    let merges = order
        .iter()
        .map(|&old_index| {
            let m = &raw[old_index];
            Merge {
                left: translate(m.left),
                right: translate(m.right),
                distance: m.distance,
                size: m.size,
            }
        })
        .collect();
    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cophenetic::cophenetic_distances;
    use crate::hac::hierarchical;

    fn agree(d: &DistanceMatrix, linkage: Linkage) {
        let naive = hierarchical(d, linkage);
        let chain = hierarchical_nn_chain(d, linkage);
        // Same heights multiset.
        let mut h1: Vec<f64> = naive.merges().iter().map(|m| m.distance).collect();
        let mut h2: Vec<f64> = chain.merges().iter().map(|m| m.distance).collect();
        h1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        h2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in h1.iter().zip(&h2) {
            assert!((a - b).abs() < 1e-9, "heights differ: {a} vs {b}");
        }
        // Identical cophenetic structure.
        let c1 = cophenetic_distances(&naive);
        let c2 = cophenetic_distances(&chain);
        for i in 0..d.len() {
            for j in 0..d.len() {
                assert!(
                    (c1.get(i, j) - c2.get(i, j)).abs() < 1e-9,
                    "cophenetic mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_distinct_distances() {
        // All pairwise distances distinct → unique dendrogram.
        let d = DistanceMatrix::from_fn(7, |i, j| (i * 13 + j * 7 + (i * j) % 5) as f64 + 1.0);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            agree(&d, linkage);
        }
    }

    #[test]
    fn agrees_on_clustered_data() {
        let d = DistanceMatrix::from_fn(9, |i, j| {
            if i / 3 == j / 3 {
                1.0 + (i + j) as f64 * 0.01
            } else {
                10.0 + (i * j) as f64 * 0.01
            }
        });
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            agree(&d, linkage);
        }
    }

    #[test]
    fn merge_heights_are_sorted() {
        let d = DistanceMatrix::from_fn(8, |i, j| ((i * 31 + j * 17) % 23) as f64 + 1.0);
        let dendro = hierarchical_nn_chain(&d, Linkage::Average);
        for w in dendro.merges().windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn node_ids_are_consistent_after_remap() {
        let d = DistanceMatrix::from_fn(6, |i, j| ((i + 2 * j) % 7) as f64 + 0.5);
        let dendro = hierarchical_nn_chain(&d, Linkage::Complete);
        // Every internal id referenced must have been produced earlier.
        for (step, m) in dendro.merges().iter().enumerate() {
            let node = 6 + step;
            assert!(m.left < node && m.right < node, "merge {step} references the future");
        }
        // The cut still yields valid dense labels.
        let labels = dendro.cut(3);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn trivial_sizes() {
        let empty = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert!(hierarchical_nn_chain(&empty, Linkage::Single).merges().is_empty());
        let one = DistanceMatrix::from_fn(1, |_, _| 0.0);
        assert_eq!(hierarchical_nn_chain(&one, Linkage::Single).cut(1), vec![0]);
        let two = DistanceMatrix::from_fn(2, |_, _| 3.0);
        let dendro = hierarchical_nn_chain(&two, Linkage::Average);
        assert_eq!(dendro.merges().len(), 1);
        assert_eq!(dendro.merges()[0].distance, 3.0);
    }
}
