//! Hierarchical clustering and cluster-quality metrics for kastio.
//!
//! §4.1 of the paper analyses every similarity matrix with hierarchical
//! clustering using "the simple linkage method". This crate provides:
//!
//! * [`DistanceMatrix`] — pairwise distances, including the
//!   kernel-induced metric `d² = k_ii + k_jj − 2k_ij`.
//! * [`hierarchical`] — agglomerative clustering with single (the paper's
//!   choice), complete and average linkage.
//! * [`Dendrogram`] — merge trees, flat cuts ([`Dendrogram::cut`]) and
//!   ASCII rendering (the textual stand-in for Figures 7/9).
//! * Metrics ([`purity`], [`adjusted_rand_index`],
//!   [`normalized_mutual_information`], [`silhouette`]) that turn the
//!   paper's visual claims ("no misplaced examples") into assertions.
//! * [`cophenetic_correlation`] — how faithfully a dendrogram preserves
//!   the metric — and [`k_medoids`] (PAM) as an independent flat
//!   clustering over the same kernel distances.
//!
//! # Examples
//!
//! ```
//! use kastio_cluster::{hierarchical, purity, DistanceMatrix, Linkage};
//!
//! let d = DistanceMatrix::from_fn(4, |i, j| {
//!     if (i < 2) == (j < 2) { 0.5 } else { 8.0 }
//! });
//! let dendro = hierarchical(&d, Linkage::Single);
//! let labels = dendro.cut(2);
//! assert_eq!(purity(&labels, &[0, 0, 1, 1]), 1.0);
//! ```

pub mod cophenetic;
pub mod dendrogram;
pub mod distance;
pub mod hac;
pub mod kmedoids;
pub mod metrics;
pub mod nnchain;

pub use cophenetic::{cophenetic_correlation, cophenetic_distances};
pub use dendrogram::{Dendrogram, Merge};
pub use distance::DistanceMatrix;
pub use hac::{hierarchical, Linkage};
pub use kmedoids::{k_medoids, KMedoids};
pub use metrics::{adjusted_rand_index, normalized_mutual_information, purity, silhouette};
pub use nnchain::hierarchical_nn_chain;
