//! Dendrograms: merge trees, flat cuts and ASCII rendering.

use std::fmt;

/// One agglomeration step.
///
/// Node ids follow the scipy convention: leaves are `0..n`, the cluster
/// created by merge `i` gets id `n + i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Id of the first merged cluster.
    pub left: usize,
    /// Id of the second merged cluster.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// The full merge tree produced by
/// [`hierarchical`](crate::hac::hierarchical).
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds a dendrogram over `n` leaves from its merge list.
    ///
    /// # Panics
    ///
    /// Panics if more than `n − 1` merges are supplied.
    pub fn new(n: usize, merges: Vec<Merge>) -> Self {
        assert!(n == 0 || merges.len() < n, "a dendrogram over n leaves has at most n-1 merges");
        Dendrogram { n, merges }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dendrogram has no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, in order of agglomeration.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into exactly `k` flat clusters (undoing the last
    /// `k − 1` merges) and returns a label per leaf, with labels numbered
    /// `0..k` in order of first appearance.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or larger than the number of leaves.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n.max(1), "k must be in 1..=n");
        let kept = self.merges.len().saturating_sub(k - 1);
        self.labels_after(kept)
    }

    /// Cuts the tree at a linkage `height`: all merges with distance ≤
    /// `height` are applied.
    pub fn cut_at_height(&self, height: f64) -> Vec<usize> {
        let kept = self.merges.iter().take_while(|m| m.distance <= height).count();
        self.labels_after(kept)
    }

    /// Labels after applying only the first `kept` merges.
    fn labels_after(&self, kept: usize) -> Vec<usize> {
        // Union-find over leaves + internal nodes.
        let total = self.n + kept;
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(kept).enumerate() {
            let node = self.n + i;
            let l = find(&mut parent, m.left);
            let r = find(&mut parent, m.right);
            parent[l] = node;
            parent[r] = node;
        }
        let mut labels = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut canonical: Vec<(usize, usize)> = Vec::new(); // (root, label)
        for (leaf, slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, leaf);
            let label = match canonical.iter().find(|&&(r, _)| r == root) {
                Some(&(_, l)) => l,
                None => {
                    canonical.push((root, next));
                    next += 1;
                    next - 1
                }
            };
            *slot = label;
        }
        labels
    }

    /// Renders an ASCII dendrogram, one merge per line, indented by merge
    /// height — enough to eyeball the cluster structure in a terminal,
    /// mirroring Figures 7 and 9.
    ///
    /// `names` supplies a label per leaf; pass `None` to use indices.
    pub fn render_ascii(&self, names: Option<&[String]>) -> String {
        let mut out = String::new();
        let max_d = self.merges.iter().map(|m| m.distance).fold(0.0f64, f64::max).max(1e-12);
        let describe = |id: usize| -> String {
            if id < self.n {
                match names {
                    Some(ns) => ns.get(id).cloned().unwrap_or_else(|| format!("leaf{id}")),
                    None => format!("leaf{id}"),
                }
            } else {
                format!("cluster{}", id - self.n)
            }
        };
        for (i, m) in self.merges.iter().enumerate() {
            let bar = ((m.distance / max_d) * 40.0).round() as usize;
            out.push_str(&format!(
                "{:>4} |{}{} d={:.4} size={} : {} + {}\n",
                i,
                "=".repeat(bar),
                " ".repeat(40 - bar.min(40)),
                m.distance,
                m.size,
                describe(m.left),
                describe(m.right),
            ));
        }
        out
    }
}

impl fmt::Display for Dendrogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;
    use crate::hac::{hierarchical, Linkage};

    fn two_group_dendro() -> Dendrogram {
        let d = DistanceMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 1.0 } else { 9.0 });
        hierarchical(&d, Linkage::Single)
    }

    #[test]
    fn cut_into_all_singletons() {
        let dendro = two_group_dendro();
        let labels = dendro.cut(4);
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "every leaf its own cluster");
    }

    #[test]
    fn cut_into_one_cluster() {
        let dendro = two_group_dendro();
        assert_eq!(dendro.cut(1), vec![0, 0, 0, 0]);
    }

    #[test]
    fn cut_into_two_recovers_groups() {
        let labels = two_group_dendro().cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cut_at_height() {
        let dendro = two_group_dendro();
        let low = dendro.cut_at_height(1.5);
        assert_eq!(low, dendro.cut(2));
        let high = dendro.cut_at_height(100.0);
        assert_eq!(high, vec![0, 0, 0, 0]);
        let zero = dendro.cut_at_height(0.0);
        assert_eq!(zero, dendro.cut(4));
    }

    #[test]
    fn labels_are_dense_and_first_appearance_ordered() {
        let labels = two_group_dendro().cut(2);
        assert_eq!(labels[0], 0, "first leaf gets label 0");
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    #[should_panic(expected = "1..=n")]
    fn zero_k_panics() {
        two_group_dendro().cut(0);
    }

    #[test]
    fn ascii_rendering_mentions_leaves() {
        let names: Vec<String> = (0..4).map(|i| format!("s{i}")).collect();
        let text = two_group_dendro().render_ascii(Some(&names));
        assert!(text.contains("s0") || text.contains("s2"));
        assert!(text.contains("d="));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at most n-1")]
    fn too_many_merges_panic() {
        let m = Merge { left: 0, right: 1, distance: 1.0, size: 2 };
        let _ = Dendrogram::new(1, vec![m]);
    }
}
