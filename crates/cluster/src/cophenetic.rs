//! Cophenetic distances and the cophenetic correlation coefficient.
//!
//! The cophenetic distance of two leaves is the linkage height at which
//! they first share a cluster; its Pearson correlation with the original
//! distances measures how faithfully a dendrogram represents the metric —
//! the standard quantitative companion to eyeballing figures like the
//! paper's Fig. 7/9.

use crate::dendrogram::Dendrogram;
use crate::distance::DistanceMatrix;

/// Computes the matrix of cophenetic distances of a dendrogram.
///
/// # Panics
///
/// Panics if the dendrogram is not a complete merge tree over its leaves
/// (fewer than `n − 1` merges).
///
/// # Examples
///
/// ```
/// use kastio_cluster::{cophenetic_distances, hierarchical, DistanceMatrix, Linkage};
///
/// let d = DistanceMatrix::from_fn(3, |i, j| ((i + j) * 2) as f64);
/// let dendro = hierarchical(&d, Linkage::Single);
/// let coph = cophenetic_distances(&dendro);
/// // Leaves merged first sit at the lowest height.
/// assert!(coph.get(0, 1) <= coph.get(0, 2));
/// ```
pub fn cophenetic_distances(dendro: &Dendrogram) -> DistanceMatrix {
    let n = dendro.len();
    if n == 0 {
        return DistanceMatrix::from_fn(0, |_, _| 0.0);
    }
    assert_eq!(dendro.merges().len(), n - 1, "cophenetic distances need a complete dendrogram");
    // members[node] = leaves under that node id (leaves 0..n, internal
    // n..2n−1).
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut heights = vec![vec![0.0f64; n]; n];
    for (step, merge) in dendro.merges().iter().enumerate() {
        let left = std::mem::take(&mut members[merge.left]);
        let right = std::mem::take(&mut members[merge.right]);
        for &a in &left {
            for &b in &right {
                heights[a][b] = merge.distance;
                heights[b][a] = merge.distance;
            }
        }
        let mut merged = left;
        merged.extend(right);
        debug_assert_eq!(members.len(), n + step);
        members.push(merged);
    }
    DistanceMatrix::from_fn(n, |i, j| heights[i][j])
}

/// The cophenetic correlation coefficient: Pearson correlation between
/// the original pairwise distances and the cophenetic distances, in
/// `[-1, 1]` (≈1 for a dendrogram that preserves the metric well).
///
/// Returns 0 when there are fewer than 2 leaves or either side has zero
/// variance.
///
/// # Panics
///
/// Panics if the two matrices disagree on the number of points.
pub fn cophenetic_correlation(dist: &DistanceMatrix, dendro: &Dendrogram) -> f64 {
    assert_eq!(dist.len(), dendro.len(), "matrix and dendrogram must align");
    let n = dist.len();
    if n < 2 {
        return 0.0;
    }
    let coph = cophenetic_distances(dendro);
    let mut xs = Vec::with_capacity(n * (n - 1) / 2);
    let mut ys = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            xs.push(dist.get(i, j));
            ys.push(coph.get(i, j));
        }
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hac::{hierarchical, Linkage};

    fn two_groups() -> DistanceMatrix {
        DistanceMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 1.0 } else { 8.0 })
    }

    #[test]
    fn cophenetic_heights_follow_merges() {
        let d = two_groups();
        let dendro = hierarchical(&d, Linkage::Single);
        let coph = cophenetic_distances(&dendro);
        assert_eq!(coph.get(0, 1), 1.0);
        assert_eq!(coph.get(2, 3), 1.0);
        assert_eq!(coph.get(0, 2), 8.0);
        assert_eq!(coph.get(1, 3), 8.0);
        assert_eq!(coph.get(0, 0), 0.0);
    }

    #[test]
    fn ultrametric_input_gives_perfect_correlation() {
        let d = two_groups();
        let dendro = hierarchical(&d, Linkage::Single);
        let r = cophenetic_correlation(&d, &dendro);
        assert!((r - 1.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn chained_metric_scores_below_one_under_single_linkage() {
        // A chain 0-1-2-3 (d(i,j)=|i-j|): single linkage flattens all
        // cophenetic heights to 1, so the correlation must drop.
        let d = DistanceMatrix::from_fn(4, |i, j| (j - i) as f64);
        let dendro = hierarchical(&d, Linkage::Single);
        let r = cophenetic_correlation(&d, &dendro);
        assert!(r < 1.0 - 1e-9);
        // Complete linkage preserves more of the chain's spread.
        let complete = hierarchical(&d, Linkage::Complete);
        assert!(cophenetic_correlation(&d, &complete) > r);
    }

    #[test]
    fn degenerate_cases() {
        let one = DistanceMatrix::from_fn(1, |_, _| 0.0);
        let dendro = hierarchical(&one, Linkage::Single);
        assert_eq!(cophenetic_correlation(&one, &dendro), 0.0);
        // All-equal distances: zero variance → correlation 0 by convention.
        let flat = DistanceMatrix::from_fn(3, |_, _| 2.0);
        let dendro = hierarchical(&flat, Linkage::Single);
        assert_eq!(cophenetic_correlation(&flat, &dendro), 0.0);
    }

    #[test]
    #[should_panic(expected = "complete dendrogram")]
    fn incomplete_dendrogram_panics() {
        let dendro = crate::dendrogram::Dendrogram::new(3, vec![]);
        let _ = cophenetic_distances(&dendro);
    }
}
