//! Distance matrices, including the kernel-induced metric.
//!
//! A (normalised) kernel induces the feature-space distance
//! `d²(a,b) = k(a,a) + k(b,b) − 2·k(a,b)`; hierarchical clustering runs on
//! that. Stored condensed (upper triangle only).

use std::fmt;

/// A symmetric pairwise distance matrix with zero diagonal, stored
/// condensed.
///
/// # Examples
///
/// ```
/// use kastio_cluster::DistanceMatrix;
///
/// let d = DistanceMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(d.get(0, 2), 2.0);
/// assert_eq!(d.get(2, 0), 2.0);
/// assert_eq!(d.get(1, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    // condensed[i][j] for i<j at index i*n - i*(i+1)/2 + (j - i - 1)
    condensed: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a distance matrix by evaluating `f(i, j)` for all `i < j`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut condensed = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                condensed.push(f(i, j));
            }
        }
        DistanceMatrix { n, condensed }
    }

    /// Derives the kernel-induced distance matrix from a row-major Gram
    /// matrix: `d(i,j) = √max(0, k_ii + k_jj − 2·k_ij)`.
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != n * n`.
    pub fn from_gram(n: usize, gram: &[f64]) -> Self {
        assert_eq!(gram.len(), n * n, "gram must be n×n row-major");
        DistanceMatrix::from_fn(n, |i, j| {
            let d2 = gram[i * n + i] + gram[j * n + j] - 2.0 * gram[i * n + j];
            d2.max(0.0).sqrt()
        })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between points `i` and `j` (0 when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.condensed[a * self.n - a * (a + 1) / 2 + (b - a - 1)]
    }

    /// The largest pairwise distance (`None` for fewer than 2 points).
    pub fn max(&self) -> Option<f64> {
        self.condensed.iter().copied().reduce(f64::max)
    }
}

impl fmt::Display for DistanceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{:8.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_gram_matches_hand_computation() {
        // 2 points: k_aa = 1, k_bb = 1, k_ab = 0.5 → d = √1 = 1.
        let gram = vec![1.0, 0.5, 0.5, 1.0];
        let d = DistanceMatrix::from_gram(2, &gram);
        assert!((d.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_squared_distance_is_clamped() {
        // Indefinite "gram": k_ab bigger than the self-similarities.
        let gram = vec![1.0, 2.0, 2.0, 1.0];
        let d = DistanceMatrix::from_gram(2, &gram);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn symmetry_and_zero_diagonal() {
        let d = DistanceMatrix::from_fn(4, |i, j| (i + j) as f64);
        for i in 0..4 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
    }

    #[test]
    fn max_distance() {
        let d = DistanceMatrix::from_fn(3, |i, j| (i * 10 + j) as f64);
        assert_eq!(d.max(), Some(12.0));
        assert_eq!(DistanceMatrix::from_fn(1, |_, _| 0.0).max(), None);
    }

    #[test]
    #[should_panic(expected = "row-major")]
    fn bad_gram_length_panics() {
        let _ = DistanceMatrix::from_gram(2, &[1.0; 3]);
    }
}
