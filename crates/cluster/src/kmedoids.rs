//! k-medoids (PAM) flat clustering over a distance matrix.
//!
//! A non-hierarchical companion to HAC: it needs only the pairwise
//! distances a kernel induces (never coordinates), so it slots directly
//! behind the kernel matrices of §4.1 and gives the experiment harness an
//! independent second opinion on cluster structure.

use crate::distance::DistanceMatrix;

/// The result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoids {
    /// Indices of the chosen medoids (length k).
    pub medoids: Vec<usize>,
    /// Cluster label per point (index into `medoids`).
    pub labels: Vec<usize>,
    /// Final total distance of every point to its medoid.
    pub cost: f64,
    /// Number of improvement sweeps performed.
    pub iterations: usize,
}

/// Runs PAM (build + swap) with deterministic initialisation.
///
/// Initialisation is the greedy BUILD step of classic PAM (first medoid
/// minimises total distance; each further medoid maximises cost
/// reduction), followed by SWAP until no single medoid/non-medoid
/// exchange improves the cost. Deterministic: no randomness anywhere.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the number of points.
///
/// # Examples
///
/// ```
/// use kastio_cluster::{k_medoids, DistanceMatrix};
///
/// let d = DistanceMatrix::from_fn(4, |i, j| {
///     if (i < 2) == (j < 2) { 1.0 } else { 9.0 }
/// });
/// let result = k_medoids(&d, 2);
/// assert_eq!(result.labels[0], result.labels[1]);
/// assert_eq!(result.labels[2], result.labels[3]);
/// assert_ne!(result.labels[0], result.labels[2]);
/// ```
pub fn k_medoids(dist: &DistanceMatrix, k: usize) -> KMedoids {
    let n = dist.len();
    assert!(k >= 1 && k <= n.max(1), "k must be in 1..=n");
    if n == 0 {
        return KMedoids { medoids: Vec::new(), labels: Vec::new(), cost: 0.0, iterations: 0 };
    }

    // BUILD: greedy initial medoids.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            total_cost_single(dist, a).partial_cmp(&total_cost_single(dist, b)).expect("finite")
        })
        .expect("n > 0");
    medoids.push(first);
    while medoids.len() < k {
        let mut best = (f64::INFINITY, usize::MAX);
        for cand in 0..n {
            if medoids.contains(&cand) {
                continue;
            }
            medoids.push(cand);
            let cost = assignment_cost(dist, &medoids);
            medoids.pop();
            if cost < best.0 {
                best = (cost, cand);
            }
        }
        medoids.push(best.1);
    }

    // SWAP until convergence.
    let mut cost = assignment_cost(dist, &medoids);
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut improved = false;
        for slot in 0..k {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let old = medoids[slot];
                medoids[slot] = cand;
                let new_cost = assignment_cost(dist, &medoids);
                if new_cost + 1e-12 < cost {
                    cost = new_cost;
                    improved = true;
                } else {
                    medoids[slot] = old;
                }
            }
        }
        if !improved || iterations > 64 {
            break;
        }
    }

    let labels = assign(dist, &medoids);
    KMedoids { medoids, labels, cost, iterations }
}

fn total_cost_single(dist: &DistanceMatrix, medoid: usize) -> f64 {
    (0..dist.len()).map(|i| dist.get(i, medoid)).sum()
}

fn assign(dist: &DistanceMatrix, medoids: &[usize]) -> Vec<usize> {
    (0..dist.len())
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    dist.get(i, a).partial_cmp(&dist.get(i, b)).expect("finite")
                })
                .map(|(slot, _)| slot)
                .expect("at least one medoid")
        })
        .collect()
}

fn assignment_cost(dist: &DistanceMatrix, medoids: &[usize]) -> f64 {
    (0..dist.len())
        .map(|i| medoids.iter().map(|&m| dist.get(i, m)).fold(f64::INFINITY, f64::min))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_groups() -> DistanceMatrix {
        DistanceMatrix::from_fn(9, |i, j| if i / 3 == j / 3 { 1.0 } else { 10.0 })
    }

    #[test]
    fn recovers_obvious_groups() {
        let result = k_medoids(&three_groups(), 3);
        for g in 0..3 {
            let base = result.labels[g * 3];
            assert_eq!(result.labels[g * 3 + 1], base);
            assert_eq!(result.labels[g * 3 + 2], base);
        }
        let mut distinct = result.labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn medoids_label_themselves() {
        let result = k_medoids(&three_groups(), 3);
        for (slot, &m) in result.medoids.iter().enumerate() {
            assert_eq!(result.labels[m], slot);
        }
    }

    #[test]
    fn k_equals_n_costs_zero() {
        let d = DistanceMatrix::from_fn(4, |i, j| (i + j) as f64);
        let result = k_medoids(&d, 4);
        assert_eq!(result.cost, 0.0);
        let mut medoids = result.medoids.clone();
        medoids.sort_unstable();
        assert_eq!(medoids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k1_picks_the_central_point() {
        // Point 1 is in the middle of a line 0-1-2.
        let d = DistanceMatrix::from_fn(3, |i, j| ((j as i64 - i as i64).abs()) as f64);
        let result = k_medoids(&d, 1);
        assert_eq!(result.medoids, vec![1]);
        assert_eq!(result.labels, vec![0, 0, 0]);
        assert_eq!(result.cost, 2.0);
    }

    #[test]
    fn deterministic() {
        let d = three_groups();
        assert_eq!(k_medoids(&d, 3), k_medoids(&d, 3));
    }

    #[test]
    fn empty_input() {
        let d = DistanceMatrix::from_fn(0, |_, _| 0.0);
        let result = k_medoids(&d, 1);
        assert!(result.labels.is_empty());
    }

    #[test]
    #[should_panic(expected = "1..=n")]
    fn zero_k_panics() {
        let _ = k_medoids(&three_groups(), 0);
    }
}
