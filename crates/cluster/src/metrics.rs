//! External and internal cluster-quality metrics.
//!
//! The paper judges its clusterings visually ("there were not misplaced
//! examples on any of the groups"); to make that claim machine-checkable
//! the experiment harness scores every clustering against the ground-truth
//! categories with purity, the adjusted Rand index and normalised mutual
//! information, plus the (internal) silhouette coefficient.

use std::collections::HashMap;

use crate::distance::DistanceMatrix;

fn contingency(pred: &[usize], truth: &[usize]) -> HashMap<(usize, usize), usize> {
    let mut table = HashMap::new();
    for (&p, &t) in pred.iter().zip(truth) {
        *table.entry((p, t)).or_insert(0) += 1;
    }
    table
}

fn class_counts(labels: &[usize]) -> HashMap<usize, usize> {
    let mut counts = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts
}

/// Cluster purity: the fraction of points whose cluster's majority class
/// matches their own. 1.0 means every cluster is class-pure.
///
/// # Panics
///
/// Panics if the label slices differ in length.
///
/// # Examples
///
/// ```
/// use kastio_cluster::purity;
///
/// assert_eq!(purity(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
/// assert_eq!(purity(&[0, 0, 0, 0], &[1, 1, 2, 2]), 0.5);
/// ```
pub fn purity(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    if pred.is_empty() {
        return 1.0;
    }
    // For each predicted cluster take its majority class count.
    let mut best: HashMap<usize, usize> = HashMap::new();
    for (&(p, _), &count) in &contingency(pred, truth) {
        let entry = best.entry(p).or_insert(0);
        *entry = (*entry).max(count);
    }
    let majority_sum: usize = best.values().sum();
    majority_sum as f64 / pred.len() as f64
}

fn comb2(x: usize) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand index between two labelings, in `[-1, 1]`; 1 for
/// identical partitions, ~0 for random agreement.
///
/// # Panics
///
/// Panics if the label slices differ in length.
///
/// # Examples
///
/// ```
/// use kastio_cluster::adjusted_rand_index;
///
/// assert!((adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]) - 1.0).abs() < 1e-12);
/// ```
pub fn adjusted_rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let table = contingency(pred, truth);
    let sum_comb_cells: f64 = table.values().map(|&c| comb2(c)).sum();
    let sum_comb_pred: f64 = class_counts(pred).values().map(|&c| comb2(c)).sum();
    let sum_comb_truth: f64 = class_counts(truth).values().map(|&c| comb2(c)).sum();
    let total = comb2(n);
    let expected = sum_comb_pred * sum_comb_truth / total;
    let max_index = 0.5 * (sum_comb_pred + sum_comb_truth);
    if (max_index - expected).abs() < 1e-15 {
        return 1.0; // both partitions trivial (all-singletons or all-one)
    }
    (sum_comb_cells - expected) / (max_index - expected)
}

fn entropy(counts: &HashMap<usize, usize>, n: f64) -> f64 {
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum()
}

/// Normalised mutual information (arithmetic-mean normalisation), in
/// `[0, 1]`.
///
/// # Panics
///
/// Panics if the label slices differ in length.
pub fn normalized_mutual_information(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "label slices must align");
    let n = pred.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;
    let cp = class_counts(pred);
    let ct = class_counts(truth);
    let hp = entropy(&cp, nf);
    let ht = entropy(&ct, nf);
    if hp == 0.0 && ht == 0.0 {
        return 1.0;
    }
    let table = contingency(pred, truth);
    let mut mi = 0.0;
    for (&(p, t), &c) in &table {
        let pij = c as f64 / nf;
        let pi = cp[&p] as f64 / nf;
        let pj = ct[&t] as f64 / nf;
        mi += pij * (pij / (pi * pj)).ln();
    }
    let denom = 0.5 * (hp + ht);
    if denom <= 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Mean silhouette coefficient of a labeling over a distance matrix, in
/// `[-1, 1]`; higher is better-separated. Singleton clusters score 0, as
/// is conventional.
///
/// # Panics
///
/// Panics if `labels.len() != dist.len()`.
pub fn silhouette(dist: &DistanceMatrix, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), dist.len(), "labels must cover every point");
    let n = labels.len();
    if n == 0 {
        return 0.0;
    }
    let counts = class_counts(labels);
    if counts.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        if counts[&own] == 1 {
            continue; // silhouette of a singleton is 0
        }
        // a(i): mean intra-cluster distance; b(i): min mean distance to
        // another cluster.
        let mut sums: HashMap<usize, (f64, usize)> = HashMap::new();
        for (j, &label) in labels.iter().enumerate() {
            if i == j {
                continue;
            }
            let e = sums.entry(label).or_insert((0.0, 0));
            e.0 += dist.get(i, j);
            e.1 += 1;
        }
        let a = sums.get(&own).map(|&(s, c)| s / c as f64).unwrap_or(0.0);
        let b = sums
            .iter()
            .filter(|&(&l, _)| l != own)
            .map(|(_, &(s, c))| s / c as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_perfect_and_mixed() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 1, 0, 1], &[0, 0, 1, 1]), 0.5);
        assert_eq!(purity(&[], &[]), 1.0);
    }

    #[test]
    fn purity_is_label_permutation_invariant() {
        assert_eq!(purity(&[3, 3, 7, 7], &[1, 1, 0, 0]), 1.0);
    }

    #[test]
    fn ari_identity_and_independence() {
        assert!((adjusted_rand_index(&[0, 0, 1, 1], &[0, 0, 1, 1]) - 1.0).abs() < 1e-12);
        // A deliberately orthogonal labeling scores near zero.
        let ari = adjusted_rand_index(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!(ari.abs() < 0.5);
        // Splitting one true cluster scores below 1.
        let ari = adjusted_rand_index(&[0, 1, 2, 2], &[0, 0, 1, 1]);
        assert!(ari < 1.0);
    }

    #[test]
    fn ari_short_inputs() {
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn nmi_bounds_and_identity() {
        assert!((normalized_mutual_information(&[0, 0, 1, 1], &[5, 5, 6, 6]) - 1.0).abs() < 1e-12);
        let nmi = normalized_mutual_information(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!((0.0..=1.0).contains(&nmi));
        assert!(nmi < 0.1);
    }

    #[test]
    fn nmi_trivial_partitions() {
        assert_eq!(normalized_mutual_information(&[0, 0, 0], &[0, 0, 0]), 1.0);
    }

    #[test]
    fn silhouette_prefers_true_grouping() {
        let d = DistanceMatrix::from_fn(4, |i, j| if (i < 2) == (j < 2) { 1.0 } else { 10.0 });
        let good = silhouette(&d, &[0, 0, 1, 1]);
        let bad = silhouette(&d, &[0, 1, 0, 1]);
        assert!(good > 0.8);
        assert!(bad < 0.0);
    }

    #[test]
    fn silhouette_degenerate_cases() {
        let d = DistanceMatrix::from_fn(3, |_, _| 1.0);
        assert_eq!(silhouette(&d, &[0, 0, 0]), 0.0, "single cluster");
        let d1 = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert_eq!(silhouette(&d1, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = purity(&[0], &[0, 1]);
    }
}
