//! Agglomerative hierarchical clustering (Lance–Williams).
//!
//! The paper analyses every similarity matrix with hierarchical clustering
//! using "the simple linkage method" (§4.1) — single linkage. Complete and
//! average linkage are provided for ablation.

use crate::dendrogram::{Dendrogram, Merge};
use crate::distance::DistanceMatrix;

/// The cluster-distance update rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Minimum pairwise distance — the paper's "simple linkage".
    #[default]
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

impl Linkage {
    /// Lance–Williams update: distance from the merged cluster `(a ∪ b)`
    /// to another cluster `c`.
    fn update(self, d_ac: f64, d_bc: f64, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Single => d_ac.min(d_bc),
            Linkage::Complete => d_ac.max(d_bc),
            Linkage::Average => {
                let (na, nb) = (size_a as f64, size_b as f64);
                (na * d_ac + nb * d_bc) / (na + nb)
            }
        }
    }
}

/// Runs agglomerative clustering over a distance matrix.
///
/// Returns the full merge tree; use [`Dendrogram::cut`] for flat clusters.
/// Ties are broken deterministically (lowest pair of cluster indices), so
/// results are reproducible.
///
/// # Examples
///
/// ```
/// use kastio_cluster::{hierarchical, DistanceMatrix, Linkage};
///
/// // Two obvious groups: {0,1} and {2,3}.
/// let d = DistanceMatrix::from_fn(4, |i, j| {
///     if (i < 2) == (j < 2) { 1.0 } else { 10.0 }
/// });
/// let dendro = hierarchical(&d, Linkage::Single);
/// let labels = dendro.cut(2);
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[2], labels[3]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn hierarchical(dist: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = dist.len();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    if n == 0 {
        return Dendrogram::new(0, merges);
    }

    // Active cluster bookkeeping. `id` is the dendrogram node id (leaves
    // 0..n, internal nodes n..2n-1, scipy convention).
    let mut active: Vec<usize> = (0..n).collect(); // positions into `ids`
    let mut ids: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    // Working distance matrix between active clusters, full storage.
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = dist.get(i, j);
        }
    }

    let mut next_id = n;
    while active.len() > 1 {
        // Find the closest active pair (deterministic tie-break).
        let mut best = (f64::INFINITY, 0usize, 0usize);
        for (ai, &a) in active.iter().enumerate() {
            for &b in active.iter().skip(ai + 1) {
                let dd = d[a * n + b];
                if dd < best.0 {
                    best = (dd, a, b);
                }
            }
        }
        let (dist_ab, a, b) = best;

        // Lance–Williams update of distances from the merged cluster
        // (stored in slot `a`) to every other active cluster.
        for &c in &active {
            if c == a || c == b {
                continue;
            }
            let updated = linkage.update(d[a * n + c], d[b * n + c], sizes[a], sizes[b]);
            d[a * n + c] = updated;
            d[c * n + a] = updated;
        }

        merges.push(Merge {
            left: ids[a],
            right: ids[b],
            distance: dist_ab,
            size: sizes[a] + sizes[b],
        });
        sizes[a] += sizes[b];
        ids[a] = next_id;
        next_id += 1;
        active.retain(|&x| x != b);
    }

    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_points() -> DistanceMatrix {
        // 0 and 1 close (d=1); 2 far from both (d=5 resp. 6).
        DistanceMatrix::from_fn(3, |i, j| match (i, j) {
            (0, 1) => 1.0,
            (0, 2) => 5.0,
            (1, 2) => 6.0,
            _ => unreachable!(),
        })
    }

    #[test]
    fn merge_order_respects_distances() {
        let dendro = hierarchical(&three_points(), Linkage::Single);
        let merges = dendro.merges();
        assert_eq!(merges.len(), 2);
        assert_eq!(merges[0].distance, 1.0);
        assert_eq!((merges[0].left, merges[0].right), (0, 1));
        // Single linkage: d({0,1},2) = min(5,6) = 5.
        assert_eq!(merges[1].distance, 5.0);
    }

    #[test]
    fn complete_linkage_uses_max() {
        let dendro = hierarchical(&three_points(), Linkage::Complete);
        assert_eq!(dendro.merges()[1].distance, 6.0);
    }

    #[test]
    fn average_linkage_uses_mean() {
        let dendro = hierarchical(&three_points(), Linkage::Average);
        assert_eq!(dendro.merges()[1].distance, 5.5);
    }

    #[test]
    fn chaining_behaviour_of_single_linkage() {
        // A chain 0-1-2-3 with inter-neighbour distance 1 but endpoints far
        // apart: single linkage merges the whole chain at height 1.
        let d = DistanceMatrix::from_fn(4, |i, j| (j - i) as f64);
        let dendro = hierarchical(&d, Linkage::Single);
        assert!(dendro.merges().iter().all(|m| m.distance == 1.0));
        // Complete linkage needs height 3 for the final merge.
        let dendro = hierarchical(&d, Linkage::Complete);
        assert_eq!(dendro.merges().last().unwrap().distance, 3.0);
    }

    #[test]
    fn sizes_accumulate() {
        let dendro = hierarchical(&three_points(), Linkage::Single);
        assert_eq!(dendro.merges()[0].size, 2);
        assert_eq!(dendro.merges()[1].size, 3);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = DistanceMatrix::from_fn(0, |_, _| 0.0);
        assert!(hierarchical(&empty, Linkage::Single).merges().is_empty());
        let one = DistanceMatrix::from_fn(1, |_, _| 0.0);
        let dendro = hierarchical(&one, Linkage::Single);
        assert!(dendro.merges().is_empty());
        assert_eq!(dendro.cut(1), vec![0]);
    }

    #[test]
    fn deterministic_under_ties() {
        let d = DistanceMatrix::from_fn(4, |_, _| 1.0);
        let a = hierarchical(&d, Linkage::Single);
        let b = hierarchical(&d, Linkage::Single);
        assert_eq!(a.merges(), b.merges());
    }
}
