//! Stage two of the conversion: pattern tree → weighted string.
//!
//! The tree is traversed in pre-order and every node emits one token. The
//! synthetic `[LEVEL_UP]` token "represents the change to an upper level
//! when doing the pre-order traversal. Its weight is simply the amount of
//! levels jumped until the next new node is found" (§3.1). No token marks
//! downward moves: a parent→child step is implicit in adjacency.

use crate::string::WeightedString;
use crate::token::{TokenLiteral, WeightedToken};
use crate::tree::PatternTree;

/// Flattens a pattern tree into its weighted-string representation.
///
/// Token inventory:
/// * `[ROOT]`, `[HANDLE]`, `[BLOCK]` — weight 1;
/// * operation leaves — literal `name[bytes]`, weight = repetition count;
/// * `[LEVEL_UP]` — weight = number of levels jumped upward before the next
///   node; never emitted after the final node.
///
/// # Examples
///
/// ```
/// use kastio_core::{build_tree, compress_tree, flatten_tree, ByteMode, CompressOptions};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace(
///     "h0 open 0\nh0 write 8\nh0 close 0\nh1 open 0\nh1 read 4\nh1 close 0\n",
/// )?;
/// let mut tree = build_tree(&trace, ByteMode::Preserve);
/// compress_tree(&mut tree, &CompressOptions::default());
/// let s = flatten_tree(&tree);
/// assert_eq!(
///     s.to_string(),
///     "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 write[8]x1 [LEVEL_UP]x2 [HANDLE]x1 [BLOCK]x1 read[4]x1",
/// );
/// # Ok(())
/// # }
/// ```
pub fn flatten_tree(tree: &PatternTree) -> WeightedString {
    // Emit (depth, token) pairs in pre-order, then insert LEVEL_UP tokens
    // between consecutive emissions whenever the depth decreases.
    let mut nodes: Vec<(u32, WeightedToken)> = Vec::new();
    nodes.push((0, WeightedToken::structural(TokenLiteral::Root)));
    for handle in &tree.handles {
        nodes.push((1, WeightedToken::structural(TokenLiteral::Handle)));
        for block in &handle.blocks {
            nodes.push((2, WeightedToken::structural(TokenLiteral::Block)));
            for op in &block.ops {
                nodes.push((3, WeightedToken::new(TokenLiteral::Op(op.literal.clone()), op.reps)));
            }
        }
    }

    let mut out = WeightedString::new();
    let mut prev_depth: Option<u32> = None;
    for (depth, token) in nodes {
        if let Some(prev) = prev_depth {
            if depth < prev {
                out.push(WeightedToken::new(TokenLiteral::LevelUp, (prev - depth) as u64));
            }
        }
        prev_depth = Some(depth);
        out.push(token);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{ByteSig, OpLiteral};
    use crate::tree::{BlockNode, HandleNode, OpNode};
    use kastio_trace::HandleId;

    fn leaf(name: &str, bytes: u64, reps: u64) -> OpNode {
        OpNode::with_reps(OpLiteral::new(name, ByteSig::single(bytes)), reps)
    }

    fn tree_of(blocks_per_handle: Vec<Vec<Vec<OpNode>>>) -> PatternTree {
        let mut tree = PatternTree::new();
        for (i, blocks) in blocks_per_handle.into_iter().enumerate() {
            let mut h = HandleNode::new(HandleId::new(i as u32));
            for ops in blocks {
                h.blocks.push(BlockNode { ops });
            }
            tree.handles.push(h);
        }
        tree
    }

    fn literals(s: &WeightedString) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn empty_tree_is_just_root() {
        let s = flatten_tree(&PatternTree::new());
        assert_eq!(literals(&s), vec!["[ROOT]x1"]);
    }

    #[test]
    fn single_handle_single_block() {
        let t = tree_of(vec![vec![vec![leaf("read", 8, 5)]]]);
        let s = flatten_tree(&t);
        assert_eq!(literals(&s), vec!["[ROOT]x1", "[HANDLE]x1", "[BLOCK]x1", "read[8]x5"]);
        // Leaf weight is the repetition count.
        assert_eq!(s.as_slice()[3].weight, 5);
    }

    #[test]
    fn level_up_between_blocks_is_one() {
        let t = tree_of(vec![vec![vec![leaf("read", 8, 1)], vec![leaf("write", 4, 1)]]]);
        let s = flatten_tree(&t);
        assert_eq!(
            literals(&s),
            vec![
                "[ROOT]x1",
                "[HANDLE]x1",
                "[BLOCK]x1",
                "read[8]x1",
                "[LEVEL_UP]x1",
                "[BLOCK]x1",
                "write[4]x1",
            ]
        );
    }

    #[test]
    fn level_up_between_handles_is_two() {
        let t = tree_of(vec![vec![vec![leaf("read", 8, 1)]], vec![vec![leaf("write", 4, 1)]]]);
        let s = flatten_tree(&t);
        assert_eq!(
            literals(&s),
            vec![
                "[ROOT]x1",
                "[HANDLE]x1",
                "[BLOCK]x1",
                "read[8]x1",
                "[LEVEL_UP]x2",
                "[HANDLE]x1",
                "[BLOCK]x1",
                "write[4]x1",
            ]
        );
    }

    #[test]
    fn empty_block_to_sibling_block_needs_no_level_up() {
        let t = tree_of(vec![vec![vec![], vec![leaf("read", 8, 1)]]]);
        let s = flatten_tree(&t);
        assert_eq!(
            literals(&s),
            vec!["[ROOT]x1", "[HANDLE]x1", "[BLOCK]x1", "[BLOCK]x1", "read[8]x1"]
        );
    }

    #[test]
    fn empty_block_at_end_of_handle_levels_up_one() {
        // handle1 ends with an empty block (depth 2), next node is handle2
        // (depth 1): jump of 1.
        let t = tree_of(vec![vec![vec![]], vec![vec![]]]);
        let s = flatten_tree(&t);
        assert_eq!(
            literals(&s),
            vec!["[ROOT]x1", "[HANDLE]x1", "[BLOCK]x1", "[LEVEL_UP]x1", "[HANDLE]x1", "[BLOCK]x1"]
        );
    }

    #[test]
    fn no_trailing_level_up() {
        let t = tree_of(vec![vec![vec![leaf("read", 8, 1)]]]);
        let s = flatten_tree(&t);
        assert_ne!(
            s.as_slice().last().unwrap().literal,
            TokenLiteral::LevelUp,
            "no level-up after the final node"
        );
    }

    #[test]
    fn string_weight_accounts_structure_and_mass() {
        let t = tree_of(vec![vec![vec![leaf("read", 8, 5), leaf("write", 8, 3)]]]);
        let s = flatten_tree(&t);
        // ROOT + HANDLE + BLOCK (3) + leaves (8) = 11; no level-ups.
        assert_eq!(s.total_weight(), 11);
    }
}
