//! Weighted strings and their interned form.
//!
//! §3.2: "A weighted string is a set of consecutive weighted tokens … The
//! weight of a string is the summation of the weights of its tokens."
//!
//! Kernels never compare [`TokenLiteral`]s directly; they operate on
//! [`IdString`]s, where every distinct literal has been interned to a dense
//! [`TokenId`] by a [`TokenInterner`]. Interning once per string makes the
//! Gram-matrix loops cheap `u32` comparisons.

use std::collections::HashMap;
use std::fmt;

use crate::token::{TokenLiteral, WeightedToken};

/// A string of weighted tokens — the paper's representation of one I/O
/// access pattern.
///
/// # Examples
///
/// ```
/// use kastio_core::string::WeightedString;
/// use kastio_core::token::{TokenLiteral, WeightedToken};
///
/// let mut s = WeightedString::new();
/// s.push(WeightedToken::structural(TokenLiteral::Root));
/// s.push(WeightedToken::new(TokenLiteral::LevelUp, 2));
/// assert_eq!(s.total_weight(), 3);
/// assert_eq!(s.weight_at_least(2), 2);
/// assert_eq!(s.to_string(), "[ROOT]x1 [LEVEL_UP]x2");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedString {
    tokens: Vec<WeightedToken>,
}

impl WeightedString {
    /// Creates an empty weighted string.
    pub fn new() -> Self {
        WeightedString { tokens: Vec::new() }
    }

    /// Appends a token.
    pub fn push(&mut self, token: WeightedToken) {
        self.tokens.push(token);
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the string has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterates over the tokens.
    pub fn iter(&self) -> std::slice::Iter<'_, WeightedToken> {
        self.tokens.iter()
    }

    /// The tokens as a slice.
    pub fn as_slice(&self) -> &[WeightedToken] {
        &self.tokens
    }

    /// The weight of the string: the sum of all token weights.
    pub fn total_weight(&self) -> u64 {
        self.tokens.iter().map(|t| t.weight).sum()
    }

    /// `weight_{w≥n}`: the sum of the weights of the tokens whose weight is
    /// at least `n` — Eq. (1)/(2) of the paper, used by the paper's kernel
    /// normalisation.
    pub fn weight_at_least(&self, n: u64) -> u64 {
        self.tokens.iter().filter(|t| t.weight >= n).map(|t| t.weight).sum()
    }
}

impl FromIterator<WeightedToken> for WeightedString {
    fn from_iter<I: IntoIterator<Item = WeightedToken>>(iter: I) -> Self {
        WeightedString { tokens: iter.into_iter().collect() }
    }
}

impl Extend<WeightedToken> for WeightedString {
    fn extend<I: IntoIterator<Item = WeightedToken>>(&mut self, iter: I) {
        self.tokens.extend(iter);
    }
}

impl<'a> IntoIterator for &'a WeightedString {
    type Item = &'a WeightedToken;
    type IntoIter = std::slice::Iter<'a, WeightedToken>;

    fn into_iter(self) -> Self::IntoIter {
        self.tokens.iter()
    }
}

impl fmt::Display for WeightedString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Dense identifier assigned to a distinct token literal by a
/// [`TokenInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u32);

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Interns token literals to dense ids shared across many strings.
///
/// In theory "the number of different tokens is infinite" (§3.2); in
/// practice a dataset only ever contains a few hundred distinct literals,
/// so a dense `u32` id space makes kernel comparisons cheap.
///
/// # Invariant: one interner per comparison universe
///
/// Ids are assigned in first-seen order, so the same literal receives
/// *different* ids in different interners. Two [`IdString`]s are therefore
/// only comparable (by a kernel, or by eye in diagnostic output) when they
/// were interned by the **same** interner. Everything that compares many
/// strings — `kastio compare`, the Gram-matrix builders, the corpus index
/// — holds exactly one `TokenInterner` and runs every input through it.
/// Kernel *values* are unaffected by id numbering (only id equality
/// matters), but mixing interners silently turns equal literals into
/// unequal ids and vice versa, which corrupts results.
///
/// # Examples
///
/// ```
/// use kastio_core::string::{TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
///
/// let mut interner = TokenInterner::new();
/// let s: WeightedString =
///     [WeightedToken::structural(TokenLiteral::Root)].into_iter().collect();
/// let ids = interner.intern_string(&s);
/// assert_eq!(ids.len(), 1);
/// assert_eq!(interner.resolve(ids.ids()[0]), Some(&TokenLiteral::Root));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    map: HashMap<TokenLiteral, TokenId>,
    rev: Vec<TokenLiteral>,
}

impl TokenInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        TokenInterner::default()
    }

    /// Interns one literal, returning its id (stable across calls).
    pub fn intern(&mut self, literal: &TokenLiteral) -> TokenId {
        if let Some(&id) = self.map.get(literal) {
            return id;
        }
        let id = TokenId(self.rev.len() as u32);
        self.map.insert(literal.clone(), id);
        self.rev.push(literal.clone());
        id
    }

    /// Looks up the literal behind an id.
    pub fn resolve(&self, id: TokenId) -> Option<&TokenLiteral> {
        self.rev.get(id.0 as usize)
    }

    /// Number of distinct literals interned so far.
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// Whether no literal has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }

    /// Approximate heap footprint of the interner, in bytes.
    ///
    /// Counts both directions of the mapping (the hash map and the
    /// reverse vector) plus the spilled bytes of any `Sym` literals.
    /// The estimate is deterministic for a given set of interned
    /// literals, which is what quota accounting needs: the index
    /// charges the *growth* of this number after each intern batch
    /// against a report-only memory account.
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(TokenLiteral, TokenId)>();
        let spilled: usize = self
            .rev
            .iter()
            .map(|literal| match literal {
                TokenLiteral::Sym(s) => s.capacity(),
                _ => 0,
            })
            .sum();
        // Each literal is stored twice (map key + rev entry); `Sym`
        // strings clone their bytes, so spilled bytes count twice too.
        self.map.capacity() * entry
            + self.rev.capacity() * std::mem::size_of::<TokenLiteral>()
            + 2 * spilled
    }

    /// Interns a whole weighted string into an [`IdString`].
    pub fn intern_string(&mut self, string: &WeightedString) -> IdString {
        let mut ids = Vec::with_capacity(string.len());
        let mut weights = Vec::with_capacity(string.len());
        for token in string {
            ids.push(self.intern(&token.literal));
            weights.push(token.weight);
        }
        IdString::from_parts(ids, weights)
    }
}

/// A weighted string after interning: parallel id and weight vectors.
///
/// This is the type every kernel consumes. Two `IdString`s are only
/// comparable when produced by the *same* interner.
///
/// Construction precomputes two weight accelerators so the kernel hot
/// path never rescans the weight vector:
///
/// * a prefix-sum array, making [`IdString::range_weight`] and
///   [`IdString::total_weight`] O(1);
/// * the weights sorted ascending with suffix sums, making
///   [`IdString::weight_at_least`] O(log n).
///
/// Both are integer sums, so the returned values are exactly the naive
/// rescan values (u64 addition is associative) — equality and identity of
/// an `IdString` are defined by `ids` and `weights` alone.
#[derive(Debug, Clone)]
pub struct IdString {
    ids: Vec<TokenId>,
    weights: Vec<u64>,
    /// `prefix[i]` = sum of `weights[..i]`; length `len() + 1`.
    prefix: Vec<u64>,
    /// The weights sorted ascending.
    sorted: Vec<u64>,
    /// `suffix[k]` = sum of `sorted[k..]`; length `len() + 1`.
    suffix: Vec<u64>,
}

impl Default for IdString {
    fn default() -> Self {
        IdString::from_parts(Vec::new(), Vec::new())
    }
}

impl PartialEq for IdString {
    fn eq(&self, other: &Self) -> bool {
        // The accelerator arrays are pure functions of `weights`.
        self.ids == other.ids && self.weights == other.weights
    }
}

impl Eq for IdString {}

impl IdString {
    /// Builds an id string directly from ids and weights.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length.
    pub fn from_parts(ids: Vec<TokenId>, weights: Vec<u64>) -> Self {
        assert_eq!(ids.len(), weights.len(), "ids and weights must align");
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &w in &weights {
            acc += w;
            prefix.push(acc);
        }
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        let mut suffix = vec![0u64; sorted.len() + 1];
        for k in (0..sorted.len()).rev() {
            suffix[k] = suffix[k + 1] + sorted[k];
        }
        IdString { ids, weights, prefix, sorted, suffix }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the string has no tokens.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The token ids.
    pub fn ids(&self) -> &[TokenId] {
        &self.ids
    }

    /// The token weights (parallel to [`IdString::ids`]).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The weight of the string: the sum of all token weights. O(1).
    pub fn total_weight(&self) -> u64 {
        *self.prefix.last().expect("prefix array is never empty")
    }

    /// `weight_{w≥n}`: sum of the weights of tokens whose weight ≥ `n`.
    ///
    /// O(log n) via the precomputed sorted-weight suffix sums; exactly
    /// equal to the naive filtered sum (integer addition is associative).
    pub fn weight_at_least(&self, n: u64) -> u64 {
        let from = self.sorted.partition_point(|&w| w < n);
        self.suffix[from]
    }

    /// Sum of the weights over the token range `[start, start + len)`.
    ///
    /// O(1) via the precomputed prefix sums.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the string length.
    pub fn range_weight(&self, start: usize, len: usize) -> u64 {
        self.prefix[start + len] - self.prefix[start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{ByteSig, OpLiteral};

    fn op(name: &str, bytes: u64, weight: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Op(OpLiteral::new(name, ByteSig::single(bytes))), weight)
    }

    #[test]
    fn weights_sum() {
        let s: WeightedString = [op("read", 8, 3), op("write", 8, 5)].into_iter().collect();
        assert_eq!(s.total_weight(), 8);
        assert_eq!(s.weight_at_least(4), 5);
        assert_eq!(s.weight_at_least(6), 0);
    }

    #[test]
    fn interner_footprint_grows_with_interned_literals() {
        let mut i = TokenInterner::new();
        assert_eq!(i.approx_bytes(), 0, "an empty interner holds nothing");
        i.intern(&TokenLiteral::Root);
        let small = i.approx_bytes();
        assert!(small > 0);
        let sym = "a".repeat(1024);
        i.intern(&TokenLiteral::Sym(sym.clone()));
        let with_sym = i.approx_bytes();
        assert!(
            with_sym >= small + 2 * sym.len(),
            "Sym bytes are stored twice (map key + rev): {small} -> {with_sym}"
        );
        // Deterministic for the same contents: re-interning changes nothing.
        i.intern(&TokenLiteral::Root);
        i.intern(&TokenLiteral::Sym(sym));
        assert_eq!(i.approx_bytes(), with_sym);
    }

    #[test]
    fn interner_is_stable_and_dedups() {
        let mut i = TokenInterner::new();
        let a = i.intern(&TokenLiteral::Root);
        let b = i.intern(&TokenLiteral::Handle);
        let a2 = i.intern(&TokenLiteral::Root);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(b), Some(&TokenLiteral::Handle));
        assert_eq!(i.resolve(TokenId(99)), None);
    }

    #[test]
    fn intern_string_preserves_weights_and_order() {
        let mut i = TokenInterner::new();
        let s: WeightedString =
            [op("read", 8, 3), op("read", 8, 7), op("write", 4, 1)].into_iter().collect();
        let ids = i.intern_string(&s);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids.ids()[0], ids.ids()[1]); // same literal, same id
        assert_ne!(ids.ids()[0], ids.ids()[2]);
        assert_eq!(ids.weights(), &[3, 7, 1]);
        assert_eq!(ids.total_weight(), 11);
        assert_eq!(ids.weight_at_least(3), 10);
        assert_eq!(ids.range_weight(1, 2), 8);
    }

    #[test]
    fn same_literal_same_id_across_strings() {
        let mut i = TokenInterner::new();
        let s1: WeightedString = [op("read", 8, 1)].into_iter().collect();
        let s2: WeightedString = [op("read", 8, 9)].into_iter().collect();
        let a = i.intern_string(&s1);
        let b = i.intern_string(&s2);
        assert_eq!(a.ids()[0], b.ids()[0]);
        assert_ne!(a.weights()[0], b.weights()[0]);
    }

    #[test]
    fn weight_accelerators_match_naive_rescan() {
        let mut i = TokenInterner::new();
        let s: WeightedString =
            [op("a", 8, 5), op("b", 4, 1), op("a", 8, 3), op("c", 2, 7)].into_iter().collect();
        let ids = i.intern_string(&s);
        for n in 0..=9u64 {
            let naive: u64 = ids.weights().iter().filter(|&&w| w >= n).sum();
            assert_eq!(ids.weight_at_least(n), naive, "weight_at_least({n})");
        }
        for start in 0..=ids.len() {
            for len in 0..=ids.len() - start {
                let naive: u64 = ids.weights()[start..start + len].iter().sum();
                assert_eq!(ids.range_weight(start, len), naive, "range_weight({start},{len})");
            }
        }
        assert_eq!(IdString::default().total_weight(), 0);
        assert_eq!(IdString::default().weight_at_least(1), 0);
        assert_eq!(IdString::default().range_weight(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn from_parts_validates() {
        let _ = IdString::from_parts(vec![TokenId(0)], vec![]);
    }

    #[test]
    fn display_joins_tokens() {
        let s: WeightedString = [op("read", 8, 3)].into_iter().collect();
        assert_eq!(s.to_string(), "read[8]x3");
    }

    #[test]
    fn empty_string_invariants() {
        let s = WeightedString::new();
        assert!(s.is_empty());
        assert_eq!(s.total_weight(), 0);
        let mut i = TokenInterner::new();
        let ids = i.intern_string(&s);
        assert!(ids.is_empty());
        assert!(i.is_empty());
    }
}
