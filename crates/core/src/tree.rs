//! The pattern tree: ROOT → HANDLE → BLOCK → operation leaves.
//!
//! "Trees are ideal data structures for representing containment
//! relationships between objects" (§3.1). The tree has exactly four levels;
//! `open`/`close` never become leaves because the `BLOCK` node already
//! plays the role of a delimiter.

use kastio_trace::HandleId;

use crate::token::OpLiteral;

/// An operation leaf of the pattern tree.
///
/// `reps` is the repetition count introduced by the compression step; an
/// uncompressed leaf has `reps == 1`. For merged leaves `reps` accumulates,
/// so a leaf's weight always equals the number of original trace operations
/// it covers — the invariant that makes compression *mass preserving*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpNode {
    /// The (possibly combined) operation literal.
    pub literal: OpLiteral,
    /// How many original operations this node covers.
    pub reps: u64,
}

impl OpNode {
    /// Creates a leaf covering a single operation.
    pub fn new(literal: OpLiteral) -> Self {
        OpNode { literal, reps: 1 }
    }

    /// Creates a leaf with an explicit repetition count.
    pub fn with_reps(literal: OpLiteral, reps: u64) -> Self {
        OpNode { literal, reps }
    }
}

/// A `BLOCK` node: the operations between one `open` and its `close`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockNode {
    /// The operation leaves of the block, in chronological order.
    pub ops: Vec<OpNode>,
}

impl BlockNode {
    /// Creates an empty block.
    pub fn new() -> Self {
        BlockNode::default()
    }

    /// Total number of original operations covered by this block.
    pub fn mass(&self) -> u64 {
        self.ops.iter().map(|op| op.reps).sum()
    }
}

/// A `HANDLE` node: all blocks belonging to one file handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandleNode {
    /// The trace handle this node groups.
    pub handle: HandleId,
    /// The open…close blocks of the handle, in chronological order.
    pub blocks: Vec<BlockNode>,
}

impl HandleNode {
    /// Creates a handle node with no blocks.
    pub fn new(handle: HandleId) -> Self {
        HandleNode { handle, blocks: Vec::new() }
    }

    /// Total number of original operations covered by this handle.
    pub fn mass(&self) -> u64 {
        self.blocks.iter().map(|b| b.mass()).sum()
    }
}

/// The full pattern tree of one trace.
///
/// # Examples
///
/// ```
/// use kastio_core::{build_tree, ByteMode};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 write 8\nh0 write 8\nh0 close 0\n")?;
/// let tree = build_tree(&trace, ByteMode::Preserve);
/// assert_eq!(tree.handles.len(), 1);
/// assert_eq!(tree.handles[0].blocks.len(), 1);
/// assert_eq!(tree.mass(), 2); // open/close are delimiters, not leaves
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternTree {
    /// The handle nodes, in order of first appearance in the trace.
    pub handles: Vec<HandleNode>,
}

impl PatternTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        PatternTree::default()
    }

    /// Total number of original (substantive) operations covered by the
    /// tree's leaves. Compression never changes this number.
    pub fn mass(&self) -> u64 {
        self.handles.iter().map(|h| h.mass()).sum()
    }

    /// Total number of leaves currently in the tree (shrinks under
    /// compression while [`PatternTree::mass`] stays constant).
    pub fn leaf_count(&self) -> usize {
        self.handles.iter().flat_map(|h| &h.blocks).map(|b| b.ops.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::ByteSig;

    fn leaf(name: &str, bytes: u64, reps: u64) -> OpNode {
        OpNode::with_reps(OpLiteral::new(name, ByteSig::single(bytes)), reps)
    }

    #[test]
    fn mass_sums_reps_across_levels() {
        let mut tree = PatternTree::new();
        let mut h = HandleNode::new(HandleId::new(0));
        let mut b1 = BlockNode::new();
        b1.ops.push(leaf("read", 8, 3));
        b1.ops.push(leaf("write", 8, 1));
        let mut b2 = BlockNode::new();
        b2.ops.push(leaf("write", 16, 2));
        h.blocks.push(b1);
        h.blocks.push(b2);
        tree.handles.push(h);
        assert_eq!(tree.mass(), 6);
        assert_eq!(tree.leaf_count(), 3);
    }

    #[test]
    fn empty_tree_mass_zero() {
        assert_eq!(PatternTree::new().mass(), 0);
        assert_eq!(PatternTree::new().leaf_count(), 0);
    }

    #[test]
    fn new_leaf_has_one_rep() {
        assert_eq!(leaf("read", 8, 1), OpNode::new(OpLiteral::new("read", ByteSig::single(8))));
    }
}
