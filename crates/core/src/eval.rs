//! The zero-allocation Kast kernel evaluation core.
//!
//! [`KastKernel::raw`](crate::KastKernel) is the innermost loop of every
//! layer above it — pairwise compares, Gram matrices, the index's k-NN
//! scoring — so this module provides a **weight-only fast path** that
//! computes the same value as the feature-materialising pipeline of
//! [`crate::kast`] without allocating per evaluation:
//!
//! * candidates are spans `(start, len)` into the first string, never
//!   cloned token vectors;
//! * the DP rows, the candidate dedup table, the occurrence buffers and
//!   the independence interval lists all live in a reusable
//!   [`KastScratch`], so a warm evaluator performs no heap allocation at
//!   all (buffers only ever grow);
//! * occurrences are collected from a first-token position index built
//!   once per string pair instead of rescanning both strings per
//!   candidate;
//! * occurrence weights come from the prefix sums precomputed by
//!   [`IdString`], O(1) per occurrence.
//!
//! The result is **bit-identical** to the naive pipeline: every stage
//! preserves the naive candidate order (first-seen DP order, then a
//! stable longest-first sort), all weight arithmetic is exact integer
//! arithmetic, and the final inner product accumulates per-feature terms
//! in the same order the naive `features()` walk does. The equivalence is
//! asserted by a property test against the retained reference
//! implementation (`KastKernel::raw_reference`).
//!
//! # Per-stage complexity
//!
//! For strings of length `n` and `m` with `C` distinct candidates and `O`
//! total occurrences:
//!
//! | stage                 | cost                                        |
//! |-----------------------|---------------------------------------------|
//! | matching DP           | O(n·m)                                      |
//! | candidate dedup       | O(total match length) expected (hash table) |
//! | position index        | O(n + m + alphabet)                         |
//! | occurrence collection | O(Σ bucket size · candidate length)         |
//! | independence filter   | O(O · kept intervals)                       |
//! | cut + inner product   | O(O)                                        |

use crate::kast::{CutRule, KastOptions, Normalization};
use crate::string::{IdString, TokenId};

/// Sentinel for an empty dedup-table slot.
const EMPTY: u32 = u32::MAX;

/// A candidate shared substring, stored as a span into the first string.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    len: u32,
    /// FNV-1a hash of the span's token ids (cached for table growth).
    hash: u64,
}

/// Occurrence ranges of one candidate inside the start-position arenas.
#[derive(Debug, Clone, Copy, Default)]
struct OccRange {
    a_start: u32,
    a_end: u32,
    b_start: u32,
    b_end: u32,
}

/// A kept appearance interval `(start, end, len)` used by the
/// independence filter.
type Interval = (u32, u32, u32);

/// First-token position index: a CSR map from [`TokenId`] to the sorted
/// positions where it occurs in one string.
///
/// The bucket array is sized by the largest id *present in the string*,
/// so a build costs O(len + max id). That leans on the
/// [`crate::TokenInterner`] design contract that the id space is small
/// and dense ("a dataset only ever contains a few hundred distinct
/// literals"); if a workload ever interned an unbounded vocabulary, this
/// would want a local id remap instead.
#[derive(Debug, Clone, Default)]
struct PosIndex {
    /// `head[t] .. head[t + 1]` is the bucket of token `t`.
    head: Vec<u32>,
    cursor: Vec<u32>,
    pos: Vec<u32>,
}

impl PosIndex {
    fn build(&mut self, ids: &[TokenId]) {
        let buckets = ids.iter().map(|t| t.0 as usize + 1).max().unwrap_or(0);
        self.head.clear();
        self.head.resize(buckets + 1, 0);
        for t in ids {
            self.head[t.0 as usize + 1] += 1;
        }
        for k in 1..self.head.len() {
            self.head[k] += self.head[k - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.head);
        self.pos.clear();
        self.pos.resize(ids.len(), 0);
        for (p, t) in ids.iter().enumerate() {
            let slot = self.cursor[t.0 as usize];
            self.pos[slot as usize] = p as u32;
            self.cursor[t.0 as usize] += 1;
        }
    }

    /// The ascending positions of token `t`; empty for unseen tokens.
    fn bucket(&self, t: TokenId) -> &[u32] {
        let t = t.0 as usize;
        if t + 1 >= self.head.len() {
            return &[];
        }
        &self.pos[self.head[t] as usize..self.head[t + 1] as usize]
    }
}

/// Reusable buffers for Kast kernel evaluation.
///
/// A fresh scratch is cheap (empty vectors); a *warm* scratch makes
/// evaluation allocation-free. One scratch serves any number of
/// evaluations under any [`KastOptions`] — it carries no result state
/// across calls, only capacity.
#[derive(Debug, Clone, Default)]
pub struct KastScratch {
    /// Common-suffix DP rows.
    prev: Vec<u32>,
    curr: Vec<u32>,
    /// Deduplicated candidates in first-seen order.
    spans: Vec<Span>,
    /// Open-addressing hash table over `spans` (content-keyed).
    table: Vec<u32>,
    index_a: PosIndex,
    index_b: PosIndex,
    /// Candidate occurrence ranges, parallel to `spans`.
    occs: Vec<OccRange>,
    /// Occurrence start arenas (all candidates, concatenated).
    starts_a: Vec<u32>,
    starts_b: Vec<u32>,
    /// Candidate indices sorted longest-first (ties by first-seen order).
    order: Vec<u32>,
    /// Independence-filter interval lists.
    kept_a: Vec<Interval>,
    kept_b: Vec<Interval>,
    staged_a: Vec<Interval>,
    staged_b: Vec<Interval>,
}

fn hash_ids(ids: &[TokenId]) -> u64 {
    // FNV-1a over the id words: deterministic and collision-checked (the
    // table compares full content on every probe hit).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in ids {
        h ^= u64::from(t.0);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Inserts the candidate span `xa[start .. start + len]` unless an
/// equal-content span is already present (first-seen dedup, exactly
/// like the naive pipeline's `HashMap<Vec<TokenId>, ()>`).
///
/// Free function over the individual buffers (rather than a `&mut self`
/// method) so the DP loop can hold iterator borrows of the row buffers
/// while inserting.
fn insert_candidate(
    spans: &mut Vec<Span>,
    table: &mut Vec<u32>,
    xa: &[TokenId],
    start: usize,
    len: usize,
) {
    let content = &xa[start..start + len];
    let hash = hash_ids(content);
    debug_assert!(table.len().is_power_of_two());
    let mask = table.len() - 1;
    let mut at = hash as usize & mask;
    loop {
        let slot = table[at];
        if slot == EMPTY {
            break;
        }
        let other = spans[slot as usize];
        if other.hash == hash
            && other.len as usize == len
            && xa[other.start as usize..other.start as usize + len] == *content
        {
            return; // duplicate literal sequence
        }
        at = (at + 1) & mask;
    }
    let idx = spans.len() as u32;
    spans.push(Span { start: start as u32, len: len as u32, hash });
    table[at] = idx;
    // Keep the load factor below 1/2.
    if (spans.len() + 1) * 2 > table.len() {
        grow_table(spans, table);
    }
}

fn grow_table(spans: &[Span], table: &mut Vec<u32>) {
    let new_len = (table.len() * 2).max(16);
    table.clear();
    table.resize(new_len, EMPTY);
    let mask = new_len - 1;
    for (idx, span) in spans.iter().enumerate() {
        let mut at = span.hash as usize & mask;
        while table[at] != EMPTY {
            at = (at + 1) & mask;
        }
        table[at] = idx as u32;
    }
}

impl KastScratch {
    fn reset(&mut self, m: usize) {
        self.prev.clear();
        self.prev.resize(m, 0);
        self.curr.clear();
        self.curr.resize(m, 0);
        // Shrink a dedup table inflated by an earlier outlier pair: the
        // per-evaluation `fill(EMPTY)` costs O(table), so a long-lived
        // scratch must not stay at its historical maximum forever. The
        // previous evaluation's candidate count (at load factor ≤ 1/2,
        // with slack for growth) bounds what the table needs; shrinking
        // lags one evaluation behind, which keeps steady workloads at a
        // stable size.
        let target = (self.spans.len() * 4).next_power_of_two().max(16);
        self.spans.clear();
        if self.table.len() < 16 {
            self.table.resize(16, EMPTY);
        } else {
            if self.table.len() > target {
                self.table.truncate(target);
            }
            self.table.fill(EMPTY);
        }
        self.occs.clear();
        self.starts_a.clear();
        self.starts_b.clear();
        self.order.clear();
        self.kept_a.clear();
        self.kept_b.clear();
        self.staged_a.clear();
        self.staged_b.clear();
    }
}

thread_local! {
    /// One warm scratch per thread, shared by every [`crate::KastKernel`]
    /// on it — so even callers that never see [`KastEvaluator`] (the Gram
    /// matrix workers, one-off compares) reuse buffers across
    /// evaluations.
    static THREAD_SCRATCH: std::cell::RefCell<KastScratch> =
        std::cell::RefCell::new(KastScratch::default());
}

/// Runs `f` with this thread's shared scratch; falls back to a fresh
/// scratch if the thread-local is unavailable (re-entrancy, thread
/// teardown) rather than panicking.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut KastScratch) -> R) -> R {
    let mut f = Some(f);
    let ran = THREAD_SCRATCH.try_with(|cell| {
        let f = f.take().expect("with_thread_scratch closure consumed twice");
        match cell.try_borrow_mut() {
            Ok(mut scratch) => f(&mut scratch),
            Err(_) => f(&mut KastScratch::default()),
        }
    });
    match ran {
        Ok(value) => value,
        Err(_) => {
            let f = f.take().expect("try_with dropped without running the closure");
            f(&mut KastScratch::default())
        }
    }
}

/// Evaluates the raw Kast kernel through `scratch`, bit-identically to
/// the naive `features()`-based pipeline.
pub(crate) fn raw_with_scratch(
    opts: &KastOptions,
    scratch: &mut KastScratch,
    a: &IdString,
    b: &IdString,
) -> f64 {
    // The naive pipeline computes `features().iter().map(..).sum::<f64>()`;
    // bit-identity therefore requires the exact additive identity std's
    // float `Sum` uses (it is `-0.0` on current toolchains, so an empty
    // feature set sums to `-0.0`, not `+0.0`).
    let zero: f64 = std::iter::empty::<f64>().sum();
    let (xa, xb) = (a.ids(), b.ids());
    let (n, m) = (xa.len(), xb.len());
    if n == 0 || m == 0 {
        return zero;
    }
    scratch.reset(m);

    // Stage 1 — maximal matching pairs via the common-suffix DP, with
    // candidates deduped into spans as they are found (the naive code
    // collects clones first and dedups after; first-seen order is the
    // same either way). `prev_left` carries `prev[j - 1]` through the
    // inner loop (0 at row start, matching the naive `i > 0 && j > 0`
    // guard: the previous row is all zeros when `i == 0`).
    let KastScratch { prev, curr, spans, table, .. } = &mut *scratch;
    for i in 0..n {
        let ai = xa[i];
        let a_next = if i + 1 < n { Some(xa[i + 1]) } else { None };
        let mut prev_left = 0u32;
        for ((j, &bj), (&pj, cj)) in xb.iter().enumerate().zip(prev.iter().zip(curr.iter_mut())) {
            if ai == bj {
                let l = prev_left + 1;
                *cj = l;
                // Right-maximal: the match cannot be extended past (i, j).
                let extendable = match a_next {
                    Some(an) => j + 1 < m && an == xb[j + 1],
                    None => false,
                };
                if !extendable {
                    insert_candidate(spans, table, xa, i + 1 - l as usize, l as usize);
                }
            } else {
                *cj = 0;
            }
            prev_left = pj;
        }
        std::mem::swap(prev, curr);
    }
    if scratch.spans.is_empty() {
        return zero;
    }

    // Stage 2 — collect every appearance of every candidate, walking only
    // the positions where the candidate's first token occurs.
    scratch.index_a.build(xa);
    scratch.index_b.build(xb);
    for c in 0..scratch.spans.len() {
        let span = scratch.spans[c];
        let (st, len) = (span.start as usize, span.len as usize);
        let content = &xa[st..st + len];
        let first = content[0];
        let a_start = scratch.starts_a.len() as u32;
        if len == 1 {
            // A single-token candidate occurs at exactly its bucket.
            scratch.starts_a.extend_from_slice(scratch.index_a.bucket(first));
        } else {
            for &p in scratch.index_a.bucket(first) {
                let p = p as usize;
                if p + len <= n && xa[p + 1..p + len] == content[1..] {
                    scratch.starts_a.push(p as u32);
                }
            }
        }
        let b_start = scratch.starts_b.len() as u32;
        if len == 1 {
            scratch.starts_b.extend_from_slice(scratch.index_b.bucket(first));
        } else {
            for &p in scratch.index_b.bucket(first) {
                let p = p as usize;
                if p + len <= m && xb[p + 1..p + len] == content[1..] {
                    scratch.starts_b.push(p as u32);
                }
            }
        }
        scratch.occs.push(OccRange {
            a_start,
            a_end: scratch.starts_a.len() as u32,
            b_start,
            b_end: scratch.starts_b.len() as u32,
        });
    }

    // Stage 3 — longest-first order; the first-seen index as tiebreak
    // reproduces the naive pipeline's *stable* sort exactly.
    scratch.order.extend(0..scratch.spans.len() as u32);
    let spans = &scratch.spans;
    scratch.order.sort_unstable_by_key(|&c| (std::cmp::Reverse(spans[c as usize].len), c));

    // Stage 4 — independence filter, cut rule and inner product in one
    // pass, accumulating per-feature terms in naive feature order.
    let cut = opts.cut_weight;
    let mut current_len = u32::MAX;
    let mut acc = zero;
    for &c in &scratch.order {
        let span = scratch.spans[c as usize];
        let len = span.len;
        if len < current_len {
            // Entering a shorter length group: commit the staged intervals
            // so equal-length candidates never suppress each other.
            scratch.kept_a.append(&mut scratch.staged_a);
            scratch.kept_b.append(&mut scratch.staged_b);
            current_len = len;
        }
        let occ = scratch.occs[c as usize];
        let starts_a = &scratch.starts_a[occ.a_start as usize..occ.a_end as usize];
        let starts_b = &scratch.starts_b[occ.b_start as usize..occ.b_end as usize];
        let contained = |intervals: &[Interval], s: u32| {
            intervals.iter().any(|&(ks, ke, kl)| kl > len && ks <= s && s + len <= ke)
        };
        let independent_a = starts_a.iter().any(|&s| !contained(&scratch.kept_a, s));
        let independent_b = starts_b.iter().any(|&s| !contained(&scratch.kept_b, s));
        if !(independent_a || independent_b) {
            continue;
        }
        for &s in starts_a {
            scratch.staged_a.push((s, s + len, len));
        }
        for &s in starts_b {
            scratch.staged_b.push((s, s + len, len));
        }
        // One fused pass per string computes each occurrence weight once
        // (O(1) via the prefix sums): the sums for the inner product and
        // the any/all cut predicates. `any` over no occurrences is false
        // and `all` is true, exactly like the naive iterator chains.
        let weigh = |string: &IdString, starts: &[u32]| -> (u64, bool, bool) {
            let (mut sum, mut any, mut all) = (0u64, false, true);
            for &s in starts {
                let w = string.range_weight(s as usize, len as usize);
                sum += w;
                any |= w >= cut;
                all &= w >= cut;
            }
            (sum, any, all)
        };
        let (weight_a, any_a, all_a) = weigh(a, starts_a);
        let (weight_b, any_b, all_b) = weigh(b, starts_b);
        let passes = match opts.cut_rule {
            CutRule::AnyOccurrence => any_a || any_b,
            CutRule::AllOccurrences => all_a && all_b,
            CutRule::PerStringSum => weight_a >= cut && weight_b >= cut,
        };
        if passes {
            acc += weight_a as f64 * weight_b as f64;
        }
    }
    acc
}

/// Replicates [`crate::KastKernel::normalized`] given a way to compute
/// raw values (shared by the kernel facade and [`KastEvaluator`]).
pub(crate) fn normalized_with_raw(
    opts: &KastOptions,
    a: &IdString,
    b: &IdString,
    mut raw: impl FnMut(&IdString, &IdString) -> f64,
) -> f64 {
    match opts.normalization {
        Normalization::Cosine => {
            let kab = raw(a, b);
            if kab == 0.0 {
                return 0.0;
            }
            let kaa = raw(a, a);
            let kbb = raw(b, b);
            normalized_cosine(kab, kaa, kbb)
        }
        Normalization::WeightProduct => normalized_weight_product(opts, a, b, raw(a, b)),
    }
}

/// The cosine combination `kab / √(kaa·kbb)` with the zero guards of
/// [`crate::StringKernel::normalized`].
pub(crate) fn normalized_cosine(kab: f64, kaa: f64, kbb: f64) -> f64 {
    if kab == 0.0 || kaa <= 0.0 || kbb <= 0.0 {
        0.0
    } else {
        kab / (kaa * kbb).sqrt()
    }
}

/// The paper's Eq. (13) weight-product normalisation of a raw value.
pub(crate) fn normalized_weight_product(
    opts: &KastOptions,
    a: &IdString,
    b: &IdString,
    kab: f64,
) -> f64 {
    let denom =
        a.weight_at_least(opts.cut_weight) as f64 * b.weight_at_least(opts.cut_weight) as f64;
    if denom <= 0.0 {
        0.0
    } else {
        kab / denom
    }
}

/// A reusable Kast kernel evaluator: [`KastOptions`] plus caller-owned
/// scratch state.
///
/// Use one evaluator per thread (it is `Send`, not `Sync`) and feed it
/// any number of string pairs; after the first few evaluations the
/// buffers have warmed up and evaluation allocates nothing. Results are
/// bit-identical to [`crate::KastKernel`] under the same options.
///
/// # Examples
///
/// ```
/// use kastio_core::{KastEvaluator, KastKernel, KastOptions, StringKernel, TokenInterner,
///                   WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
///
/// fn sym(name: &str, w: u64) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), w)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("x", 6), sym("y", 6), sym("z", 7)].into_iter().collect();
/// let b: WeightedString = [sym("x", 5), sym("y", 6), sym("z", 6)].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
///
/// let opts = KastOptions::with_cut_weight(4);
/// let mut evaluator = KastEvaluator::new(opts);
/// let kernel = KastKernel::new(opts);
/// assert_eq!(evaluator.raw(&ia, &ib).to_bits(), kernel.raw(&ia, &ib).to_bits());
/// assert_eq!(
///     evaluator.normalized(&ia, &ib).to_bits(),
///     kernel.normalized(&ia, &ib).to_bits(),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct KastEvaluator {
    opts: KastOptions,
    scratch: KastScratch,
}

impl KastEvaluator {
    /// Creates an evaluator with cold (empty) scratch buffers.
    pub fn new(opts: KastOptions) -> Self {
        KastEvaluator::with_scratch(opts, KastScratch::default())
    }

    /// Creates an evaluator around an existing (possibly warm) scratch —
    /// the hand-off for callers that evaluate under several option sets
    /// but want one set of buffers: take the scratch back with
    /// [`KastEvaluator::into_scratch`] and re-wrap it.
    pub fn with_scratch(opts: KastOptions, scratch: KastScratch) -> Self {
        KastEvaluator { opts, scratch }
    }

    /// Consumes the evaluator, returning its scratch with whatever
    /// capacity the evaluations grew (results never persist in scratch,
    /// only capacity).
    pub fn into_scratch(self) -> KastScratch {
        self.scratch
    }

    /// The evaluator's kernel options.
    pub fn options(&self) -> &KastOptions {
        &self.opts
    }

    /// The raw kernel value — bit-identical to
    /// [`StringKernel::raw`](crate::StringKernel::raw) on a
    /// [`crate::KastKernel`] under the same options.
    pub fn raw(&mut self, a: &IdString, b: &IdString) -> f64 {
        raw_with_scratch(&self.opts, &mut self.scratch, a, b)
    }

    /// The raw self-kernel `k(a, a)`, the denominator half of cosine
    /// normalisation. Callers building Gram matrices should compute each
    /// string's self-kernel **once** and use
    /// [`KastEvaluator::normalized_with_self_kernels`] for the pairs.
    pub fn self_kernel(&mut self, a: &IdString) -> f64 {
        self.raw(a, a)
    }

    /// The normalised kernel value — bit-identical to
    /// [`StringKernel::normalized`](crate::StringKernel::normalized) on a
    /// [`crate::KastKernel`] under the same options.
    ///
    /// Under [`Normalization::Cosine`] this evaluates both self-kernels
    /// per call; batch callers should memoise them via
    /// [`KastEvaluator::self_kernel`] and use
    /// [`KastEvaluator::normalized_with_self_kernels`] instead.
    pub fn normalized(&mut self, a: &IdString, b: &IdString) -> f64 {
        let (opts, scratch) = (&self.opts, &mut self.scratch);
        normalized_with_raw(opts, a, b, |x, y| raw_with_scratch(opts, scratch, x, y))
    }

    /// [`KastEvaluator::normalized`] with the self-kernels `k(a, a)` and
    /// `k(b, b)` supplied by the caller (memoised self-kernel path).
    ///
    /// Under [`Normalization::WeightProduct`] the self-kernels are not
    /// part of the formula and the arguments are ignored. Passing values
    /// other than the true self-kernels under [`Normalization::Cosine`]
    /// breaks the bit-identity contract.
    pub fn normalized_with_self_kernels(
        &mut self,
        a: &IdString,
        b: &IdString,
        kaa: f64,
        kbb: f64,
    ) -> f64 {
        match self.opts.normalization {
            Normalization::Cosine => normalized_cosine(self.raw(a, b), kaa, kbb),
            Normalization::WeightProduct => {
                let kab = self.raw(a, b);
                normalized_weight_product(&self.opts, a, b, kab)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::{KastKernel, KastOptions};
    use crate::string::TokenInterner;
    use crate::token::{TokenLiteral, WeightedToken};
    use crate::{StringKernel, WeightedString};

    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }

    fn intern_pair(a: &[WeightedToken], b: &[WeightedToken]) -> (IdString, IdString) {
        let mut interner = TokenInterner::new();
        let sa: WeightedString = a.iter().cloned().collect();
        let sb: WeightedString = b.iter().cloned().collect();
        (interner.intern_string(&sa), interner.intern_string(&sb))
    }

    #[test]
    fn warm_evaluator_matches_kernel_across_pairs() {
        // One evaluator, many pairs: scratch reuse must not leak state
        // between evaluations.
        let pairs = [
            (vec![sym("p", 2), sym("q", 2), sym("r", 2)], vec![sym("p", 3), sym("q", 3)]),
            (vec![sym("t", 2); 5], vec![sym("t", 2); 3]),
            (vec![sym("a", 9)], vec![sym("b", 9)]),
            (vec![], vec![sym("p", 3)]),
            (
                vec![sym("p", 2), sym("q", 2), sym("r", 2), sym("q", 8)],
                vec![sym("p", 2), sym("q", 2), sym("r", 2), sym("zz", 1), sym("q", 9)],
            ),
        ];
        for cut in [1, 2, 4, 8] {
            let opts = KastOptions::with_cut_weight(cut);
            let kernel = KastKernel::new(opts);
            let mut evaluator = KastEvaluator::new(opts);
            for (ta, tb) in &pairs {
                let (a, b) = intern_pair(ta, tb);
                assert_eq!(evaluator.raw(&a, &b).to_bits(), kernel.raw(&a, &b).to_bits());
                assert_eq!(evaluator.raw(&b, &a).to_bits(), kernel.raw(&b, &a).to_bits());
                assert_eq!(
                    evaluator.normalized(&a, &b).to_bits(),
                    kernel.normalized(&a, &b).to_bits()
                );
            }
        }
    }

    #[test]
    fn memoised_self_kernels_reproduce_normalized() {
        let (a, b) = intern_pair(
            &[sym("x", 6), sym("y", 6), sym("z", 7), sym("u", 3)],
            &[sym("x", 5), sym("y", 6), sym("z", 6), sym("u", 2)],
        );
        for normalization in [Normalization::Cosine, Normalization::WeightProduct] {
            let opts = KastOptions { normalization, ..KastOptions::with_cut_weight(2) };
            let kernel = KastKernel::new(opts);
            let mut evaluator = KastEvaluator::new(opts);
            let kaa = evaluator.self_kernel(&a);
            let kbb = evaluator.self_kernel(&b);
            assert_eq!(
                evaluator.normalized_with_self_kernels(&a, &b, kaa, kbb).to_bits(),
                kernel.normalized(&a, &b).to_bits()
            );
        }
    }

    #[test]
    fn scratch_hands_off_between_option_sets() {
        let (a, b) =
            intern_pair(&[sym("p", 2), sym("q", 2)], &[sym("p", 3), sym("q", 3), sym("p", 9)]);
        let first = KastOptions::with_cut_weight(1);
        let second = KastOptions::with_cut_weight(4);
        let mut evaluator = KastEvaluator::new(first);
        assert_eq!(evaluator.raw(&a, &b).to_bits(), KastKernel::new(first).raw(&a, &b).to_bits());
        // Re-wrap the warm scratch under different options: capacity
        // carries over, results stay bit-identical to a fresh kernel.
        let mut evaluator = KastEvaluator::with_scratch(second, evaluator.into_scratch());
        assert_eq!(evaluator.raw(&a, &b).to_bits(), KastKernel::new(second).raw(&a, &b).to_bits());
    }

    #[test]
    fn position_index_handles_foreign_tokens() {
        let mut index = PosIndex::default();
        index.build(&[TokenId(3), TokenId(1), TokenId(3)]);
        assert_eq!(index.bucket(TokenId(3)), &[0, 2]);
        assert_eq!(index.bucket(TokenId(1)), &[1]);
        assert_eq!(index.bucket(TokenId(2)), &[] as &[u32]);
        assert_eq!(index.bucket(TokenId(99)), &[] as &[u32]);
    }

    #[test]
    fn dedup_table_grows_past_initial_capacity() {
        // A pair with many distinct single-token candidates forces table
        // growth (> 8 with the initial 16-slot table at load 1/2): 40
        // distinct tokens shared one by one, never as longer runs.
        let tokens: Vec<WeightedToken> = (0..40).map(|i| sym(&format!("t{i}"), 2)).collect();
        let reversed: Vec<WeightedToken> = tokens.iter().rev().cloned().collect();
        let (a, b) = intern_pair(&tokens, &reversed);
        let opts = KastOptions::with_cut_weight(1);
        let mut evaluator = KastEvaluator::new(opts);
        let kernel = KastKernel::new(opts);
        assert_eq!(evaluator.raw(&a, &b).to_bits(), kernel.raw(&a, &b).to_bits());
    }
}
