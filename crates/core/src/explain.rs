//! Human-readable similarity explanations.
//!
//! The Kast kernel's embedding is inspectable by construction — every
//! feature is a concrete shared substring. This module turns the feature
//! list of a pair of strings into a ranked report: *why* are these two
//! access patterns similar, and which shared runs carry the similarity?

use std::fmt;

use crate::kast::{KastKernel, SharedFeature};
use crate::kernel::StringKernel;
use crate::string::{IdString, TokenInterner};

/// One line of a similarity explanation: a shared substring with its
/// contribution to the kernel value.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// The shared substring rendered as text (e.g. `[BLOCK] write[512]`).
    pub literal: String,
    /// Number of tokens in the substring.
    pub len: usize,
    /// Appearance count in the first / second string.
    pub appearances: (usize, usize),
    /// Summed appearance weight in the first / second string.
    pub weights: (u64, u64),
    /// `weight_a · weight_b` — this feature's term of the inner product.
    pub contribution: f64,
    /// The term as a fraction of the raw kernel value (0 when the kernel
    /// value is 0).
    pub share: f64,
}

impl fmt::Display for Contribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:6.1}%  {:>7}·{:<7} {}",
            self.share * 100.0,
            self.weights.0,
            self.weights.1,
            self.literal,
        )
    }
}

/// A full explanation of one kernel evaluation.
///
/// # Examples
///
/// ```
/// use kastio_core::explain::explain_similarity;
/// use kastio_core::token::{TokenLiteral, WeightedToken};
/// use kastio_core::{KastKernel, KastOptions, TokenInterner, WeightedString};
///
/// fn sym(name: &str, w: u64) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), w)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("p", 5), sym("q", 5)].into_iter().collect();
/// let b: WeightedString = [sym("p", 7), sym("q", 2)].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
///
/// let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
/// let report = explain_similarity(&kernel, &ia, &ib, &interner);
/// assert_eq!(report.contributions.len(), 1);
/// assert_eq!(report.contributions[0].literal, "<p> <q>");
/// assert_eq!(report.raw, 90.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityReport {
    /// The raw kernel value.
    pub raw: f64,
    /// The normalised kernel value.
    pub normalized: f64,
    /// Per-feature contributions, largest first.
    pub contributions: Vec<Contribution>,
}

impl SimilarityReport {
    /// The `n` largest contributions.
    pub fn top(&self, n: usize) -> &[Contribution] {
        &self.contributions[..n.min(self.contributions.len())]
    }
}

impl fmt::Display for SimilarityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel value {:.2} (normalised {:.4}); {} shared feature(s):",
            self.raw,
            self.normalized,
            self.contributions.len()
        )?;
        for c in &self.contributions {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

fn render(feature: &SharedFeature, interner: &TokenInterner) -> String {
    feature
        .tokens
        .iter()
        .map(|id| interner.resolve(*id).map(|l| l.to_string()).unwrap_or_else(|| format!("{id}")))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Explains one Kast kernel evaluation: every shared feature, decoded and
/// ranked by its contribution to the kernel value.
///
/// The interner must be the one the strings were interned with —
/// otherwise literals decode to the wrong names.
pub fn explain_similarity(
    kernel: &KastKernel,
    a: &IdString,
    b: &IdString,
    interner: &TokenInterner,
) -> SimilarityReport {
    let features = kernel.features(a, b);
    let raw: f64 = features.iter().map(|f| f.weight_a as f64 * f.weight_b as f64).sum();
    let normalized = kernel.normalized(a, b);
    let mut contributions: Vec<Contribution> = features
        .iter()
        .map(|f| {
            let contribution = f.weight_a as f64 * f.weight_b as f64;
            Contribution {
                literal: render(f, interner),
                len: f.len(),
                appearances: (f.starts_a.len(), f.starts_b.len()),
                weights: (f.weight_a, f.weight_b),
                contribution,
                share: if raw > 0.0 { contribution / raw } else { 0.0 },
            }
        })
        .collect();
    contributions.sort_by(|x, y| {
        y.contribution.partial_cmp(&x.contribution).expect("contributions are finite")
    });
    SimilarityReport { raw, normalized, contributions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::KastOptions;
    use crate::token::{TokenLiteral, WeightedToken};
    use crate::WeightedString;

    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }

    fn setup() -> (KastKernel, IdString, IdString, TokenInterner) {
        let mut interner = TokenInterner::new();
        let a: WeightedString =
            [sym("p", 5), sym("q", 5), sym("zz", 1), sym("r", 9)].into_iter().collect();
        let b: WeightedString =
            [sym("p", 7), sym("q", 2), sym("yy", 1), sym("r", 3)].into_iter().collect();
        let ia = interner.intern_string(&a);
        let ib = interner.intern_string(&b);
        (KastKernel::new(KastOptions::with_cut_weight(2)), ia, ib, interner)
    }

    #[test]
    fn report_matches_kernel_values() {
        let (kernel, a, b, interner) = setup();
        let report = explain_similarity(&kernel, &a, &b, &interner);
        assert_eq!(report.raw, kernel.raw(&a, &b));
        assert_eq!(report.normalized, kernel.normalized(&a, &b));
        let sum: f64 = report.contributions.iter().map(|c| c.contribution).sum();
        assert_eq!(sum, report.raw);
    }

    #[test]
    fn contributions_are_sorted_and_shares_sum_to_one() {
        let (kernel, a, b, interner) = setup();
        let report = explain_similarity(&kernel, &a, &b, &interner);
        assert!(report.contributions.len() >= 2);
        for w in report.contributions.windows(2) {
            assert!(w[0].contribution >= w[1].contribution);
        }
        let total: f64 = report.contributions.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn literals_decode() {
        let (kernel, a, b, interner) = setup();
        let report = explain_similarity(&kernel, &a, &b, &interner);
        assert_eq!(report.contributions[0].literal, "<p> <q>");
        assert_eq!(report.contributions[0].appearances, (1, 1));
    }

    #[test]
    fn zero_similarity_report() {
        let mut interner = TokenInterner::new();
        let a: WeightedString = [sym("p", 5)].into_iter().collect();
        let b: WeightedString = [sym("q", 5)].into_iter().collect();
        let ia = interner.intern_string(&a);
        let ib = interner.intern_string(&b);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
        let report = explain_similarity(&kernel, &ia, &ib, &interner);
        assert_eq!(report.raw, 0.0);
        assert!(report.contributions.is_empty());
        assert!(report.to_string().contains("0 shared feature"));
    }

    #[test]
    fn top_truncates() {
        let (kernel, a, b, interner) = setup();
        let report = explain_similarity(&kernel, &a, &b, &interner);
        assert_eq!(report.top(1).len(), 1);
        assert_eq!(report.top(100).len(), report.contributions.len());
    }

    #[test]
    fn display_contains_percentages() {
        let (kernel, a, b, interner) = setup();
        let report = explain_similarity(&kernel, &a, &b, &interner);
        let text = report.to_string();
        assert!(text.contains('%'));
        assert!(text.contains("<p> <q>"));
    }
}
