//! The Kast Spectrum Kernel (§3.2) — the paper's headline contribution.
//!
//! Given two weighted strings and a *cut weight* `n`, the kernel:
//!
//! 1. finds the substrings *shared* by both strings (matching on token
//!    literals only — "the weight of a target substring might be different
//!    in each string");
//! 2. restricts them to *independent* matches: "a target substring must
//!    not be a substring of another matching substring in at least one of
//!    the original strings";
//! 3. keeps those reaching the cut weight;
//! 4. turns each surviving substring into an embedding feature whose value
//!    in a string is "the summation of the weights of all the substring
//!    appearances" there;
//! 5. returns the inner product of the two feature vectors.
//!
//! The normalised kernel divides by `weight_{w≥n}(A)·weight_{w≥n}(B)`
//! (Eq. 12/13 — the paper equates this with cosine normalisation but its
//! numeric example uses the weight product; we implement both, defaulting
//! to the paper's arithmetic so the §3.2 example reproduces exactly:
//! `k̄ = 1018/3328 = 0.3059`).
//!
//! # Algorithm
//!
//! Shared substrings are enumerated as *maximal matching pairs* (matches
//! that cannot be extended left or right at that occurrence pair) with the
//! classic common-suffix dynamic program, O(|A|·|B|) time and O(|B|) space.
//! The distinct literal sequences of those matches are the candidate
//! features; candidates are then re-scanned to find **all** their
//! appearances (step 4 counts every appearance, not just maximal ones),
//! filtered longest-first by the independence condition, and finally gated
//! by the cut weight.
//!
//! [`KastKernel::features`] materialises that pipeline for inspection;
//! [`KastKernel::raw`] and [`KastKernel::normalized`] run the
//! bit-identical weight-only fast path of [`crate::eval`] (batch callers
//! should hold a [`crate::KastEvaluator`] for explicit scratch reuse and
//! self-kernel memoisation).

use std::collections::HashMap;

use crate::kernel::StringKernel;
use crate::string::{IdString, TokenId};

/// How the cut weight gates a candidate feature.
///
/// The paper's prose ("the aim is to find the substrings … which weight is
/// greater than or equal to the cut weight") does not say which occurrence
/// carries the test when the weights differ per appearance; the variants
/// make the readings explicit. [`CutRule::AllOccurrences`] is the default:
/// it reproduces both the §3.2 worked example and the §4.2 clustering
/// behaviour (including the no-byte-info "increase the cut weight to
/// recover three groups" effect), see EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutRule {
    /// At least one appearance (in either string) weighs ≥ cut — the most
    /// permissive reading.
    AnyOccurrence,
    /// Every appearance (in both strings) weighs ≥ cut.
    #[default]
    AllOccurrences,
    /// The summed appearance weight reaches the cut in *both* strings.
    PerStringSum,
}

/// Which normalisation [`KastKernel::normalized`] applies.
///
/// Eq. (12) of the paper writes the cosine form
/// `k/√(k(A,A)·k(B,B))` and then equates it with the weight product
/// `k/(weight_{w≥n}(A)·weight_{w≥n}(B))`; the two are not the same
/// quantity in general. [`Normalization::Cosine`] (the first form) is the
/// default used throughout the evaluation pipeline — the weight product
/// degenerates whenever a string has no single token reaching the cut
/// weight, which happens routinely at large cuts. The worked example of
/// §3.2 computes the *weight product* (1018/3328 = 0.3059), so the E8
/// reproduction selects [`Normalization::WeightProduct`] explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Divide by `weight_{w≥n}(A)·weight_{w≥n}(B)` — the arithmetic of the
    /// paper's Eq. (13) numeric example.
    WeightProduct,
    /// Divide by `√(k(A,A)·k(B,B))` — the cosine form of Eq. (12).
    #[default]
    Cosine,
}

/// Configuration of the Kast Spectrum Kernel.
///
/// # Examples
///
/// ```
/// use kastio_core::{CutRule, KastOptions, Normalization};
///
/// let opts = KastOptions::with_cut_weight(4);
/// assert_eq!(opts.cut_weight, 4);
/// assert_eq!(opts.cut_rule, CutRule::AllOccurrences);
/// assert_eq!(opts.normalization, Normalization::Cosine);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KastOptions {
    /// The minimum weight a shared substring must reach (§3.2's parameter).
    pub cut_weight: u64,
    /// Which appearances must reach the cut weight.
    pub cut_rule: CutRule,
    /// Normalisation used by [`KastKernel::normalized`].
    pub normalization: Normalization,
}

impl KastOptions {
    /// Paper defaults with the given cut weight.
    pub fn with_cut_weight(cut_weight: u64) -> Self {
        KastOptions {
            cut_weight,
            cut_rule: CutRule::default(),
            normalization: Normalization::default(),
        }
    }
}

impl Default for KastOptions {
    fn default() -> Self {
        KastOptions::with_cut_weight(2)
    }
}

/// One embedding feature shared by a pair of strings.
///
/// Exposed so callers can inspect *why* two patterns are similar
/// (C-INTERMEDIATE); [`KastKernel::raw`] is just the inner product over
/// these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedFeature {
    /// The literal sequence of the substring, as interned token ids.
    pub tokens: Vec<TokenId>,
    /// Start positions of every appearance in the first string.
    pub starts_a: Vec<usize>,
    /// Start positions of every appearance in the second string.
    pub starts_b: Vec<usize>,
    /// Summed appearance weight in the first string.
    pub weight_a: u64,
    /// Summed appearance weight in the second string.
    pub weight_b: u64,
}

impl SharedFeature {
    /// Length of the shared substring in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the feature is empty (never produced by the kernel).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The Kast Spectrum Kernel.
///
/// # Examples
///
/// Reproducing the flavour of the paper's worked example (two strings with
/// some shared runs):
///
/// ```
/// use kastio_core::{KastKernel, KastOptions, StringKernel, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
///
/// fn sym(name: &str, w: u64) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), w)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("x", 6), sym("y", 6), sym("z", 7)].into_iter().collect();
/// let b: WeightedString = [sym("x", 5), sym("y", 6), sym("z", 6)].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
///
/// let kernel = KastKernel::new(KastOptions::with_cut_weight(4));
/// assert_eq!(kernel.raw(&ia, &ib), 19.0 * 17.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KastKernel {
    opts: KastOptions,
}

impl KastKernel {
    /// Creates a kernel with the given options.
    pub fn new(opts: KastOptions) -> Self {
        KastKernel { opts }
    }

    /// The kernel's configuration.
    pub fn options(&self) -> &KastOptions {
        &self.opts
    }

    /// Computes the shared features of two strings under the kernel's
    /// options (the embedding of §3.2 made inspectable).
    pub fn features(&self, a: &IdString, b: &IdString) -> Vec<SharedFeature> {
        let candidates = maximal_shared_substrings(a, b);
        let with_occurrences = collect_occurrences(candidates, a, b);
        let independent = independence_filter(with_occurrences);
        self.apply_cut(independent, a, b)
    }

    fn apply_cut(
        &self,
        features: Vec<RawFeature>,
        a: &IdString,
        b: &IdString,
    ) -> Vec<SharedFeature> {
        let cut = self.opts.cut_weight;
        let mut out = Vec::new();
        for f in features {
            let occ_weights_a: Vec<u64> =
                f.starts_a.iter().map(|&s| a.range_weight(s, f.tokens.len())).collect();
            let occ_weights_b: Vec<u64> =
                f.starts_b.iter().map(|&s| b.range_weight(s, f.tokens.len())).collect();
            let weight_a: u64 = occ_weights_a.iter().sum();
            let weight_b: u64 = occ_weights_b.iter().sum();
            let passes = match self.opts.cut_rule {
                CutRule::AnyOccurrence => {
                    occ_weights_a.iter().chain(occ_weights_b.iter()).any(|&w| w >= cut)
                }
                CutRule::AllOccurrences => {
                    occ_weights_a.iter().chain(occ_weights_b.iter()).all(|&w| w >= cut)
                }
                CutRule::PerStringSum => weight_a >= cut && weight_b >= cut,
            };
            if passes {
                out.push(SharedFeature {
                    tokens: f.tokens,
                    starts_a: f.starts_a,
                    starts_b: f.starts_b,
                    weight_a,
                    weight_b,
                });
            }
        }
        out
    }
}

/// Reference implementations of the naive, feature-materialising kernel
/// pipeline, retained as the oracle the optimized evaluator is checked
/// against (see the `kast_evaluator_is_bit_identical_to_reference`
/// property test). Enable the `reference` feature to use them outside
/// tests.
#[cfg(any(test, feature = "reference"))]
impl KastKernel {
    /// [`KastKernel::raw`] computed by the naive pipeline: materialise
    /// every [`SharedFeature`] via [`KastKernel::features`], then take the
    /// inner product.
    pub fn raw_reference(&self, a: &IdString, b: &IdString) -> f64 {
        self.features(a, b).iter().map(|f| f.weight_a as f64 * f.weight_b as f64).sum()
    }

    /// [`KastKernel::normalized`] computed by the naive pipeline,
    /// including naive (rescan) `weight_{w≥n}` sums.
    pub fn normalized_reference(&self, a: &IdString, b: &IdString) -> f64 {
        match self.opts.normalization {
            Normalization::Cosine => {
                let kab = self.raw_reference(a, b);
                if kab == 0.0 {
                    return 0.0;
                }
                let kaa = self.raw_reference(a, a);
                let kbb = self.raw_reference(b, b);
                if kaa <= 0.0 || kbb <= 0.0 {
                    0.0
                } else {
                    kab / (kaa * kbb).sqrt()
                }
            }
            Normalization::WeightProduct => {
                let naive_mass = |s: &IdString| -> u64 {
                    s.weights().iter().filter(|&&w| w >= self.opts.cut_weight).sum()
                };
                let denom = naive_mass(a) as f64 * naive_mass(b) as f64;
                if denom <= 0.0 {
                    0.0
                } else {
                    self.raw_reference(a, b) / denom
                }
            }
        }
    }
}

impl StringKernel for KastKernel {
    fn name(&self) -> &'static str {
        "kast"
    }

    /// The weight-only fast path: evaluated through the zero-allocation
    /// core of [`crate::eval`] (via a per-thread scratch), bit-identical
    /// to the naive [`KastKernel::features`]-based inner product.
    fn raw(&self, a: &IdString, b: &IdString) -> f64 {
        crate::eval::with_thread_scratch(|scratch| {
            crate::eval::raw_with_scratch(&self.opts, scratch, a, b)
        })
    }

    fn normalized(&self, a: &IdString, b: &IdString) -> f64 {
        crate::eval::with_thread_scratch(|scratch| {
            crate::eval::normalized_with_raw(&self.opts, a, b, |x, y| {
                crate::eval::raw_with_scratch(&self.opts, scratch, x, y)
            })
        })
    }

    /// The Kast kernel respects its configured [`Normalization`]: under
    /// [`Normalization::Cosine`] the supplied self-kernels replace the
    /// two `raw(a, a)`/`raw(b, b)` evaluations; under
    /// [`Normalization::WeightProduct`] they are not part of the formula
    /// and are ignored.
    fn normalized_with_self(&self, a: &IdString, b: &IdString, kaa: f64, kbb: f64) -> f64 {
        let kab = self.raw(a, b);
        match self.opts.normalization {
            Normalization::Cosine => crate::eval::normalized_cosine(kab, kaa, kbb),
            Normalization::WeightProduct => {
                crate::eval::normalized_weight_product(&self.opts, a, b, kab)
            }
        }
    }
}

struct RawFeature {
    tokens: Vec<TokenId>,
    starts_a: Vec<usize>,
    starts_b: Vec<usize>,
}

/// Enumerates the distinct literal sequences of all maximal matching pairs
/// between `a` and `b` (MEMs), via the common-suffix DP.
fn maximal_shared_substrings(a: &IdString, b: &IdString) -> Vec<Vec<TokenId>> {
    let (xa, xb) = (a.ids(), b.ids());
    let (n, m) = (xa.len(), xb.len());
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let mut prev = vec![0usize; m];
    let mut curr = vec![0usize; m];
    let mut out: Vec<Vec<TokenId>> = Vec::new();
    for i in 0..n {
        for j in 0..m {
            if xa[i] == xb[j] {
                let l = if i > 0 && j > 0 { prev[j - 1] + 1 } else { 1 };
                curr[j] = l;
                // Right-maximal: the match cannot be extended past (i, j).
                let extendable = i + 1 < n && j + 1 < m && xa[i + 1] == xb[j + 1];
                if !extendable {
                    out.push(xa[i + 1 - l..=i].to_vec());
                }
            } else {
                curr[j] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    // Deduplicate by literal sequence, keeping first-seen order.
    let mut dedup: HashMap<Vec<TokenId>, ()> = HashMap::new();
    out.retain(|s| dedup.insert(s.clone(), ()).is_none());
    out
}

/// Finds every appearance (overlaps included) of each candidate in both
/// strings.
fn collect_occurrences(
    candidates: Vec<Vec<TokenId>>,
    a: &IdString,
    b: &IdString,
) -> Vec<RawFeature> {
    candidates
        .into_iter()
        .map(|tokens| {
            let starts_a = find_all(a.ids(), &tokens);
            let starts_b = find_all(b.ids(), &tokens);
            RawFeature { tokens, starts_a, starts_b }
        })
        .collect()
}

fn find_all(haystack: &[TokenId], needle: &[TokenId]) -> Vec<usize> {
    let mut out = Vec::new();
    if needle.is_empty() || haystack.len() < needle.len() {
        return out;
    }
    for s in 0..=haystack.len() - needle.len() {
        if &haystack[s..s + needle.len()] == needle {
            out.push(s);
        }
    }
    out
}

/// Applies the paper's independence condition: processing candidates
/// longest-first, keep a candidate only if at least one of its appearances
/// (in either string) is not strictly contained inside an appearance of an
/// already-kept longer candidate.
fn independence_filter(mut features: Vec<RawFeature>) -> Vec<RawFeature> {
    features.sort_by_key(|f| std::cmp::Reverse(f.tokens.len()));
    // (start, end, len) of kept appearances, per string.
    let mut kept_a: Vec<(usize, usize, usize)> = Vec::new();
    let mut kept_b: Vec<(usize, usize, usize)> = Vec::new();
    let mut out = Vec::new();
    let mut staged_a: Vec<(usize, usize, usize)> = Vec::new();
    let mut staged_b: Vec<(usize, usize, usize)> = Vec::new();
    let mut current_len = usize::MAX;

    for f in features {
        let len = f.tokens.len();
        if len < current_len {
            // Entering a shorter length group: commit the staged intervals
            // so equal-length candidates never suppress each other.
            kept_a.append(&mut staged_a);
            kept_b.append(&mut staged_b);
            current_len = len;
        }
        let contained = |intervals: &[(usize, usize, usize)], s: usize| {
            intervals.iter().any(|&(ks, ke, kl)| kl > len && ks <= s && s + len <= ke)
        };
        let independent_a = f.starts_a.iter().any(|&s| !contained(&kept_a, s));
        let independent_b = f.starts_b.iter().any(|&s| !contained(&kept_b, s));
        if independent_a || independent_b {
            for &s in &f.starts_a {
                staged_a.push((s, s + len, len));
            }
            for &s in &f.starts_b {
                staged_b.push((s, s + len, len));
            }
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::TokenInterner;
    use crate::token::{TokenLiteral, WeightedToken};
    use crate::WeightedString;

    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }

    fn intern_pair(a: &[WeightedToken], b: &[WeightedToken]) -> (IdString, IdString) {
        let mut interner = TokenInterner::new();
        let sa: WeightedString = a.iter().cloned().collect();
        let sb: WeightedString = b.iter().cloned().collect();
        (interner.intern_string(&sa), interner.intern_string(&sb))
    }

    /// The §3.2 worked example, reconstructed so every number of the paper
    /// falls out: features {19,13,15}·{35,11,14} → 1018; weight_{w≥4} 64
    /// and 52 → 1018/3328 = 0.3059.
    fn paper_example() -> (IdString, IdString) {
        let a = vec![
            sym("x", 6),
            sym("y", 6),
            sym("z", 7),
            sym("fa1", 1),
            sym("u", 3),
            sym("v", 4),
            sym("fa2", 1),
            sym("u", 2),
            sym("v", 4),
            sym("fa3", 1),
            sym("w1", 2),
            sym("w2", 4),
            sym("fa4", 1),
            sym("w1", 4),
            sym("w2", 5),
            sym("fa5", 12),
            sym("fa6", 12),
        ];
        let b = vec![
            sym("x", 5),
            sym("y", 6),
            sym("z", 6),
            sym("gb1", 1),
            sym("x", 6),
            sym("y", 6),
            sym("z", 6),
            sym("gb2", 1),
            sym("u", 2),
            sym("v", 4),
            sym("gb3", 1),
            sym("u", 1),
            sym("v", 4),
            sym("gb4", 1),
            sym("w1", 3),
            sym("w2", 5),
            sym("gb5", 1),
            sym("w1", 2),
            sym("w2", 4),
        ];
        intern_pair(&a, &b)
    }

    #[test]
    fn worked_example_feature_vectors() {
        let (a, b) = paper_example();
        let kernel = KastKernel::new(KastOptions::with_cut_weight(4));
        let mut feats = kernel.features(&a, &b);
        feats.sort_by_key(|f| std::cmp::Reverse(f.len()));
        assert_eq!(feats.len(), 3);
        // S1 = x y z
        assert_eq!(feats[0].len(), 3);
        assert_eq!((feats[0].weight_a, feats[0].weight_b), (19, 35));
        assert_eq!(feats[0].starts_a, vec![0]);
        assert_eq!(feats[0].starts_b, vec![0, 4]);
        // S2/S3 both have length 2.
        let s2 = feats.iter().find(|f| f.weight_a == 13).expect("S2 present");
        assert_eq!(s2.weight_b, 11);
        let s3 = feats.iter().find(|f| f.weight_a == 15).expect("S3 present");
        assert_eq!(s3.weight_b, 14);
    }

    #[test]
    fn worked_example_kernel_values() {
        let (a, b) = paper_example();
        // Eq. (13) of the paper normalises by the weight product.
        let kernel = KastKernel::new(KastOptions {
            normalization: Normalization::WeightProduct,
            ..KastOptions::with_cut_weight(4)
        });
        assert_eq!(kernel.raw(&a, &b), 1018.0);
        assert_eq!(a.weight_at_least(4), 64);
        assert_eq!(b.weight_at_least(4), 52);
        let norm = kernel.normalized(&a, &b);
        assert!((norm - 1018.0 / 3328.0).abs() < 1e-12);
        assert!((norm - 0.3059).abs() < 1e-4, "paper quotes 0.3059, got {norm}");
    }

    #[test]
    fn worked_example_survives_any_occurrence_rule() {
        let (a, b) = paper_example();
        let kernel = KastKernel::new(KastOptions {
            cut_weight: 4,
            cut_rule: CutRule::AnyOccurrence,
            normalization: Normalization::WeightProduct,
        });
        assert_eq!(kernel.raw(&a, &b), 1018.0, "the permissive rule agrees here");
    }

    #[test]
    fn high_cut_weight_filters_everything() {
        let (a, b) = paper_example();
        let kernel = KastKernel::new(KastOptions::with_cut_weight(20));
        assert_eq!(kernel.raw(&a, &b), 0.0, "heaviest appearance weighs 19");
    }

    #[test]
    fn kernel_is_symmetric() {
        let (a, b) = paper_example();
        let kernel = KastKernel::new(KastOptions::with_cut_weight(4));
        assert_eq!(kernel.raw(&a, &b), kernel.raw(&b, &a));
        assert_eq!(kernel.normalized(&a, &b), kernel.normalized(&b, &a));
    }

    #[test]
    fn disjoint_strings_have_zero_kernel() {
        let (a, b) = intern_pair(&[sym("p", 5), sym("q", 5)], &[sym("r", 5), sym("s", 5)]);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
        assert_eq!(kernel.raw(&a, &b), 0.0);
        assert_eq!(kernel.normalized(&a, &b), 0.0);
    }

    #[test]
    fn empty_strings_are_handled() {
        let (a, b) = intern_pair(&[], &[sym("p", 3)]);
        let kernel = KastKernel::default();
        assert_eq!(kernel.raw(&a, &b), 0.0);
        assert_eq!(kernel.normalized(&a, &a), 0.0);
    }

    #[test]
    fn identical_strings_weight_product_normalisation() {
        let toks = [sym("p", 4), sym("q", 6), sym("r", 8)];
        let (a, b) = intern_pair(&toks, &toks);
        let kernel = KastKernel::new(KastOptions {
            normalization: Normalization::WeightProduct,
            ..KastOptions::with_cut_weight(2)
        });
        // Single feature: the whole string, weight 18 on both sides.
        assert_eq!(kernel.raw(&a, &b), 18.0 * 18.0);
        assert_eq!(kernel.normalized(&a, &b), 1.0);
    }

    #[test]
    fn cosine_normalisation_is_default_and_one_on_identical_strings() {
        let toks = [sym("p", 4), sym("q", 6)];
        let (a, b) = intern_pair(&toks, &toks);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
        assert_eq!(kernel.options().normalization, Normalization::Cosine);
        assert!((kernel.normalized(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_token_runs_collapse_to_one_feature() {
        // a = t^5, b = t^3 → only t^3 is an independent shared substring.
        let a: Vec<WeightedToken> = (0..5).map(|_| sym("t", 2)).collect();
        let b: Vec<WeightedToken> = (0..3).map(|_| sym("t", 2)).collect();
        let (ia, ib) = intern_pair(&a, &b);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
        let feats = kernel.features(&ia, &ib);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].len(), 3);
        // Appearances in a: starts 0,1,2 → 3 × weight 6 = 18; in b: 6.
        assert_eq!(feats[0].weight_a, 18);
        assert_eq!(feats[0].weight_b, 6);
    }

    #[test]
    fn independent_shorter_match_is_kept() {
        // "p q r" shared; "q" also appears alone in b — so the candidate
        // [q] has an independent appearance and must be kept.
        let a = [sym("p", 2), sym("q", 2), sym("r", 2)];
        let b = [sym("p", 2), sym("q", 2), sym("r", 2), sym("zz", 1), sym("q", 9)];
        let (ia, ib) = intern_pair(&a, &b);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
        let feats = kernel.features(&ia, &ib);
        let lens: Vec<usize> = feats.iter().map(|f| f.len()).collect();
        assert!(lens.contains(&3));
        assert!(lens.contains(&1), "independent [q] appearance must survive");
        let q = feats.iter().find(|f| f.len() == 1).unwrap();
        // All appearances count once kept: q appears at a[1] (2) and b[1], b[4] (2+9).
        assert_eq!(q.weight_a, 2);
        assert_eq!(q.weight_b, 11);
    }

    #[test]
    fn contained_match_is_dropped() {
        // "p q" shared twice via the longer "p q r"; the [p q] candidate's
        // appearances are all inside "p q r" appearances, so it is dropped.
        let a = [sym("p", 2), sym("q", 2), sym("r", 2)];
        let b = [sym("p", 3), sym("q", 3), sym("r", 3)];
        let (ia, ib) = intern_pair(&a, &b);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
        let feats = kernel.features(&ia, &ib);
        assert_eq!(feats.len(), 1, "only the maximal match survives");
        assert_eq!(feats[0].len(), 3);
    }

    #[test]
    fn per_string_sum_rule() {
        // Feature appears once per string with weight 3 — AnyOccurrence at
        // cut 3 passes, PerStringSum at cut 4 fails, at cut 3 passes.
        let a = [sym("p", 3)];
        let b = [sym("p", 3)];
        let (ia, ib) = intern_pair(&a, &b);
        let mk = |rule, cut| {
            KastKernel::new(KastOptions {
                cut_weight: cut,
                cut_rule: rule,
                normalization: Normalization::WeightProduct,
            })
        };
        assert_eq!(mk(CutRule::AnyOccurrence, 3).raw(&ia, &ib), 9.0);
        assert_eq!(mk(CutRule::PerStringSum, 4).raw(&ia, &ib), 0.0);
        assert_eq!(mk(CutRule::PerStringSum, 3).raw(&ia, &ib), 9.0);
        assert_eq!(mk(CutRule::AllOccurrences, 4).raw(&ia, &ib), 0.0);
    }

    #[test]
    fn weight_differences_do_not_affect_matching() {
        let a = [sym("p", 1), sym("q", 100)];
        let b = [sym("p", 50), sym("q", 2)];
        let (ia, ib) = intern_pair(&a, &b);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
        let feats = kernel.features(&ia, &ib);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].len(), 2, "matching ignores weights entirely");
        assert_eq!(feats[0].weight_a, 101);
        assert_eq!(feats[0].weight_b, 52);
    }
}
