//! Serialising *arbitrary* trees to weighted strings (§6 future work).
//!
//! "Due to the fact that the proposed string representation is independent
//! from the domain … Future efforts of this project will focus on the
//! comparison of the intermediate representation delivered by the LLVM
//! Compiler Infrastructure." This module provides the generic hook: any
//! tree implementing [`WeightedTree`] flattens to the same token stream
//! (pre-order + `[LEVEL_UP]`) the I/O pipeline produces, so every kernel
//! in the workspace applies unchanged. A toy expression AST ([`Expr`])
//! demonstrates the mechanism and backs the `ast_compare` example.

use crate::string::WeightedString;
use crate::token::{TokenLiteral, WeightedToken};

/// A tree whose nodes carry a label and a weight.
///
/// Implement this for your own IR/AST node type and call
/// [`weighted_string_of_tree`] to obtain a kernel-comparable string.
pub trait WeightedTree {
    /// The label of this node (becomes a `Sym` token literal).
    fn label(&self) -> String;

    /// The weight of this node (defaults to 1 in most IRs; use e.g.
    /// instruction counts or loop trip counts when known).
    fn weight(&self) -> u64 {
        1
    }

    /// The children of this node, left to right.
    fn children(&self) -> Vec<&Self>;
}

/// Flattens any [`WeightedTree`] with the paper's pre-order +
/// `[LEVEL_UP]` scheme.
///
/// # Examples
///
/// ```
/// use kastio_core::ast::{weighted_string_of_tree, Expr};
///
/// let e = Expr::add(Expr::mul(Expr::num(2), Expr::num(3)), Expr::num(1));
/// let s = weighted_string_of_tree(&e);
/// assert_eq!(
///     s.to_string(),
///     "<add>x1 <mul>x1 <num>x1 <num>x1 [LEVEL_UP]x1 <num>x1",
/// );
/// ```
pub fn weighted_string_of_tree<T: WeightedTree + ?Sized>(root: &T) -> WeightedString {
    let mut nodes: Vec<(u32, String, u64)> = Vec::new();
    collect(root, 0, &mut nodes);
    let mut out = WeightedString::new();
    let mut prev_depth: Option<u32> = None;
    for (depth, label, weight) in nodes {
        if let Some(prev) = prev_depth {
            if depth < prev {
                out.push(WeightedToken::new(TokenLiteral::LevelUp, (prev - depth) as u64));
            }
        }
        prev_depth = Some(depth);
        out.push(WeightedToken::new(TokenLiteral::Sym(label), weight));
    }
    out
}

fn collect<T: WeightedTree + ?Sized>(node: &T, depth: u32, out: &mut Vec<(u32, String, u64)>) {
    out.push((depth, node.label(), node.weight()));
    for child in node.children() {
        collect(child, depth + 1, out);
    }
}

/// A toy arithmetic-expression AST used by the examples and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    op: String,
    args: Vec<Expr>,
}

impl Expr {
    /// A numeric leaf (all numbers share the label `num`, mirroring how an
    /// IR abstracts away constants).
    pub fn num(_value: i64) -> Expr {
        Expr { op: "num".to_string(), args: Vec::new() }
    }

    /// A named variable leaf.
    pub fn var(name: &str) -> Expr {
        Expr { op: format!("var:{name}"), args: Vec::new() }
    }

    /// An addition node.
    #[allow(clippy::should_implement_trait)] // constructor named after the AST node, not an operator
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr { op: "add".to_string(), args: vec![lhs, rhs] }
    }

    /// A multiplication node.
    #[allow(clippy::should_implement_trait)] // constructor named after the AST node, not an operator
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr { op: "mul".to_string(), args: vec![lhs, rhs] }
    }

    /// A call node with any number of arguments.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr { op: format!("call:{name}"), args }
    }
}

impl WeightedTree for Expr {
    fn label(&self) -> String {
        self.op.clone()
    }

    fn children(&self) -> Vec<&Self> {
        self.args.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kast::{KastKernel, KastOptions};
    use crate::kernel::StringKernel;
    use crate::string::TokenInterner;

    #[test]
    fn leaf_is_single_token() {
        let s = weighted_string_of_tree(&Expr::num(7));
        assert_eq!(s.to_string(), "<num>x1");
    }

    #[test]
    fn level_up_counts_jumps() {
        // add(mul(num, num), num): after the deep nums we jump two levels
        // before… actually the rhs num is a direct child of add → 1 jump.
        let e = Expr::add(Expr::mul(Expr::num(1), Expr::num(2)), Expr::num(3));
        let s = weighted_string_of_tree(&e);
        assert_eq!(s.to_string(), "<add>x1 <mul>x1 <num>x1 <num>x1 [LEVEL_UP]x1 <num>x1");
    }

    #[test]
    fn similar_expressions_score_higher_than_dissimilar() {
        let mut interner = TokenInterner::new();
        let e1 = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::num(2)));
        let e2 = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::num(9)));
        let e3 = Expr::call("sqrt", vec![Expr::var("z")]);
        let s1 = interner.intern_string(&weighted_string_of_tree(&e1));
        let s2 = interner.intern_string(&weighted_string_of_tree(&e2));
        let s3 = interner.intern_string(&weighted_string_of_tree(&e3));
        let k = KastKernel::new(KastOptions::with_cut_weight(1));
        assert!(k.normalized(&s1, &s2) > k.normalized(&s1, &s3));
    }
}
