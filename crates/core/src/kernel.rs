//! The [`StringKernel`] trait shared by the Kast kernel and all baselines.

use crate::string::IdString;

/// A kernel function over interned weighted strings.
///
/// Implementations compute a similarity value from the pairwise structure
/// of two [`IdString`]s. The default [`StringKernel::normalized`] applies
/// cosine normalisation `k(a,b)/√(k(a,a)·k(b,b))`; kernels with a
/// domain-specific normalisation (the Kast kernel uses the paper's weight
/// product, Eq. 12) override it.
///
/// # Examples
///
/// ```
/// use kastio_core::{KastKernel, KastOptions, StringKernel, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
///
/// let mut interner = TokenInterner::new();
/// let s: WeightedString =
///     [WeightedToken::new(TokenLiteral::Sym("a".into()), 5)].into_iter().collect();
/// let ids = interner.intern_string(&s);
/// let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
/// assert!(kernel.normalized(&ids, &ids) > 0.0);
/// ```
pub trait StringKernel {
    /// Short human-readable kernel name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// The raw (unnormalised) kernel value.
    fn raw(&self, a: &IdString, b: &IdString) -> f64;

    /// The normalised kernel value.
    ///
    /// Defaults to cosine normalisation `k(a,b)/√(k(a,a)·k(b,b))`; returns
    /// 0 when either self-similarity vanishes (e.g. an empty string). For
    /// true inner-product kernels (the spectrum family) the result lies in
    /// `[0, 1]`; for the Kast kernel it may exceed 1 because the feature
    /// space is pair-dependent — the reason §4.1 of the paper clamps
    /// negative eigenvalues of the similarity matrices before analysis.
    fn normalized(&self, a: &IdString, b: &IdString) -> f64 {
        let kab = self.raw(a, b);
        if kab == 0.0 {
            return 0.0;
        }
        let kaa = self.raw(a, a);
        let kbb = self.raw(b, b);
        if kaa <= 0.0 || kbb <= 0.0 {
            return 0.0;
        }
        kab / (kaa * kbb).sqrt()
    }

    /// [`StringKernel::normalized`] with the self-kernels `k(a, a)` and
    /// `k(b, b)` supplied by the caller.
    ///
    /// This is the memoised-diagonal entry point used by Gram-matrix
    /// builders: an `n×n` normalised Gram matrix needs each self-kernel
    /// once (`n` evaluations), not once per pair (`O(n²)`). The default
    /// replicates the default [`StringKernel::normalized`] bit for bit
    /// when given the true self-kernels — including the `k(a, b) == 0`
    /// early-out, which fires *before* the self-kernels are consulted.
    /// Kernels with a domain-specific normalisation override this
    /// consistently with their [`StringKernel::normalized`] (the Kast
    /// kernel ignores the arguments under its weight-product mode, where
    /// self-kernels are not part of the formula).
    ///
    /// Supplying values other than `raw(a, a)` and `raw(b, b)` breaks the
    /// bit-identity contract with [`StringKernel::normalized`].
    fn normalized_with_self(&self, a: &IdString, b: &IdString, kaa: f64, kbb: f64) -> f64 {
        crate::eval::normalized_cosine(self.raw(a, b), kaa, kbb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string::{IdString, TokenId};

    /// A trivial kernel counting shared token multiset mass, to exercise
    /// the default normalisation.
    struct CountKernel;

    impl StringKernel for CountKernel {
        fn name(&self) -> &'static str {
            "count"
        }

        fn raw(&self, a: &IdString, b: &IdString) -> f64 {
            let mut v = 0.0;
            for &x in a.ids() {
                for &y in b.ids() {
                    if x == y {
                        v += 1.0;
                    }
                }
            }
            v
        }
    }

    fn ids(v: &[u32]) -> IdString {
        IdString::from_parts(v.iter().map(|&i| TokenId(i)).collect(), vec![1; v.len()])
    }

    #[test]
    fn default_normalisation_is_cosine() {
        let k = CountKernel;
        let a = ids(&[0, 1]);
        let b = ids(&[0, 2]);
        // raw: 1 shared; self: 2 each → 1/√(2·2) = 0.5
        assert_eq!(k.normalized(&a, &b), 0.5);
        assert_eq!(k.normalized(&a, &a), 1.0);
    }

    #[test]
    fn zero_raw_normalises_to_zero() {
        let k = CountKernel;
        let a = ids(&[0]);
        let b = ids(&[1]);
        assert_eq!(k.normalized(&a, &b), 0.0);
    }

    #[test]
    fn empty_string_normalises_to_zero() {
        let k = CountKernel;
        let a = ids(&[]);
        assert_eq!(k.normalized(&a, &a), 0.0);
    }

    #[test]
    fn normalized_with_true_self_kernels_matches_normalized() {
        let k = CountKernel;
        let pairs = [(ids(&[0, 1]), ids(&[0, 2])), (ids(&[0]), ids(&[1])), (ids(&[]), ids(&[0]))];
        for (a, b) in &pairs {
            let (kaa, kbb) = (k.raw(a, a), k.raw(b, b));
            assert_eq!(
                k.normalized_with_self(a, b, kaa, kbb).to_bits(),
                k.normalized(a, b).to_bits()
            );
        }
    }
}
