//! The compression step: merging runs of related operations.
//!
//! §3.1 defines four transformations over *consecutive* operation leaves of
//! the same block, "performed in the given order", with the whole sequence
//! "repeated once again to capture higher level patterns":
//!
//! 1. same name, same bytes → one node, repetitions accumulate
//!    (a read loop with a fixed record size);
//! 2. same name, different bytes → one node, byte values combine
//!    (a loop reading a 2-byte then a 4-byte field of a struct);
//! 3. different name, same bytes → one node, names combine
//!    (interlaced reads and writes of equal size — a tacit copy);
//! 4. different name, different bytes, one side zero-byte → one node,
//!    names combine, non-zero bytes win (an lseek+write loop).
//!
//! Each merge adds the repetition counts of both sides, so the total mass
//! (number of original operations covered) is invariant — the property the
//! kernels rely on and that the property tests pin down.

use crate::tree::{BlockNode, OpNode, PatternTree};

/// Which of the paper's four rules to apply. Useful for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionRules {
    /// Rule 1: same name, same bytes.
    pub same_name_same_bytes: bool,
    /// Rule 2: same name, different bytes.
    pub same_name_diff_bytes: bool,
    /// Rule 3: different name, same bytes.
    pub diff_name_same_bytes: bool,
    /// Rule 4: different name, different bytes, one side zero.
    pub diff_name_zero_bytes: bool,
}

impl CompressionRules {
    /// All four rules enabled — the paper's configuration.
    pub fn all() -> Self {
        CompressionRules {
            same_name_same_bytes: true,
            same_name_diff_bytes: true,
            diff_name_same_bytes: true,
            diff_name_zero_bytes: true,
        }
    }

    /// Only rule 1 — pure run-length encoding.
    pub fn run_length_only() -> Self {
        CompressionRules {
            same_name_same_bytes: true,
            same_name_diff_bytes: false,
            diff_name_same_bytes: false,
            diff_name_zero_bytes: false,
        }
    }
}

impl Default for CompressionRules {
    fn default() -> Self {
        CompressionRules::all()
    }
}

/// Configuration of the compression step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressOptions {
    /// How many times the rule sequence runs. The paper uses 2 ("the
    /// previous steps are repeated once again").
    pub passes: usize,
    /// Which rules are enabled.
    pub rules: CompressionRules,
}

impl Default for CompressOptions {
    fn default() -> Self {
        CompressOptions { passes: 2, rules: CompressionRules::all() }
    }
}

fn try_merge(a: &OpNode, b: &OpNode, rules: &CompressionRules) -> Option<OpNode> {
    let same_names = a.literal.same_names(&b.literal);
    let same_bytes = a.literal.bytes() == b.literal.bytes();
    let reps = a.reps + b.reps;
    if same_names && same_bytes {
        if rules.same_name_same_bytes {
            return Some(OpNode::with_reps(a.literal.clone(), reps));
        }
        return None;
    }
    if same_names {
        if rules.same_name_diff_bytes {
            let bytes = a.literal.bytes().union(b.literal.bytes());
            return Some(OpNode::with_reps(a.literal.with_bytes(bytes), reps));
        }
        return None;
    }
    if same_bytes {
        if rules.diff_name_same_bytes {
            return Some(OpNode::with_reps(a.literal.combine_names(&b.literal), reps));
        }
        return None;
    }
    if rules.diff_name_zero_bytes {
        let a_zero = a.literal.bytes().is_zero();
        let b_zero = b.literal.bytes().is_zero();
        if a_zero != b_zero {
            let bytes = if a_zero { b.literal.bytes().clone() } else { a.literal.bytes().clone() };
            let combined = a.literal.combine_names(&b.literal).with_bytes(bytes);
            return Some(OpNode::with_reps(combined, reps));
        }
    }
    None
}

/// Exhaustively merges adjacent pairs satisfying `pred` in a left-to-right
/// scan, restarting at the merged node so chains collapse fully.
fn merge_adjacent(ops: &mut Vec<OpNode>, rules: &CompressionRules, rule_filter: u8) {
    let selected = |a: &OpNode, b: &OpNode| -> Option<OpNode> {
        let same_names = a.literal.same_names(&b.literal);
        let same_bytes = a.literal.bytes() == b.literal.bytes();
        let applies = match rule_filter {
            1 => same_names && same_bytes,
            2 => same_names && !same_bytes,
            3 => !same_names && same_bytes,
            4 => {
                !same_names
                    && !same_bytes
                    && (a.literal.bytes().is_zero() != b.literal.bytes().is_zero())
            }
            _ => unreachable!("rule filter out of range"),
        };
        if applies {
            try_merge(a, b, rules)
        } else {
            None
        }
    };
    let mut i = 0;
    while i + 1 < ops.len() {
        if let Some(merged) = selected(&ops[i], &ops[i + 1]) {
            ops[i] = merged;
            ops.remove(i + 1);
            // Stay at i: the merged node may merge with the next one too.
        } else {
            i += 1;
        }
    }
}

/// Compresses one block in place with the given options.
pub fn compress_block(block: &mut BlockNode, opts: &CompressOptions) {
    for _ in 0..opts.passes {
        for rule in 1..=4u8 {
            let enabled = match rule {
                1 => opts.rules.same_name_same_bytes,
                2 => opts.rules.same_name_diff_bytes,
                3 => opts.rules.diff_name_same_bytes,
                _ => opts.rules.diff_name_zero_bytes,
            };
            if enabled {
                merge_adjacent(&mut block.ops, &opts.rules, rule);
            }
        }
    }
}

/// Compresses every block of the tree in place.
///
/// # Examples
///
/// ```
/// use kastio_core::{build_tree, compress_tree, ByteMode, CompressOptions};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 read 8\nh0 read 8\nh0 read 8\nh0 close 0\n")?;
/// let mut tree = build_tree(&trace, ByteMode::Preserve);
/// compress_tree(&mut tree, &CompressOptions::default());
/// assert_eq!(tree.leaf_count(), 1);
/// assert_eq!(tree.mass(), 3); // compression preserves mass
/// # Ok(())
/// # }
/// ```
pub fn compress_tree(tree: &mut PatternTree, opts: &CompressOptions) {
    for handle in &mut tree.handles {
        for block in &mut handle.blocks {
            compress_block(block, opts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{ByteSig, OpLiteral};

    fn leaf(name: &str, bytes: u64) -> OpNode {
        OpNode::new(OpLiteral::new(name, ByteSig::single(bytes)))
    }

    fn block(ops: Vec<OpNode>) -> BlockNode {
        BlockNode { ops }
    }

    fn compressed(ops: Vec<OpNode>) -> Vec<OpNode> {
        let mut b = block(ops);
        compress_block(&mut b, &CompressOptions::default());
        b.ops
    }

    #[test]
    fn rule1_run_length() {
        let out = compressed(vec![leaf("read", 8), leaf("read", 8), leaf("read", 8)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reps, 3);
        assert_eq!(out[0].literal, OpLiteral::new("read", ByteSig::single(8)));
    }

    #[test]
    fn rule2_combines_bytes() {
        // "initializing in a loop an array of C structures compound of a
        // 2-bytes integer and a 4-bytes integer"
        let out = compressed(vec![leaf("read", 2), leaf("read", 4)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reps, 2);
        assert_eq!(out[0].literal.bytes().values(), &[2, 4]);
    }

    #[test]
    fn rule3_combines_names() {
        // "a series of interlaced read and write operations with the same
        // number of bytes might indicate a tacit copy operation"
        let out = compressed(vec![leaf("read", 64), leaf("write", 64)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].literal.name_string(), "read+write");
        assert_eq!(out[0].literal.bytes().values(), &[64]);
    }

    #[test]
    fn rule4_zero_byte_absorption() {
        // "inside a loop an lseek operation moves the pointer … and a write
        // operation records the information there"
        let out = compressed(vec![leaf("lseek", 0), leaf("write", 512)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].literal.name_string(), "lseek+write");
        assert_eq!(out[0].literal.bytes().values(), &[512]);
    }

    #[test]
    fn rule4_requires_exactly_one_zero_side() {
        let mut b = block(vec![leaf("read", 3), leaf("write", 7)]);
        compress_block(&mut b, &CompressOptions::default());
        assert_eq!(b.ops.len(), 2, "no rule applies to 3-byte read vs 7-byte write");
    }

    #[test]
    fn lseek_write_loop_collapses_fully() {
        // A full loop: lseek w lseek w lseek w → after rule 4 the pairs
        // become identical lseek+write[512] nodes, and the second pass's
        // rule 1 run-length encodes them.
        let ops = vec![
            leaf("lseek", 0),
            leaf("write", 512),
            leaf("lseek", 0),
            leaf("write", 512),
            leaf("lseek", 0),
            leaf("write", 512),
        ];
        let out = compressed(ops);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reps, 6);
        assert_eq!(out[0].literal.name_string(), "lseek+write");
    }

    #[test]
    fn second_pass_captures_higher_level_patterns() {
        // read[2] read[4] read[2] read[4]: pass 1 rule 2 merges neighbours
        // into read[2|4] nodes; rule 1 within the same pass then collapses
        // the two identical combined nodes.
        let ops = vec![leaf("read", 2), leaf("read", 4), leaf("read", 2), leaf("read", 4)];
        let out = compressed(ops);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reps, 4);
        assert_eq!(out[0].literal.bytes().values(), &[2, 4]);
    }

    #[test]
    fn mass_is_preserved() {
        let ops = vec![
            leaf("read", 2),
            leaf("read", 2),
            leaf("write", 2),
            leaf("lseek", 0),
            leaf("write", 8),
            leaf("read", 5),
        ];
        let before: u64 = ops.iter().map(|o| o.reps).sum();
        let out = compressed(ops);
        let after: u64 = out.iter().map(|o| o.reps).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn disabled_rules_do_nothing() {
        let opts = CompressOptions { passes: 2, rules: CompressionRules::run_length_only() };
        let mut b = block(vec![leaf("read", 2), leaf("read", 4)]);
        compress_block(&mut b, &opts);
        assert_eq!(b.ops.len(), 2, "rule 2 disabled, different bytes stay split");
    }

    #[test]
    fn empty_and_singleton_blocks_are_stable() {
        let mut b = block(vec![]);
        compress_block(&mut b, &CompressOptions::default());
        assert!(b.ops.is_empty());
        let mut b = block(vec![leaf("read", 1)]);
        compress_block(&mut b, &CompressOptions::default());
        assert_eq!(b.ops.len(), 1);
        assert_eq!(b.ops[0].reps, 1);
    }

    #[test]
    fn zero_passes_is_identity() {
        let opts = CompressOptions { passes: 0, rules: CompressionRules::all() };
        let mut b = block(vec![leaf("read", 8), leaf("read", 8)]);
        compress_block(&mut b, &opts);
        assert_eq!(b.ops.len(), 2);
    }

    #[test]
    fn rules_apply_in_paper_order() {
        // rule 1 must fire before rule 3 gets a chance: write write read
        // (all 8 bytes) → rule 1 makes write(x2), then rule 3 combines with
        // read into read+write(x3).
        let out = compressed(vec![leaf("write", 8), leaf("write", 8), leaf("read", 8)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].literal.name_string(), "read+write");
        assert_eq!(out[0].reps, 3);
    }
}
