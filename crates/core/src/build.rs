//! Stage one of the conversion: trace → pattern tree.
//!
//! "Operations in the I/O access pattern are registered chronologically;
//! with several file handles acting at the same time it is not always
//! possible that all the operations belonging to the same file handle could
//! have been written contiguously. For that reason the patterns are first
//! converted into trees." (§3.1)

use kastio_trace::{OpKind, Trace};

use crate::token::{ByteSig, OpLiteral};
use crate::tree::{BlockNode, HandleNode, OpNode, PatternTree};

/// Whether the string representation keeps or ignores byte information.
///
/// §3.1: "The proposed string representation can either use or ignore such
/// byte information (ignoring is made by assuming all byte values are
/// zero), which means that two different type of strings can be generated
/// from a single I/O access pattern."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ByteMode {
    /// Keep the per-operation byte counts.
    #[default]
    Preserve,
    /// Force all byte values to zero.
    Ignore,
}

impl ByteMode {
    fn bytes_of(self, bytes: u64) -> u64 {
        match self {
            ByteMode::Preserve => bytes,
            ByteMode::Ignore => 0,
        }
    }
}

/// Builds the (uncompressed) pattern tree of a trace.
///
/// * Negligible operations are dropped.
/// * Handles appear in order of first appearance; each handle's operations
///   keep their chronological order.
/// * `open` starts a new block, `close` ends it; neither becomes a leaf.
///   Operations outside any open…close span (truncated traces) are placed
///   in an implicit block so no information is lost.
/// * Memory addresses are ignored entirely (they are not even part of the
///   trace model), as the paper prescribes.
///
/// # Examples
///
/// ```
/// use kastio_core::{build_tree, ByteMode};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace(
///     "h0 open 0\nh0 fileno 0\nh0 write 64\nh1 open 0\nh1 read 8\nh1 close 0\nh0 close 0\n",
/// )?;
/// let tree = build_tree(&trace, ByteMode::Preserve);
/// assert_eq!(tree.handles.len(), 2);
/// assert_eq!(tree.mass(), 2); // fileno dropped, open/close absorbed
/// # Ok(())
/// # }
/// ```
pub fn build_tree(trace: &Trace, mode: ByteMode) -> PatternTree {
    let mut tree = PatternTree::new();
    // index of the handle in tree.handles, parallel "currently open" flag
    let mut open_block: Vec<bool> = Vec::new();

    for op in trace {
        if op.kind.is_negligible() {
            continue;
        }
        let idx = match tree.handles.iter().position(|h| h.handle == op.handle) {
            Some(i) => i,
            None => {
                tree.handles.push(HandleNode::new(op.handle));
                open_block.push(false);
                tree.handles.len() - 1
            }
        };
        match op.kind {
            OpKind::Open => {
                tree.handles[idx].blocks.push(BlockNode::new());
                open_block[idx] = true;
            }
            OpKind::Close => {
                open_block[idx] = false;
            }
            ref kind => {
                if !open_block[idx] {
                    // Implicit block for operations outside open…close.
                    tree.handles[idx].blocks.push(BlockNode::new());
                    open_block[idx] = true;
                }
                let bytes = ByteSig::single(mode.bytes_of(op.bytes));
                let literal = OpLiteral::new(kind.name(), bytes);
                tree.handles[idx]
                    .blocks
                    .last_mut()
                    .expect("a block was just ensured")
                    .ops
                    .push(OpNode::new(literal));
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;

    #[test]
    fn groups_by_handle_in_first_appearance_order() {
        let t =
            parse_trace("h2 open 0\nh0 open 0\nh2 write 1\nh0 read 2\nh0 close 0\nh2 close 0\n")
                .unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        assert_eq!(tree.handles[0].handle.index(), 2);
        assert_eq!(tree.handles[1].handle.index(), 0);
    }

    #[test]
    fn blocks_split_at_open_close() {
        let t = parse_trace(
            "h0 open 0\nh0 write 1\nh0 close 0\nh0 open 0\nh0 write 2\nh0 write 3\nh0 close 0\n",
        )
        .unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        assert_eq!(tree.handles[0].blocks.len(), 2);
        assert_eq!(tree.handles[0].blocks[0].ops.len(), 1);
        assert_eq!(tree.handles[0].blocks[1].ops.len(), 2);
    }

    #[test]
    fn open_close_are_not_leaves() {
        let t = parse_trace("h0 open 0\nh0 close 0\n").unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        assert_eq!(tree.handles[0].blocks.len(), 1);
        assert!(tree.handles[0].blocks[0].ops.is_empty());
        assert_eq!(tree.mass(), 0);
    }

    #[test]
    fn negligible_ops_dropped() {
        let t =
            parse_trace("h0 open 0\nh0 fileno 0\nh0 fscanf 4\nh0 read 8\nh0 close 0\n").unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        assert_eq!(tree.mass(), 1);
    }

    #[test]
    fn orphan_ops_get_implicit_block() {
        let t = parse_trace("h0 write 5\nh0 write 6\n").unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        assert_eq!(tree.handles[0].blocks.len(), 1);
        assert_eq!(tree.mass(), 2);
    }

    #[test]
    fn ops_after_close_open_new_implicit_block() {
        let t = parse_trace("h0 open 0\nh0 write 1\nh0 close 0\nh0 write 9\n").unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        assert_eq!(tree.handles[0].blocks.len(), 2);
    }

    #[test]
    fn byte_mode_ignore_zeroes_everything() {
        let t = parse_trace("h0 open 0\nh0 write 123\nh0 read 456\nh0 close 0\n").unwrap();
        let tree = build_tree(&t, ByteMode::Ignore);
        for h in &tree.handles {
            for b in &h.blocks {
                for op in &b.ops {
                    assert!(op.literal.bytes().is_zero());
                }
            }
        }
        // Names still distinguish the two leaves.
        assert_eq!(tree.leaf_count(), 2);
    }

    #[test]
    fn mass_counts_substantive_ops_only() {
        let t =
            parse_trace("h0 open 0\nh0 lseek 0\nh0 write 7\nh0 fsync 0\nh0 fileno 0\nh0 close 0\n")
                .unwrap();
        let tree = build_tree(&t, ByteMode::Preserve);
        // lseek + write + fsync = 3 leaves; fileno dropped; open/close absorbed.
        assert_eq!(tree.mass(), 3);
    }
}
