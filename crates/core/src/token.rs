//! Weighted tokens: the alphabet of the string representation.
//!
//! §3.1 of the paper: "A token is compound by a literal part and a weight
//! value." Leaf tokens carry the operation name and its byte value(s);
//! structural tokens (`[ROOT]`, `[HANDLE]`, `[BLOCK]`) always weigh 1; the
//! synthetic `[LEVEL_UP]` token weighs the number of levels jumped upward
//! during the pre-order traversal.

use std::fmt;

/// The combined byte signature of an operation token.
///
/// Compression rule 2 merges consecutive operations with the same name but
/// different byte counts: "The new byte value is a combination of both
/// previous byte numbers." We represent the combination as a sorted set of
/// distinct byte values, rendered `8|16`.
///
/// # Examples
///
/// ```
/// use kastio_core::token::ByteSig;
///
/// let a = ByteSig::single(16);
/// let b = ByteSig::single(8);
/// let c = a.union(&b);
/// assert_eq!(c.to_string(), "8|16");
/// assert!(!c.is_zero());
/// assert!(ByteSig::single(0).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSig(Vec<u64>);

impl ByteSig {
    /// Signature of a single byte value.
    pub fn single(bytes: u64) -> Self {
        ByteSig(vec![bytes])
    }

    /// Signature combining several byte values (sorted, deduplicated).
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut v: Vec<u64> = values.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            v.push(0);
        }
        ByteSig(v)
    }

    /// The union of two signatures (compression rule 2).
    pub fn union(&self, other: &ByteSig) -> ByteSig {
        ByteSig::from_values(self.0.iter().chain(other.0.iter()).copied())
    }

    /// Whether the signature is exactly `{0}` — i.e. the operation moved no
    /// bytes. Compression rule 4 keys on this.
    pub fn is_zero(&self) -> bool {
        self.0 == [0]
    }

    /// The distinct byte values, ascending.
    pub fn values(&self) -> &[u64] {
        &self.0
    }
}

impl fmt::Display for ByteSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("|")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// The literal (name + byte signature) of an operation token.
///
/// Compression rules 3 and 4 combine operations with *different names*
/// ("The new operation name is a combination of both previous names", e.g.
/// interlaced reads and writes become a tacit copy). We canonicalise the
/// combination as a sorted set of names rendered `read+write`, so the same
/// mixture always produces the same literal regardless of merge order.
///
/// # Examples
///
/// ```
/// use kastio_core::token::{ByteSig, OpLiteral};
///
/// let r = OpLiteral::new("read", ByteSig::single(8));
/// let w = OpLiteral::new("write", ByteSig::single(8));
/// let combined = r.combine_names(&w);
/// assert_eq!(combined.name_string(), "read+write");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpLiteral {
    names: Vec<String>,
    bytes: ByteSig,
}

impl OpLiteral {
    /// Creates a literal for a single operation name and byte signature.
    pub fn new(name: &str, bytes: ByteSig) -> Self {
        OpLiteral { names: vec![name.to_string()], bytes }
    }

    /// Creates a literal with several (already combined) names.
    pub fn with_names<I: IntoIterator<Item = String>>(names: I, bytes: ByteSig) -> Self {
        let mut v: Vec<String> = names.into_iter().collect();
        v.sort();
        v.dedup();
        OpLiteral { names: v, bytes }
    }

    /// The sorted, distinct operation names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The byte signature.
    pub fn bytes(&self) -> &ByteSig {
        &self.bytes
    }

    /// The canonical `+`-joined name string.
    pub fn name_string(&self) -> String {
        self.names.join("+")
    }

    /// Whether both literals have exactly the same name set.
    pub fn same_names(&self, other: &OpLiteral) -> bool {
        self.names == other.names
    }

    /// Combines the names of two literals, keeping `self`'s byte signature.
    pub fn combine_names(&self, other: &OpLiteral) -> OpLiteral {
        OpLiteral::with_names(
            self.names.iter().chain(other.names.iter()).cloned(),
            self.bytes.clone(),
        )
    }

    /// Returns the same literal with a different byte signature.
    pub fn with_bytes(&self, bytes: ByteSig) -> OpLiteral {
        OpLiteral { names: self.names.clone(), bytes }
    }
}

impl fmt::Display for OpLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name_string(), self.bytes)
    }
}

/// The literal part of a weighted token.
///
/// # Examples
///
/// ```
/// use kastio_core::token::{ByteSig, OpLiteral, TokenLiteral};
///
/// assert_eq!(TokenLiteral::Root.to_string(), "[ROOT]");
/// assert_eq!(TokenLiteral::LevelUp.to_string(), "[LEVEL_UP]");
/// let op = TokenLiteral::Op(OpLiteral::new("write", ByteSig::single(512)));
/// assert_eq!(op.to_string(), "write[512]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TokenLiteral {
    /// The imaginary root grouping the whole access pattern.
    Root,
    /// An imaginary node grouping all operations of one file handle.
    Handle,
    /// An imaginary node grouping the operations of one open…close span.
    Block,
    /// Synthetic marker for upward moves in the pre-order traversal.
    LevelUp,
    /// An operation leaf.
    Op(OpLiteral),
    /// A generic symbol, used when serialising arbitrary trees (§6 future
    /// work: ASTs / LLVM IR).
    Sym(String),
}

impl fmt::Display for TokenLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenLiteral::Root => f.write_str("[ROOT]"),
            TokenLiteral::Handle => f.write_str("[HANDLE]"),
            TokenLiteral::Block => f.write_str("[BLOCK]"),
            TokenLiteral::LevelUp => f.write_str("[LEVEL_UP]"),
            TokenLiteral::Op(op) => write!(f, "{op}"),
            TokenLiteral::Sym(s) => write!(f, "<{s}>"),
        }
    }
}

/// A token of the weighted string: a literal plus a weight.
///
/// # Examples
///
/// ```
/// use kastio_core::token::{ByteSig, OpLiteral, TokenLiteral, WeightedToken};
///
/// let t = WeightedToken::new(
///     TokenLiteral::Op(OpLiteral::new("read", ByteSig::single(64))),
///     10,
/// );
/// assert_eq!(t.to_string(), "read[64]x10");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WeightedToken {
    /// The literal part (what is matched by the kernels).
    pub literal: TokenLiteral,
    /// The weight (what is summed by the kernels).
    pub weight: u64,
}

impl WeightedToken {
    /// Creates a weighted token.
    pub fn new(literal: TokenLiteral, weight: u64) -> Self {
        WeightedToken { literal, weight }
    }

    /// A structural token (`ROOT`/`HANDLE`/`BLOCK`) of weight 1.
    pub fn structural(literal: TokenLiteral) -> Self {
        WeightedToken { literal, weight: 1 }
    }
}

impl fmt::Display for WeightedToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.literal, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesig_single_and_union() {
        let a = ByteSig::single(4);
        let b = ByteSig::single(2);
        let u = a.union(&b);
        assert_eq!(u.values(), &[2, 4]);
        assert_eq!(u.to_string(), "2|4");
        // Union is idempotent and order-insensitive.
        assert_eq!(u.union(&a), u);
        assert_eq!(b.union(&a), u);
    }

    #[test]
    fn bytesig_from_values_dedups_and_sorts() {
        let s = ByteSig::from_values([16, 4, 16, 8]);
        assert_eq!(s.values(), &[4, 8, 16]);
    }

    #[test]
    fn bytesig_empty_becomes_zero() {
        let s = ByteSig::from_values(std::iter::empty());
        assert!(s.is_zero());
    }

    #[test]
    fn bytesig_zero_detection() {
        assert!(ByteSig::single(0).is_zero());
        assert!(!ByteSig::single(1).is_zero());
        assert!(!ByteSig::from_values([0, 4]).is_zero());
    }

    #[test]
    fn opliteral_combination_is_canonical() {
        let r = OpLiteral::new("read", ByteSig::single(8));
        let w = OpLiteral::new("write", ByteSig::single(8));
        let rw = r.combine_names(&w);
        let wr = w.combine_names(&r);
        assert!(rw.same_names(&wr));
        assert_eq!(rw.name_string(), "read+write");
        // Combining again with one of the members changes nothing.
        assert!(rw.combine_names(&w).same_names(&rw));
    }

    #[test]
    fn opliteral_display() {
        let l = OpLiteral::with_names(
            ["write".to_string(), "lseek".to_string()],
            ByteSig::single(1024),
        );
        assert_eq!(l.to_string(), "lseek+write[1024]");
    }

    #[test]
    fn structural_tokens_weigh_one() {
        assert_eq!(WeightedToken::structural(TokenLiteral::Root).weight, 1);
        assert_eq!(WeightedToken::structural(TokenLiteral::Block).weight, 1);
    }

    #[test]
    fn token_display() {
        let t = WeightedToken::new(TokenLiteral::LevelUp, 2);
        assert_eq!(t.to_string(), "[LEVEL_UP]x2");
        let s = WeightedToken::new(TokenLiteral::Sym("add".to_string()), 1);
        assert_eq!(s.to_string(), "<add>x1");
    }
}
