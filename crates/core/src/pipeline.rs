//! End-to-end convenience: trace → tree → compressed tree → weighted string.

use kastio_trace::Trace;

use crate::build::{build_tree, ByteMode};
use crate::compress::{compress_tree, CompressOptions};
use crate::flatten::flatten_tree;
use crate::string::WeightedString;
use crate::tree::PatternTree;

/// The paper's two-stage conversion pipeline, with knobs.
///
/// # Examples
///
/// ```
/// use kastio_core::{ByteMode, PatternPipeline};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 read 8\nh0 read 8\nh0 close 0\n")?;
/// let with_bytes = PatternPipeline::new(ByteMode::Preserve).string_of_trace(&trace);
/// let without = PatternPipeline::new(ByteMode::Ignore).string_of_trace(&trace);
/// assert_eq!(with_bytes.to_string(), "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 read[8]x2");
/// assert_eq!(without.to_string(), "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 read[0]x2");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternPipeline {
    byte_mode: ByteMode,
    compress: CompressOptions,
}

impl PatternPipeline {
    /// Creates a pipeline with the paper's defaults (two compression
    /// passes, all rules) and the given byte mode.
    pub fn new(byte_mode: ByteMode) -> Self {
        PatternPipeline { byte_mode, compress: CompressOptions::default() }
    }

    /// Overrides the compression options.
    pub fn with_compression(mut self, opts: CompressOptions) -> Self {
        self.compress = opts;
        self
    }

    /// The configured byte mode.
    pub fn byte_mode(&self) -> ByteMode {
        self.byte_mode
    }

    /// Builds the compressed pattern tree of a trace (stage one).
    pub fn tree_of_trace(&self, trace: &Trace) -> PatternTree {
        let mut tree = build_tree(trace, self.byte_mode);
        compress_tree(&mut tree, &self.compress);
        tree
    }

    /// Converts a trace all the way to its weighted string (both stages).
    pub fn string_of_trace(&self, trace: &Trace) -> WeightedString {
        flatten_tree(&self.tree_of_trace(trace))
    }
}

/// One-shot helper: the paper's default conversion for a given byte mode.
///
/// # Examples
///
/// ```
/// use kastio_core::{pattern_string, ByteMode};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 write 64\nh0 close 0\n")?;
/// let s = pattern_string(&trace, ByteMode::Preserve);
/// assert!(s.to_string().contains("write[64]"));
/// # Ok(())
/// # }
/// ```
pub fn pattern_string(trace: &Trace, byte_mode: ByteMode) -> WeightedString {
    PatternPipeline::new(byte_mode).string_of_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressionRules;
    use kastio_trace::parse_trace;

    #[test]
    fn figure1_style_trace() {
        // Mirrors the paper's Figure 1/2 narrative: interleaved handles,
        // loops compressed to repetition counts, structure flattened with
        // level-ups.
        let trace = parse_trace(
            "h0 open 0\n\
             h0 write 100\n\
             h0 write 100\n\
             h0 write 100\n\
             h1 open 0\n\
             h1 lseek 0\n\
             h1 write 8\n\
             h1 lseek 0\n\
             h1 write 8\n\
             h1 close 0\n\
             h0 close 0\n",
        )
        .unwrap();
        let s = PatternPipeline::new(ByteMode::Preserve).string_of_trace(&trace);
        assert_eq!(
            s.to_string(),
            "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 write[100]x3 [LEVEL_UP]x2 \
             [HANDLE]x1 [BLOCK]x1 lseek+write[8]x4"
        );
    }

    #[test]
    fn byte_mode_changes_tokens_not_structure() {
        let trace = parse_trace("h0 open 0\nh0 read 1\nh0 read 2\nh0 close 0\n").unwrap();
        let p = PatternPipeline::new(ByteMode::Preserve).string_of_trace(&trace);
        let q = PatternPipeline::new(ByteMode::Ignore).string_of_trace(&trace);
        assert_eq!(p.len(), q.len());
        assert_eq!(p.total_weight(), q.total_weight());
        assert_ne!(p, q);
    }

    #[test]
    fn custom_compression_options_flow_through() {
        let trace = parse_trace("h0 open 0\nh0 read 1\nh0 read 2\nh0 close 0\n").unwrap();
        let raw = PatternPipeline::new(ByteMode::Preserve)
            .with_compression(CompressOptions { passes: 0, rules: CompressionRules::all() })
            .string_of_trace(&trace);
        assert_eq!(raw.to_string(), "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 read[1]x1 read[2]x1");
    }

    #[test]
    fn empty_trace_yields_root_only() {
        let s = pattern_string(&kastio_trace::Trace::new(), ByteMode::Preserve);
        assert_eq!(s.to_string(), "[ROOT]x1");
    }
}
