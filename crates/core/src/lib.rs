//! The paper's primary contribution: the weighted-string representation of
//! I/O access patterns and the **Kast Spectrum Kernel**.
//!
//! This crate implements §3 of Torres, Kunkel, Dolz, Ludwig — *A Novel
//! String Representation and Kernel Function for the Comparison of I/O
//! Access Patterns* (PaCT 2017):
//!
//! * **Stage one** — trace → pattern tree ([`build_tree`], [`tree`]),
//!   with the four-rule compression step ([`compress_tree`]).
//! * **Stage two** — tree → weighted string ([`flatten_tree`]), pre-order
//!   with `[LEVEL_UP]` distance tokens.
//! * **Kast Spectrum Kernel** ([`KastKernel`]) over interned weighted
//!   strings, with the cut-weight parameter, the independence condition on
//!   shared substrings, and the paper's normalisation.
//! * The domain-independent tree serialiser of the paper's future-work
//!   section ([`ast`]).
//!
//! # Quickstart
//!
//! ```
//! use kastio_core::{pattern_string, ByteMode, KastKernel, KastOptions, StringKernel,
//!                   TokenInterner};
//! use kastio_trace::parse_trace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t1 = parse_trace("h0 open 0\nh0 write 64\nh0 write 64\nh0 close 0\n")?;
//! let t2 = parse_trace("h0 open 0\nh0 write 64\nh0 write 64\nh0 write 64\nh0 close 0\n")?;
//!
//! let mut interner = TokenInterner::new();
//! let a = interner.intern_string(&pattern_string(&t1, ByteMode::Preserve));
//! let b = interner.intern_string(&pattern_string(&t2, ByteMode::Preserve));
//!
//! let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
//! let similarity = kernel.normalized(&a, &b);
//! assert!(similarity > 0.5, "nearly identical patterns score high");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod build;
pub mod compress;
pub mod eval;
pub mod explain;
pub mod flatten;
pub mod kast;
pub mod kernel;
pub mod pipeline;
pub mod string;
pub mod token;
pub mod tree;

pub use build::{build_tree, ByteMode};
pub use compress::{compress_block, compress_tree, CompressOptions, CompressionRules};
pub use eval::{KastEvaluator, KastScratch};
pub use explain::{explain_similarity, SimilarityReport};
pub use flatten::flatten_tree;
pub use kast::{CutRule, KastKernel, KastOptions, Normalization, SharedFeature};
pub use kernel::StringKernel;
pub use pipeline::{pattern_string, PatternPipeline};
pub use string::{IdString, TokenId, TokenInterner, WeightedString};
pub use token::{ByteSig, OpLiteral, TokenLiteral, WeightedToken};
pub use tree::{BlockNode, HandleNode, OpNode, PatternTree};
