//! Property tests for the representation layer: byte-signature algebra,
//! compression fixpoints and tokenizer structure.

use proptest::prelude::*;

use kastio_core::token::{ByteSig, OpLiteral, TokenLiteral, WeightedToken};
use kastio_core::tree::{BlockNode, HandleNode, OpNode, PatternTree};
use kastio_core::{
    compress_block, flatten_tree, CompressOptions, CutRule, KastEvaluator, KastKernel, KastOptions,
    Normalization, StringKernel, TokenInterner, WeightedString,
};

fn arb_bytesig() -> impl Strategy<Value = ByteSig> {
    proptest::collection::vec(0u64..64, 0..5).prop_map(ByteSig::from_values)
}

fn arb_opnode() -> impl Strategy<Value = OpNode> {
    (prop_oneof![Just("read"), Just("write"), Just("lseek"), Just("fsync")], 0u64..6, 1u64..5)
        .prop_map(|(name, bytes, reps)| {
            OpNode::with_reps(OpLiteral::new(name, ByteSig::single(bytes)), reps)
        })
}

fn arb_block() -> impl Strategy<Value = BlockNode> {
    proptest::collection::vec(arb_opnode(), 0..16).prop_map(|ops| BlockNode { ops })
}

fn arb_tree() -> impl Strategy<Value = PatternTree> {
    proptest::collection::vec(proptest::collection::vec(arb_block(), 0..4), 0..4).prop_map(
        |handles| {
            let mut tree = PatternTree::new();
            for (i, blocks) in handles.into_iter().enumerate() {
                let mut h = HandleNode::new(kastio_trace::HandleId::new(i as u32));
                h.blocks = blocks;
                tree.handles.push(h);
            }
            tree
        },
    )
}

fn block_mass(b: &BlockNode) -> u64 {
    b.ops.iter().map(|o| o.reps).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bytesig_union_is_commutative_associative_idempotent(
        a in arb_bytesig(),
        b in arb_bytesig(),
        c in arb_bytesig(),
    ) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        // Values stay sorted and deduplicated.
        let u = a.union(&b);
        prop_assert!(u.values().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn opliteral_combination_is_order_insensitive(
        names in proptest::collection::vec("[a-z]{1,6}", 1..4),
    ) {
        let bytes = ByteSig::single(1);
        let forward = names.iter().skip(1).fold(
            OpLiteral::new(&names[0], bytes.clone()),
            |acc, n| acc.combine_names(&OpLiteral::new(n, bytes.clone())),
        );
        let mut reversed_names = names.clone();
        reversed_names.reverse();
        let backward = reversed_names.iter().skip(1).fold(
            OpLiteral::new(&reversed_names[0], bytes.clone()),
            |acc, n| acc.combine_names(&OpLiteral::new(n, bytes.clone())),
        );
        prop_assert!(forward.same_names(&backward));
        prop_assert_eq!(forward.name_string(), backward.name_string());
    }

    #[test]
    fn compression_reaches_a_fixpoint(block in arb_block()) {
        // Enough passes always reach a state further passes cannot change.
        let mut b = block;
        compress_block(&mut b, &CompressOptions { passes: 8, ..CompressOptions::default() });
        let settled = b.clone();
        compress_block(&mut b, &CompressOptions::default());
        prop_assert_eq!(b, settled, "8 passes must be a fixpoint for ≤16 ops");
    }

    #[test]
    fn compression_mass_and_monotonicity(block in arb_block(), passes in 0usize..5) {
        let before_mass = block_mass(&block);
        let before_len = block.ops.len();
        let mut b = block;
        compress_block(&mut b, &CompressOptions { passes, ..CompressOptions::default() });
        prop_assert_eq!(block_mass(&b), before_mass);
        prop_assert!(b.ops.len() <= before_len);
        // No adjacent pair with identical literals survives a pass.
        if passes > 0 {
            for w in b.ops.windows(2) {
                prop_assert!(
                    w[0].literal != w[1].literal,
                    "adjacent identical literals must have merged"
                );
            }
        }
    }

    #[test]
    fn flatten_structure_is_well_formed(tree in arb_tree()) {
        let s = flatten_tree(&tree);
        let tokens: Vec<&WeightedToken> = s.iter().collect();
        // Starts with ROOT, contains exactly one ROOT.
        prop_assert_eq!(&tokens[0].literal, &TokenLiteral::Root);
        let roots = tokens.iter().filter(|t| t.literal == TokenLiteral::Root).count();
        prop_assert_eq!(roots, 1);
        // HANDLE and BLOCK counts match the tree.
        let handles = tokens.iter().filter(|t| t.literal == TokenLiteral::Handle).count();
        prop_assert_eq!(handles, tree.handles.len());
        let blocks = tokens.iter().filter(|t| t.literal == TokenLiteral::Block).count();
        let tree_blocks: usize = tree.handles.iter().map(|h| h.blocks.len()).sum();
        prop_assert_eq!(blocks, tree_blocks);
        // Level-up weights are in 1..=2 (the tree has 4 levels, and the
        // deepest jump emitted is leaf→handle = 2; root is never returned
        // to because nothing follows it).
        for t in &tokens {
            if t.literal == TokenLiteral::LevelUp {
                prop_assert!((1..=2).contains(&t.weight));
            }
        }
        // Never two consecutive level-ups.
        for w in tokens.windows(2) {
            prop_assert!(
                !(w[0].literal == TokenLiteral::LevelUp && w[1].literal == TokenLiteral::LevelUp)
            );
        }
        // No trailing level-up.
        if let Some(last) = tokens.last() {
            prop_assert!(last.literal != TokenLiteral::LevelUp);
        }
    }

    #[test]
    fn kast_features_do_not_overlap_their_own_contributions(
        tree_a in arb_tree(),
        tree_b in arb_tree(),
    ) {
        // Feature weights must equal the sum over reported appearance
        // positions — i.e. the kernel's bookkeeping is self-consistent.
        let mut interner = TokenInterner::new();
        let a = interner.intern_string(&flatten_tree(&tree_a));
        let b = interner.intern_string(&flatten_tree(&tree_b));
        let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
        for f in kernel.features(&a, &b) {
            let wa: u64 = f.starts_a.iter().map(|&s| a.range_weight(s, f.tokens.len())).sum();
            let wb: u64 = f.starts_b.iter().map(|&s| b.range_weight(s, f.tokens.len())).sum();
            prop_assert_eq!(f.weight_a, wa);
            prop_assert_eq!(f.weight_b, wb);
            // Every reported appearance really matches the literal.
            for &s in &f.starts_a {
                prop_assert_eq!(&a.ids()[s..s + f.tokens.len()], f.tokens.as_slice());
            }
            for &s in &f.starts_b {
                prop_assert_eq!(&b.ids()[s..s + f.tokens.len()], f.tokens.as_slice());
            }
        }
    }

    #[test]
    fn kast_raw_equals_feature_inner_product(
        tree_a in arb_tree(),
        tree_b in arb_tree(),
        cut in 1u64..8,
    ) {
        let mut interner = TokenInterner::new();
        let a = interner.intern_string(&flatten_tree(&tree_a));
        let b = interner.intern_string(&flatten_tree(&tree_b));
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        let from_features: f64 = kernel
            .features(&a, &b)
            .iter()
            .map(|f| f.weight_a as f64 * f.weight_b as f64)
            .sum();
        prop_assert_eq!(kernel.raw(&a, &b), from_features);
    }

    #[test]
    fn kast_evaluator_is_bit_identical_to_reference(
        spec_a in proptest::collection::vec((0u32..6, 1u64..20), 0..40),
        spec_b in proptest::collection::vec((0u32..6, 1u64..20), 0..40),
        cut in 1u64..12,
    ) {
        // Random weighted strings over a small alphabet (so shared
        // substrings are common), every CutRule × Normalization combination:
        // the optimized evaluator must reproduce the retained naive
        // reference pipeline bit for bit. One warm evaluator serves all
        // combinations and directions, so scratch reuse is exercised too.
        let mut interner = TokenInterner::new();
        let to_string = |spec: &[(u32, u64)]| -> WeightedString {
            spec.iter()
                .map(|&(t, w)| WeightedToken::new(TokenLiteral::Sym(format!("t{t}")), w))
                .collect()
        };
        let a = interner.intern_string(&to_string(&spec_a));
        let b = interner.intern_string(&to_string(&spec_b));
        for cut_rule in [CutRule::AnyOccurrence, CutRule::AllOccurrences, CutRule::PerStringSum] {
            for normalization in [Normalization::Cosine, Normalization::WeightProduct] {
                let opts = KastOptions { cut_weight: cut, cut_rule, normalization };
                let kernel = KastKernel::new(opts);
                let mut evaluator = KastEvaluator::new(opts);
                for (x, y) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)] {
                    let want_raw = kernel.raw_reference(x, y);
                    prop_assert_eq!(
                        kernel.raw(x, y).to_bits(),
                        want_raw.to_bits(),
                        "raw drifted from reference ({:?})",
                        opts
                    );
                    prop_assert_eq!(
                        evaluator.raw(x, y).to_bits(),
                        want_raw.to_bits(),
                        "evaluator raw drifted from reference ({:?})",
                        opts
                    );
                    let want_norm = kernel.normalized_reference(x, y);
                    prop_assert_eq!(
                        kernel.normalized(x, y).to_bits(),
                        want_norm.to_bits(),
                        "normalized drifted from reference ({:?})",
                        opts
                    );
                    prop_assert_eq!(
                        evaluator.normalized(x, y).to_bits(),
                        want_norm.to_bits(),
                        "evaluator normalized drifted from reference ({:?})",
                        opts
                    );
                }
                // The memoised-self path must agree with the one-shot path.
                let (kaa, kbb) = (evaluator.self_kernel(&a), evaluator.self_kernel(&b));
                prop_assert_eq!(
                    evaluator.normalized_with_self_kernels(&a, &b, kaa, kbb).to_bits(),
                    kernel.normalized_reference(&a, &b).to_bits(),
                    "memoised self-kernel path drifted from reference ({:?})",
                    opts
                );
                prop_assert_eq!(
                    kernel.normalized_with_self(&a, &b, kaa, kbb).to_bits(),
                    kernel.normalized_reference(&a, &b).to_bits(),
                    "kernel normalized_with_self drifted from reference ({:?})",
                    opts
                );
            }
        }
    }

    #[test]
    fn weight_at_least_matches_manual_filter(
        weights in proptest::collection::vec(1u64..50, 0..30),
        threshold in 1u64..50,
    ) {
        let s: WeightedString = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| WeightedToken::new(TokenLiteral::Sym(format!("t{i}")), w))
            .collect();
        let manual: u64 = weights.iter().filter(|&&w| w >= threshold).sum();
        prop_assert_eq!(s.weight_at_least(threshold), manual);
    }
}
