//! Kernel (Gram) matrices: the similarity matrices of §4.1.

use kastio_core::{IdString, StringKernel};

/// A dense symmetric kernel matrix.
///
/// Stores the full `n×n` grid (the matrices of the paper are 110×110, so
/// compactness is irrelevant and O(1) indexed access wins).
///
/// # Examples
///
/// ```
/// use kastio_kernels::KernelMatrix;
///
/// let m = KernelMatrix::from_fn(2, |i, j| (i + j) as f64);
/// assert_eq!(m.get(0, 1), 1.0);
/// assert_eq!(m.get(1, 0), 1.0);
/// assert!(m.is_symmetric(0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMatrix {
    n: usize,
    values: Vec<f64>,
}

impl KernelMatrix {
    /// A zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        KernelMatrix { n, values: vec![0.0; n * n] }
    }

    /// Builds a symmetric matrix by evaluating `f(i, j)` for `i ≤ j` and
    /// mirroring.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = KernelMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                m.set(i, j, v);
            }
        }
        m
    }

    /// Side length of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.values[i * self.n + j]
    }

    /// Writes entry `(i, j)` *and its mirror* `(j, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.values[i * self.n + j] = value;
        self.values[j * self.n + i] = value;
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in i + 1..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The extreme off-diagonal values `(min, max)`; `None` when `n < 2`.
    pub fn off_diagonal_range(&self) -> Option<(f64, f64)> {
        if self.n < 2 {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let v = self.get(i, j);
                    min = min.min(v);
                    max = max.max(v);
                }
            }
        }
        Some((min, max))
    }
}

/// Whether [`gram_matrix`] fills in raw or normalised kernel values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GramMode {
    /// Normalised values (the paper's similarity matrices).
    ///
    /// The diagonal self-kernels are **memoised**: `raw(s_i, s_i)` is
    /// evaluated once per string (`n` evaluations for an `n×n` matrix,
    /// not once per pair) and every entry is normalised through
    /// [`StringKernel::normalized_with_self`]. For kernels whose `raw`
    /// is call-to-call deterministic — the Kast kernel is, by its
    /// bit-identity contract — the values are bit-identical to calling
    /// [`StringKernel::normalized`] per pair. (The HashMap-based
    /// spectrum baselines sum features in map iteration order, so their
    /// raw values may already wobble in the last ULP between calls;
    /// memoisation neither adds to nor removes that.) The diagonal is
    /// exactly `1.0` wherever the self-kernel is positive (and `0.0`
    /// where it vanishes, e.g. empty strings).
    #[default]
    Normalized,
    /// Raw kernel values.
    Raw,
}

/// Computes the Gram matrix of `strings` under `kernel`, in parallel.
///
/// Work is split by rows of the upper triangle across `threads` OS threads
/// (clamped to the number of rows; 0 means "use available parallelism").
/// In [`GramMode::Normalized`] the self-kernel diagonal is computed first
/// (once per string) and shared by every pair evaluation — see
/// [`GramMode::Normalized`] for the memoisation contract.
///
/// # Examples
///
/// ```
/// use kastio_core::{KastKernel, KastOptions, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
/// use kastio_kernels::{gram_matrix, GramMode};
///
/// let mut interner = TokenInterner::new();
/// let strings: Vec<_> = ["a", "b"]
///     .iter()
///     .map(|name| {
///         let s: WeightedString =
///             [WeightedToken::new(TokenLiteral::Sym((*name).into()), 4)].into_iter().collect();
///         interner.intern_string(&s)
///     })
///     .collect();
/// let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
/// let gram = gram_matrix(&kernel, &strings, GramMode::Normalized, 1);
/// assert_eq!(gram.get(0, 0), 1.0);
/// assert_eq!(gram.get(0, 1), 0.0);
/// ```
pub fn gram_matrix<K>(
    kernel: &K,
    strings: &[IdString],
    mode: GramMode,
    threads: usize,
) -> KernelMatrix
where
    K: StringKernel + Sync,
{
    let n = strings.len();
    let mut matrix = KernelMatrix::zeros(n);
    if n == 0 {
        return matrix;
    }
    let threads = effective_threads(threads, n);
    // Memoised diagonal: in normalised mode every pair shares the n
    // self-kernels instead of recomputing them per entry (O(n) instead of
    // O(n²) self-kernel evaluations).
    let diag: Option<Vec<f64>> = match mode {
        GramMode::Raw => None,
        GramMode::Normalized => Some(self_kernels(kernel, strings, threads)),
    };
    let diag = diag.as_deref();
    if threads <= 1 {
        for i in 0..n {
            for j in i..n {
                matrix.set(i, j, eval(kernel, strings, i, j, diag));
            }
        }
        return matrix;
    }

    // Each worker computes full rows of the upper triangle, striped so the
    // (uneven) row lengths balance out.
    let rows: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    let mut i = t;
                    while i < n {
                        let row: Vec<f64> =
                            (i..n).map(|j| eval(kernel, strings, i, j, diag)).collect();
                        acc.push((i, row));
                        i += threads;
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("gram worker panicked")).collect()
    });

    for chunk in rows {
        for (i, row) in chunk {
            for (off, v) in row.into_iter().enumerate() {
                matrix.set(i, i + off, v);
            }
        }
    }
    matrix
}

/// The raw self-kernel of every string, striped across `threads` workers.
fn self_kernels<K>(kernel: &K, strings: &[IdString], threads: usize) -> Vec<f64>
where
    K: StringKernel + Sync,
{
    let n = strings.len();
    if threads <= 1 || n < 2 {
        return strings.iter().map(|s| kernel.raw(s, s)).collect();
    }
    let mut diag = vec![0.0; n];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    let mut i = t;
                    while i < n {
                        acc.push((i, kernel.raw(&strings[i], &strings[i])));
                        i += threads;
                    }
                    acc
                })
            })
            .collect();
        for handle in handles {
            for (i, v) in handle.join().expect("self-kernel worker panicked") {
                diag[i] = v;
            }
        }
    });
    diag
}

fn effective_threads(requested: usize, n: usize) -> usize {
    let available = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let t = if requested == 0 { available } else { requested };
    t.clamp(1, n.max(1))
}

/// One Gram entry: raw when `diag` is `None`, otherwise normalised
/// through the memoised self-kernel diagonal.
fn eval<K: StringKernel>(
    kernel: &K,
    strings: &[IdString],
    i: usize,
    j: usize,
    diag: Option<&[f64]>,
) -> f64 {
    match diag {
        None => kernel.raw(&strings[i], &strings[j]),
        Some(diag) => kernel.normalized_with_self(&strings[i], &strings[j], diag[i], diag[j]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::KSpectrumKernel;
    use kastio_core::token::{TokenLiteral, WeightedToken};
    use kastio_core::{TokenInterner, WeightedString};

    fn strings(specs: &[&[(&str, u64)]]) -> Vec<IdString> {
        let mut interner = TokenInterner::new();
        specs
            .iter()
            .map(|spec| {
                let s: WeightedString = spec
                    .iter()
                    .map(|&(name, w)| WeightedToken::new(TokenLiteral::Sym(name.to_string()), w))
                    .collect();
                interner.intern_string(&s)
            })
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let ss = strings(&[
            &[("p", 1), ("q", 2), ("r", 3)],
            &[("q", 2), ("r", 3)],
            &[("z", 9)],
            &[("p", 1), ("q", 5)],
            &[("r", 3), ("p", 1), ("q", 2)],
        ]);
        let kernel = KSpectrumKernel::new(2);
        let seq = gram_matrix(&kernel, &ss, GramMode::Normalized, 1);
        let par = gram_matrix(&kernel, &ss, GramMode::Normalized, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal_where_defined() {
        let ss = strings(&[&[("p", 1), ("q", 2)], &[("q", 2), ("p", 1)], &[("p", 1)]]);
        let g = gram_matrix(&KSpectrumKernel::new(1), &ss, GramMode::Normalized, 0);
        assert!(g.is_symmetric(0.0));
        for i in 0..g.n() {
            assert!((g.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn raw_mode_keeps_magnitudes() {
        let ss = strings(&[&[("p", 3)], &[("p", 5)]]);
        let g = gram_matrix(&KSpectrumKernel::new(1), &ss, GramMode::Raw, 1);
        assert_eq!(g.get(0, 1), 15.0);
        assert_eq!(g.get(0, 0), 9.0);
    }

    #[test]
    fn empty_input() {
        let g = gram_matrix(&KSpectrumKernel::new(1), &[], GramMode::Raw, 0);
        assert_eq!(g.n(), 0);
        assert!(g.off_diagonal_range().is_none());
    }

    #[test]
    fn normalized_mode_memoised_diagonal_is_bit_identical_to_per_pair() {
        use kastio_core::{KastKernel, KastOptions, Normalization};
        let ss = strings(&[
            &[("p", 2), ("q", 3), ("r", 5)],
            &[("q", 3), ("r", 5)],
            &[("p", 2), ("q", 3), ("r", 5), ("p", 2), ("q", 3)],
            &[("z", 9)],
            &[], // degenerate: zero self-kernel
        ]);
        for normalization in [Normalization::Cosine, Normalization::WeightProduct] {
            let kernel =
                KastKernel::new(KastOptions { normalization, ..KastOptions::with_cut_weight(2) });
            for threads in [1, 3] {
                let g = gram_matrix(&kernel, &ss, GramMode::Normalized, threads);
                for i in 0..ss.len() {
                    for j in 0..ss.len() {
                        let direct = kernel.normalized(&ss[i], &ss[j]);
                        assert_eq!(
                            g.get(i, j).to_bits(),
                            direct.to_bits(),
                            "({i},{j}) with {normalization:?}, {threads} threads"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn normalized_mode_unit_diagonal_where_defined() {
        use kastio_core::{KastKernel, KastOptions};
        // Cosine-normalised Kast: the diagonal is exactly 1.0 wherever the
        // self-kernel is positive, and 0.0 where it vanishes — the memoised
        // diagonal must preserve both.
        let ss = strings(&[&[("p", 2), ("q", 3)], &[("r", 9)], &[]]);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
        let g = gram_matrix(&kernel, &ss, GramMode::Normalized, 0);
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(1, 1), 1.0);
        assert_eq!(g.get(2, 2), 0.0, "empty string has no self-kernel");
    }

    #[test]
    fn from_fn_and_range() {
        let m = KernelMatrix::from_fn(3, |i, j| if i == j { 1.0 } else { 0.25 });
        assert_eq!(m.off_diagonal_range(), Some((0.25, 0.25)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        KernelMatrix::zeros(2).get(2, 0);
    }
}
