//! Baseline string kernels and Gram-matrix machinery for kastio.
//!
//! §2.2 of the paper surveys the string-kernel family the Kast Spectrum
//! Kernel is compared against; this crate implements them over the same
//! interned weighted strings used by [`kastio_core`]:
//!
//! * [`KSpectrumKernel`] — substrings of exactly length k (Leslie et al.).
//! * [`BlendedSpectrumKernel`] — substrings of length ≤ k (Shawe-Taylor &
//!   Cristianini), the paper's main baseline (Figures 8/9).
//! * [`BagOfTokensKernel`] / [`BagOfWordsKernel`] — the two kernels the
//!   paper discards a priori.
//! * [`SubsequenceKernel`] — the gap-weighted subsequence kernel from the
//!   paper's reference \[4\], for non-contiguous matching.
//! * [`gram_matrix`] — parallel similarity-matrix construction (§4.1).
//!
//! # Examples
//!
//! ```
//! use kastio_core::{pattern_string, ByteMode, StringKernel, TokenInterner};
//! use kastio_kernels::BlendedSpectrumKernel;
//! use kastio_trace::parse_trace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t1 = parse_trace("h0 open 0\nh0 write 64\nh0 close 0\n")?;
//! let t2 = parse_trace("h0 open 0\nh0 write 64\nh0 write 64\nh0 close 0\n")?;
//! let mut interner = TokenInterner::new();
//! let a = interner.intern_string(&pattern_string(&t1, ByteMode::Preserve));
//! let b = interner.intern_string(&pattern_string(&t2, ByteMode::Preserve));
//! let similarity = BlendedSpectrumKernel::new(2).normalized(&a, &b);
//! assert!(similarity > 0.8);
//! # Ok(())
//! # }
//! ```

pub mod bag;
pub mod blended;
pub mod matrix;
pub mod spectrum;
pub mod subsequence;

pub use bag::{BagOfTokensKernel, BagOfWordsKernel};
pub use blended::BlendedSpectrumKernel;
pub use matrix::{gram_matrix, GramMode, KernelMatrix};
pub use spectrum::{KSpectrumKernel, WeightingMode};
pub use subsequence::SubsequenceKernel;
