//! The gap-weighted subsequence kernel (Shawe-Taylor & Cristianini 2004,
//! ch. 11.3 — the paper's reference \[4\]).
//!
//! Where the spectrum kernels match *contiguous* k-grams, this kernel
//! matches length-`k` subsequences, penalising the total span they occupy
//! with a decay factor λ per position. It rounds out the §2.2 kernel
//! family: Kast (weighted maximal contiguous matches) vs spectrum
//! (contiguous fixed length) vs subsequence (non-contiguous, gap-decayed).
//!
//! Complexity is O(k·|a|·|b|) time and O(|b|) per DP layer via the
//! standard DPS/DP recurrences.

use kastio_core::{IdString, StringKernel};

/// The gap-weighted subsequence kernel of length `k` with decay `λ`.
///
/// `k(a, b) = Σ_{u ∈ Σ^k} Σ_{i: u = a[i]} Σ_{j: u = b[j]} λ^{span(i) + span(j)}`
/// where `i`, `j` range over index tuples and `span` is the distance from
/// first to last matched index plus one.
///
/// # Examples
///
/// ```
/// use kastio_core::{StringKernel, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
/// use kastio_kernels::SubsequenceKernel;
///
/// fn sym(name: &str) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), 1)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("p"), sym("q")].into_iter().collect();
/// let b: WeightedString = [sym("p"), sym("z"), sym("q")].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
///
/// let kernel = SubsequenceKernel::new(2, 0.5);
/// // "pq" spans 2 in a (λ²=0.25) and 3 in b (λ³=0.125) → 0.03125.
/// assert!((kernel.raw(&ia, &ib) - 0.03125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SubsequenceKernel {
    k: usize,
    lambda: f64,
}

impl SubsequenceKernel {
    /// Creates a subsequence kernel for length `k` and decay `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `lambda` is not in `(0, 1]`.
    pub fn new(k: usize, lambda: f64) -> Self {
        assert!(k > 0, "subsequence kernel requires k ≥ 1");
        assert!(lambda > 0.0 && lambda <= 1.0, "decay λ must lie in (0, 1], got {lambda}");
        SubsequenceKernel { k, lambda }
    }

    /// The subsequence length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The gap decay λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl StringKernel for SubsequenceKernel {
    fn name(&self) -> &'static str {
        "gap-subsequence"
    }

    fn raw(&self, a: &IdString, b: &IdString) -> f64 {
        let (xa, xb) = (a.ids(), b.ids());
        let (n, m) = (xa.len(), xb.len());
        if n < self.k || m < self.k {
            return 0.0;
        }
        let lambda = self.lambda;
        // dps[i][j]: suffix-anchored partial sums for subsequences of the
        // current length ending exactly at a[i-1], b[j-1]; dp aggregates
        // with gap decay. Rolling 2D tables of size (n+1)×(m+1).
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        let mut dps = vec![0.0f64; (n + 1) * (m + 1)];
        let mut dp = vec![0.0f64; (n + 1) * (m + 1)];
        let mut kernel = 0.0;

        for i in 1..=n {
            for j in 1..=m {
                if xa[i - 1] == xb[j - 1] {
                    dps[idx(i, j)] = lambda * lambda;
                    if self.k == 1 {
                        kernel += dps[idx(i, j)];
                    }
                }
            }
        }

        for _level in 2..=self.k {
            // dp(i,j) = dps(i,j) + λ·dp(i−1,j) + λ·dp(i,j−1) − λ²·dp(i−1,j−1)
            for i in 0..=n {
                dp[idx(i, 0)] = 0.0;
            }
            for j in 0..=m {
                dp[idx(0, j)] = 0.0;
            }
            for i in 1..=n {
                for j in 1..=m {
                    dp[idx(i, j)] =
                        dps[idx(i, j)] + lambda * dp[idx(i - 1, j)] + lambda * dp[idx(i, j - 1)]
                            - lambda * lambda * dp[idx(i - 1, j - 1)];
                }
            }
            let mut next = vec![0.0f64; (n + 1) * (m + 1)];
            let mut level_sum = 0.0;
            for i in 1..=n {
                for j in 1..=m {
                    if xa[i - 1] == xb[j - 1] {
                        next[idx(i, j)] = lambda * lambda * dp[idx(i - 1, j - 1)];
                        level_sum += next[idx(i, j)];
                    }
                }
            }
            dps = next;
            if _level == self.k {
                kernel = level_sum;
            }
        }
        if self.k == 1 {
            // already accumulated above
            return kernel;
        }
        kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_core::token::{TokenLiteral, WeightedToken};
    use kastio_core::{TokenInterner, WeightedString};

    fn intern(names: &[&str], interner: &mut TokenInterner) -> IdString {
        let s: WeightedString =
            names.iter().map(|n| WeightedToken::new(TokenLiteral::Sym(n.to_string()), 1)).collect();
        interner.intern_string(&s)
    }

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn k1_counts_matching_pairs_with_lambda_squared() {
        let mut i = TokenInterner::new();
        let a = intern(&["p", "q"], &mut i);
        let b = intern(&["p", "p"], &mut i);
        let k = SubsequenceKernel::new(1, 0.5);
        // Two matching (p,p) pairs, each λ² = 0.25.
        close(k.raw(&a, &b), 0.5);
    }

    #[test]
    fn textbook_cat_car_example() {
        // Shawe-Taylor & Cristianini's classic: k("cat","car") with k=2.
        // Shared subsequences: "ca" (contiguous in both → λ⁴) — "ct"/"cr"
        // do not match each other; "at"/"ar" neither.
        let mut i = TokenInterner::new();
        let cat = intern(&["c", "a", "t"], &mut i);
        let car = intern(&["c", "a", "r"], &mut i);
        let lambda: f64 = 0.7;
        let k = SubsequenceKernel::new(2, lambda);
        close(k.raw(&cat, &car), lambda.powi(4));
    }

    #[test]
    fn gaps_are_penalised() {
        let mut i = TokenInterner::new();
        let tight = intern(&["p", "q"], &mut i);
        let gapped = intern(&["p", "z", "z", "q"], &mut i);
        let k = SubsequenceKernel::new(2, 0.5);
        let self_tight = k.raw(&tight, &tight);
        let cross = k.raw(&tight, &gapped);
        assert!(cross < self_tight, "a gapped match must score lower");
        // span 2 in tight (λ²) and 4 in gapped (λ⁴) → λ⁶.
        close(cross, 0.5f64.powi(6));
    }

    #[test]
    fn symmetric_and_normalised() {
        let mut i = TokenInterner::new();
        let a = intern(&["p", "q", "r", "p"], &mut i);
        let b = intern(&["q", "p", "r"], &mut i);
        let k = SubsequenceKernel::new(2, 0.8);
        close(k.raw(&a, &b), k.raw(&b, &a));
        let n = k.normalized(&a, &b);
        assert!((0.0..=1.0 + 1e-12).contains(&n));
        close(k.normalized(&a, &a), 1.0);
    }

    #[test]
    fn too_short_strings_score_zero() {
        let mut i = TokenInterner::new();
        let a = intern(&["p"], &mut i);
        let b = intern(&["p", "q"], &mut i);
        assert_eq!(SubsequenceKernel::new(2, 0.5).raw(&a, &b), 0.0);
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        // Brute force: enumerate all index tuples.
        fn brute(a: &[u32], b: &[u32], k: usize, lambda: f64) -> f64 {
            fn tuples(n: usize, k: usize) -> Vec<Vec<usize>> {
                if k == 0 {
                    return vec![vec![]];
                }
                let mut out = Vec::new();
                for first in 0..n {
                    for mut rest in tuples(n, k - 1) {
                        if rest.first().is_none_or(|&r| r > first) {
                            let mut t = vec![first];
                            t.append(&mut rest);
                            out.push(t);
                        }
                    }
                }
                out.retain(|t| t.len() == k && t.windows(2).all(|w| w[0] < w[1]));
                out
            }
            let mut total = 0.0;
            for ti in tuples(a.len(), k) {
                for tj in tuples(b.len(), k) {
                    let matches = ti.iter().zip(&tj).all(|(&x, &y)| a[x] == b[y]);
                    if matches {
                        let span_i = ti[k - 1] - ti[0] + 1;
                        let span_j = tj[k - 1] - tj[0] + 1;
                        total += lambda.powi((span_i + span_j) as i32);
                    }
                }
            }
            total
        }

        let mut i = TokenInterner::new();
        let a = intern(&["p", "q", "p", "r", "q"], &mut i);
        let b = intern(&["q", "p", "q", "p"], &mut i);
        let raw_a: Vec<u32> = a.ids().iter().map(|t| t.0).collect();
        let raw_b: Vec<u32> = b.ids().iter().map(|t| t.0).collect();
        for k in 1..=3usize {
            for lambda in [0.3, 0.7, 1.0] {
                let fast = SubsequenceKernel::new(k, lambda).raw(&a, &b);
                let slow = brute(&raw_a, &raw_b, k, lambda);
                assert!((fast - slow).abs() < 1e-9, "k={k} λ={lambda}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_panics() {
        let _ = SubsequenceKernel::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn bad_lambda_panics() {
        let _ = SubsequenceKernel::new(2, 1.5);
    }
}
