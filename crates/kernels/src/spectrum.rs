//! The k-spectrum kernel of Leslie, Eskin & Noble (2002), adapted to
//! weighted token strings.
//!
//! "The k-spectrum kernel only counts sub-strings of length k" (§2.2).
//! The classical kernel counts occurrences; on weighted strings it is
//! natural to sum the appearance weights instead, so both readings are
//! available through [`WeightingMode`].

use std::collections::HashMap;

use kastio_core::{IdString, StringKernel, TokenId};

/// How a spectrum-style kernel scores each k-gram appearance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightingMode {
    /// Each appearance contributes its summed token weight (the natural
    /// extension to the paper's weighted strings).
    #[default]
    Weights,
    /// Each appearance contributes 1, as in the classical kernel.
    Counts,
}

/// Computes the k-gram feature map of a string: k-gram → feature value.
pub(crate) fn kgram_features(
    s: &IdString,
    k: usize,
    mode: WeightingMode,
) -> HashMap<Vec<TokenId>, f64> {
    let mut map: HashMap<Vec<TokenId>, f64> = HashMap::new();
    if k == 0 || s.len() < k {
        return map;
    }
    for start in 0..=s.len() - k {
        let gram = s.ids()[start..start + k].to_vec();
        let value = match mode {
            WeightingMode::Weights => s.range_weight(start, k) as f64,
            WeightingMode::Counts => 1.0,
        };
        *map.entry(gram).or_insert(0.0) += value;
    }
    map
}

pub(crate) fn dot(a: &HashMap<Vec<TokenId>, f64>, b: &HashMap<Vec<TokenId>, f64>) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter_map(|(gram, &va)| large.get(gram).map(|&vb| va * vb)).sum()
}

/// The k-spectrum kernel: inner product of k-gram feature maps.
///
/// # Examples
///
/// ```
/// use kastio_core::{StringKernel, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
/// use kastio_kernels::KSpectrumKernel;
///
/// fn sym(name: &str, w: u64) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), w)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("p", 1), sym("q", 1), sym("r", 1)].into_iter().collect();
/// let b: WeightedString = [sym("p", 1), sym("q", 1), sym("z", 1)].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
///
/// let kernel = KSpectrumKernel::new(2);
/// // shared 2-gram: [p q] with weight 2 on each side.
/// assert_eq!(kernel.raw(&ia, &ib), 4.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KSpectrumKernel {
    k: usize,
    mode: WeightingMode,
}

impl KSpectrumKernel {
    /// A k-spectrum kernel with the default [`WeightingMode::Weights`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (a 0-gram spectrum is meaningless).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-spectrum kernel requires k ≥ 1");
        KSpectrumKernel { k, mode: WeightingMode::default() }
    }

    /// Overrides the weighting mode.
    pub fn with_mode(mut self, mode: WeightingMode) -> Self {
        self.mode = mode;
        self
    }

    /// The substring length `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl StringKernel for KSpectrumKernel {
    fn name(&self) -> &'static str {
        "k-spectrum"
    }

    fn raw(&self, a: &IdString, b: &IdString) -> f64 {
        let fa = kgram_features(a, self.k, self.mode);
        let fb = kgram_features(b, self.k, self.mode);
        dot(&fa, &fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_core::token::{TokenLiteral, WeightedToken};
    use kastio_core::{TokenInterner, WeightedString};

    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }

    fn intern(tokens: &[WeightedToken], interner: &mut TokenInterner) -> IdString {
        let s: WeightedString = tokens.iter().cloned().collect();
        interner.intern_string(&s)
    }

    #[test]
    fn counts_mode_matches_classical_kernel() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 9), sym("q", 9), sym("p", 9), sym("q", 9)], &mut i);
        let b = intern(&[sym("p", 1), sym("q", 1)], &mut i);
        let k = KSpectrumKernel::new(2).with_mode(WeightingMode::Counts);
        // a has [pq]×2, [qp]×1; b has [pq]×1 → 2·1 = 2.
        assert_eq!(k.raw(&a, &b), 2.0);
    }

    #[test]
    fn weights_mode_sums_appearance_weights() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 3)], &mut i);
        let b = intern(&[sym("p", 5), sym("q", 7)], &mut i);
        let k = KSpectrumKernel::new(2);
        assert_eq!(k.raw(&a, &b), 5.0 * 12.0);
    }

    #[test]
    fn k_longer_than_string_gives_zero() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 1)], &mut i);
        let k = KSpectrumKernel::new(3);
        assert_eq!(k.raw(&a, &a), 0.0);
        assert_eq!(k.normalized(&a, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 3), sym("r", 1)], &mut i);
        let b = intern(&[sym("q", 3), sym("r", 2), sym("p", 4)], &mut i);
        let k = KSpectrumKernel::new(2);
        assert_eq!(k.raw(&a, &b), k.raw(&b, &a));
    }

    #[test]
    fn normalized_identical_is_one() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 3), sym("p", 2)], &mut i);
        let k = KSpectrumKernel::new(2);
        assert!((k.normalized(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_panics() {
        let _ = KSpectrumKernel::new(0);
    }
}
