//! Bag-of-tokens and bag-of-words kernels (§2.2's simplest baselines).
//!
//! On the paper's token strings, a *character* is naturally a single token
//! ("The bag-of-characters kernel only takes into account single-character
//! matching") and a *word* is a maximal run of operation tokens between
//! structural separators ("The bag-of-words kernel searches for shared
//! words"). The paper discards both for its evaluation because "a group of
//! subsequent tokens can encode more meaningful information than a single
//! one" — we implement them anyway so that claim is checkable.

use std::collections::{HashMap, HashSet};

use kastio_core::{IdString, StringKernel, TokenId, TokenInterner, TokenLiteral};

use crate::spectrum::{dot, kgram_features, WeightingMode};

/// The bag-of-tokens kernel: single-token matching only (the
/// bag-of-characters analogue on token strings).
///
/// # Examples
///
/// ```
/// use kastio_core::{StringKernel, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
/// use kastio_kernels::BagOfTokensKernel;
///
/// fn sym(name: &str, w: u64) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), w)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("p", 2), sym("q", 3)].into_iter().collect();
/// let b: WeightedString = [sym("q", 5), sym("r", 7)].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
/// assert_eq!(BagOfTokensKernel::new().raw(&ia, &ib), 15.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BagOfTokensKernel {
    mode: WeightingMode,
}

impl BagOfTokensKernel {
    /// A bag-of-tokens kernel with the default weighting.
    pub fn new() -> Self {
        BagOfTokensKernel::default()
    }

    /// Overrides the weighting mode.
    pub fn with_mode(mut self, mode: WeightingMode) -> Self {
        self.mode = mode;
        self
    }
}

impl StringKernel for BagOfTokensKernel {
    fn name(&self) -> &'static str {
        "bag-of-tokens"
    }

    fn raw(&self, a: &IdString, b: &IdString) -> f64 {
        let fa = kgram_features(a, 1, self.mode);
        let fb = kgram_features(b, 1, self.mode);
        dot(&fa, &fb)
    }
}

/// The bag-of-words kernel: features are maximal runs of tokens between
/// separator tokens.
///
/// For pattern strings the natural separators are the structural tokens
/// (`[ROOT]`, `[HANDLE]`, `[BLOCK]`, `[LEVEL_UP]`), which
/// [`BagOfWordsKernel::with_structural_separators`] collects from an
/// interner.
#[derive(Debug, Clone, Default)]
pub struct BagOfWordsKernel {
    separators: HashSet<TokenId>,
    mode: WeightingMode,
}

impl BagOfWordsKernel {
    /// A bag-of-words kernel with an explicit separator set.
    pub fn new(separators: HashSet<TokenId>) -> Self {
        BagOfWordsKernel { separators, mode: WeightingMode::default() }
    }

    /// Collects the ids of all structural literals currently interned and
    /// uses them as separators.
    pub fn with_structural_separators(interner: &mut TokenInterner) -> Self {
        let separators =
            [TokenLiteral::Root, TokenLiteral::Handle, TokenLiteral::Block, TokenLiteral::LevelUp]
                .iter()
                .map(|lit| interner.intern(lit))
                .collect();
        BagOfWordsKernel::new(separators)
    }

    /// Overrides the weighting mode.
    pub fn with_mode(mut self, mode: WeightingMode) -> Self {
        self.mode = mode;
        self
    }

    fn word_features(&self, s: &IdString) -> HashMap<Vec<TokenId>, f64> {
        let mut map: HashMap<Vec<TokenId>, f64> = HashMap::new();
        let mut start = 0usize;
        let flush = |map: &mut HashMap<Vec<TokenId>, f64>, start: usize, end: usize| {
            if end > start {
                let word = s.ids()[start..end].to_vec();
                let value = match self.mode {
                    WeightingMode::Weights => s.range_weight(start, end - start) as f64,
                    WeightingMode::Counts => 1.0,
                };
                *map.entry(word).or_insert(0.0) += value;
            }
        };
        for (i, id) in s.ids().iter().enumerate() {
            if self.separators.contains(id) {
                flush(&mut map, start, i);
                start = i + 1;
            }
        }
        flush(&mut map, start, s.len());
        map
    }
}

impl StringKernel for BagOfWordsKernel {
    fn name(&self) -> &'static str {
        "bag-of-words"
    }

    fn raw(&self, a: &IdString, b: &IdString) -> f64 {
        let fa = self.word_features(a);
        let fb = self.word_features(b);
        dot(&fa, &fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_core::token::WeightedToken;
    use kastio_core::WeightedString;

    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }

    fn structural(lit: TokenLiteral) -> WeightedToken {
        WeightedToken::structural(lit)
    }

    #[test]
    fn bag_of_tokens_ignores_order() {
        let mut i = TokenInterner::new();
        let a: WeightedString = [sym("p", 1), sym("q", 2)].into_iter().collect();
        let b: WeightedString = [sym("q", 2), sym("p", 1)].into_iter().collect();
        let (ia, ib) = (i.intern_string(&a), i.intern_string(&b));
        let k = BagOfTokensKernel::new();
        assert_eq!(k.raw(&ia, &ib), k.raw(&ia, &ia));
        assert!((k.normalized(&ia, &ib) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bag_of_words_splits_on_structural_tokens() {
        let mut i = TokenInterner::new();
        let a: WeightedString = [
            structural(TokenLiteral::Block),
            sym("p", 1),
            sym("q", 1),
            structural(TokenLiteral::Block),
            sym("p", 1),
        ]
        .into_iter()
        .collect();
        let b: WeightedString =
            [structural(TokenLiteral::Block), sym("p", 1), sym("q", 1)].into_iter().collect();
        let k = BagOfWordsKernel::with_structural_separators(&mut i);
        let (ia, ib) = (i.intern_string(&a), i.intern_string(&b));
        // Shared word [p q]: 2·2 = 4; the lone [p] word of `a` is unmatched.
        assert_eq!(k.raw(&ia, &ib), 4.0);
    }

    #[test]
    fn bag_of_words_without_separators_is_whole_string_matching() {
        let mut i = TokenInterner::new();
        let a: WeightedString = [sym("p", 1), sym("q", 1)].into_iter().collect();
        let b: WeightedString = [sym("p", 1)].into_iter().collect();
        let (ia, ib) = (i.intern_string(&a), i.intern_string(&b));
        let k = BagOfWordsKernel::new(HashSet::new());
        assert_eq!(k.raw(&ia, &ib), 0.0, "whole strings differ → no shared word");
        assert_eq!(k.raw(&ia, &ia), 4.0);
    }

    #[test]
    fn counts_mode() {
        let mut i = TokenInterner::new();
        let a: WeightedString = [sym("p", 9)].into_iter().collect();
        let (ia, _) = (i.intern_string(&a), ());
        let k = BagOfTokensKernel::new().with_mode(WeightingMode::Counts);
        assert_eq!(k.raw(&ia, &ia), 1.0);
    }

    #[test]
    fn empty_strings() {
        let mut i = TokenInterner::new();
        let e = i.intern_string(&WeightedString::new());
        assert_eq!(BagOfTokensKernel::new().raw(&e, &e), 0.0);
        assert_eq!(BagOfWordsKernel::new(HashSet::new()).raw(&e, &e), 0.0);
    }
}
