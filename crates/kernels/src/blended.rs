//! The blended spectrum kernel (Shawe-Taylor & Cristianini, 2004).
//!
//! "The k-blended spectrum kernel only counts sub-strings which length are
//! less or equal to a given number k" (§2.2). It is the sum of the
//! p-spectrum kernels for p = 1…k, optionally geometrically decayed by a
//! factor λ per length.

use kastio_core::{IdString, StringKernel};

use crate::spectrum::{dot, kgram_features, WeightingMode};

/// The blended spectrum kernel: `Σ_{p=1..k} λ^p · spectrum_p(a, b)`.
///
/// This is the paper's strongest baseline; Figures 8 and 9 evaluate it
/// with byte information at cut weight 2 (which we map to `k = 2`).
///
/// # Examples
///
/// ```
/// use kastio_core::{StringKernel, TokenInterner, WeightedString};
/// use kastio_core::token::{TokenLiteral, WeightedToken};
/// use kastio_kernels::BlendedSpectrumKernel;
///
/// fn sym(name: &str, w: u64) -> WeightedToken {
///     WeightedToken::new(TokenLiteral::Sym(name.into()), w)
/// }
///
/// let mut interner = TokenInterner::new();
/// let a: WeightedString = [sym("p", 1), sym("q", 1)].into_iter().collect();
/// let b: WeightedString = [sym("p", 1), sym("q", 1)].into_iter().collect();
/// let (ia, ib) = (interner.intern_string(&a), interner.intern_string(&b));
///
/// let kernel = BlendedSpectrumKernel::new(2);
/// // 1-grams: p·p + q·q = 2; 2-grams: [pq]·[pq] = 4 → 6.
/// assert_eq!(kernel.raw(&ia, &ib), 6.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BlendedSpectrumKernel {
    k_max: usize,
    lambda: f64,
    mode: WeightingMode,
}

impl BlendedSpectrumKernel {
    /// A blended kernel over substring lengths 1…`k_max`, λ = 1.
    ///
    /// # Panics
    ///
    /// Panics if `k_max == 0`.
    pub fn new(k_max: usize) -> Self {
        assert!(k_max > 0, "blended spectrum kernel requires k ≥ 1");
        BlendedSpectrumKernel { k_max, lambda: 1.0, mode: WeightingMode::default() }
    }

    /// Sets the per-length decay factor λ (must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "λ must be positive and finite");
        self.lambda = lambda;
        self
    }

    /// Overrides the weighting mode.
    pub fn with_mode(mut self, mode: WeightingMode) -> Self {
        self.mode = mode;
        self
    }

    /// The maximum blended substring length.
    pub fn k_max(&self) -> usize {
        self.k_max
    }
}

impl StringKernel for BlendedSpectrumKernel {
    fn name(&self) -> &'static str {
        "blended-spectrum"
    }

    fn raw(&self, a: &IdString, b: &IdString) -> f64 {
        let mut total = 0.0;
        let mut scale = 1.0;
        for p in 1..=self.k_max {
            scale *= self.lambda;
            let fa = kgram_features(a, p, self.mode);
            if fa.is_empty() {
                break; // longer grams cannot exist either
            }
            let fb = kgram_features(b, p, self.mode);
            if fb.is_empty() {
                break; // symmetric early-exit: only zero terms remain
            }
            total += scale * dot(&fa, &fb);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_core::token::{TokenLiteral, WeightedToken};
    use kastio_core::{TokenInterner, WeightedString};

    fn sym(name: &str, w: u64) -> WeightedToken {
        WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
    }

    fn intern(tokens: &[WeightedToken], interner: &mut TokenInterner) -> IdString {
        let s: WeightedString = tokens.iter().cloned().collect();
        interner.intern_string(&s)
    }

    #[test]
    fn blended_is_sum_of_spectra() {
        use crate::spectrum::KSpectrumKernel;
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 1), sym("p", 2)], &mut i);
        let b = intern(&[sym("q", 3), sym("p", 1), sym("q", 3)], &mut i);
        let blended = BlendedSpectrumKernel::new(3).raw(&a, &b);
        let summed: f64 = (1..=3).map(|k| KSpectrumKernel::new(k).raw(&a, &b)).sum();
        assert_eq!(blended, summed);
    }

    #[test]
    fn lambda_decays_longer_matches() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 1), sym("q", 1)], &mut i);
        let k = BlendedSpectrumKernel::new(2).with_lambda(0.5);
        // λ·(1-gram: 2) + λ²·(2-gram: 4) = 1 + 1 = 2.
        assert_eq!(k.raw(&a, &a), 2.0);
    }

    #[test]
    fn k_max_one_equals_bag_of_tokens() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 3)], &mut i);
        let b = intern(&[sym("p", 4)], &mut i);
        assert_eq!(BlendedSpectrumKernel::new(1).raw(&a, &b), 8.0);
    }

    #[test]
    fn symmetric_and_normalized_bounds() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 3), sym("r", 5)], &mut i);
        let b = intern(&[sym("r", 1), sym("p", 2)], &mut i);
        let k = BlendedSpectrumKernel::new(3);
        assert_eq!(k.raw(&a, &b), k.raw(&b, &a));
        let n = k.normalized(&a, &b);
        assert!((0.0..=1.0 + 1e-12).contains(&n));
        assert!((k.normalized(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_second_string_exits_early_without_changing_the_value() {
        use crate::spectrum::KSpectrumKernel;
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 1), sym("p", 2), sym("q", 1)], &mut i);
        let b = intern(&[sym("q", 3)], &mut i);
        let blended = BlendedSpectrumKernel::new(4).raw(&a, &b);
        let summed: f64 = (1..=4).map(|k| KSpectrumKernel::new(k).raw(&a, &b)).sum();
        assert_eq!(blended.to_bits(), summed.to_bits());
    }

    #[test]
    fn normalized_with_memoised_self_kernels_is_bit_identical() {
        // The Gram-matrix builder normalises baselines through
        // `normalized_with_self` with a memoised diagonal; the blended
        // kernel uses the trait default, which must agree bitwise. The
        // fixtures are small enough that every k-gram sum is exactly
        // representable, so HashMap iteration order cannot perturb the
        // raw values this comparison relies on.
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 2), sym("q", 3), sym("r", 5)], &mut i);
        let b = intern(&[sym("r", 1), sym("p", 2)], &mut i);
        let empty = intern(&[], &mut i);
        let k = BlendedSpectrumKernel::new(3);
        for (x, y) in [(&a, &b), (&a, &a), (&a, &empty), (&empty, &empty)] {
            let (kxx, kyy) = (k.raw(x, x), k.raw(y, y));
            assert_eq!(
                k.normalized_with_self(x, y, kxx, kyy).to_bits(),
                k.normalized(x, y).to_bits()
            );
        }
    }

    #[test]
    fn k_larger_than_strings_is_safe() {
        let mut i = TokenInterner::new();
        let a = intern(&[sym("p", 1)], &mut i);
        let k = BlendedSpectrumKernel::new(10);
        assert_eq!(k.raw(&a, &a), 1.0, "only the 1-gram layer contributes");
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_panics() {
        let _ = BlendedSpectrumKernel::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_lambda_panics() {
        let _ = BlendedSpectrumKernel::new(2).with_lambda(0.0);
    }
}
