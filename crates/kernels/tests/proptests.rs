//! Property tests for the baseline kernels and Gram-matrix machinery on
//! random interned strings.

use proptest::prelude::*;

use kastio_core::token::{TokenLiteral, WeightedToken};
use kastio_core::{IdString, StringKernel, TokenInterner, WeightedString};
use kastio_kernels::{
    gram_matrix, BagOfTokensKernel, BlendedSpectrumKernel, GramMode, KSpectrumKernel,
    SubsequenceKernel, WeightingMode,
};

fn strings_from(specs: Vec<Vec<(u8, u64)>>) -> Vec<IdString> {
    let mut interner = TokenInterner::new();
    specs
        .into_iter()
        .map(|spec| {
            let s: WeightedString = spec
                .into_iter()
                .map(|(sym, w)| WeightedToken::new(TokenLiteral::Sym(format!("s{sym}")), w.max(1)))
                .collect();
            interner.intern_string(&s)
        })
        .collect()
}

fn arb_spec() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..6, 1u64..10), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spectrum_kernels_are_symmetric(sa in arb_spec(), sb in arb_spec(), k in 1usize..4) {
        let strings = strings_from(vec![sa, sb]);
        for mode in [WeightingMode::Counts, WeightingMode::Weights] {
            let kernel = KSpectrumKernel::new(k).with_mode(mode);
            prop_assert_eq!(kernel.raw(&strings[0], &strings[1]), kernel.raw(&strings[1], &strings[0]));
            let blended = BlendedSpectrumKernel::new(k).with_mode(mode);
            prop_assert_eq!(
                blended.raw(&strings[0], &strings[1]),
                blended.raw(&strings[1], &strings[0])
            );
        }
    }

    #[test]
    fn blended_is_the_sum_of_spectra(sa in arb_spec(), sb in arb_spec(), k in 1usize..5) {
        let strings = strings_from(vec![sa, sb]);
        let blended = BlendedSpectrumKernel::new(k).raw(&strings[0], &strings[1]);
        let summed: f64 = (1..=k)
            .map(|p| KSpectrumKernel::new(p).raw(&strings[0], &strings[1]))
            .sum();
        prop_assert!((blended - summed).abs() < 1e-9);
    }

    #[test]
    fn blended_dominates_each_layer(sa in arb_spec(), sb in arb_spec(), k in 1usize..5) {
        let strings = strings_from(vec![sa, sb]);
        let blended = BlendedSpectrumKernel::new(k).raw(&strings[0], &strings[1]);
        for p in 1..=k {
            prop_assert!(KSpectrumKernel::new(p).raw(&strings[0], &strings[1]) <= blended + 1e-9);
        }
    }

    #[test]
    fn bag_of_tokens_equals_one_spectrum(sa in arb_spec(), sb in arb_spec()) {
        let strings = strings_from(vec![sa, sb]);
        prop_assert_eq!(
            BagOfTokensKernel::new().raw(&strings[0], &strings[1]),
            KSpectrumKernel::new(1).raw(&strings[0], &strings[1])
        );
    }

    #[test]
    fn normalized_values_are_cosine_bounded(sa in arb_spec(), sb in arb_spec(), k in 1usize..4) {
        let strings = strings_from(vec![sa, sb]);
        let kernel = BlendedSpectrumKernel::new(k);
        let n = kernel.normalized(&strings[0], &strings[1]);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&n));
    }

    #[test]
    fn subsequence_kernel_axioms(sa in arb_spec(), sb in arb_spec(), k in 1usize..3) {
        let strings = strings_from(vec![sa, sb]);
        let kernel = SubsequenceKernel::new(k, 0.6);
        let ab = kernel.raw(&strings[0], &strings[1]);
        prop_assert!((ab - kernel.raw(&strings[1], &strings[0])).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        let n = kernel.normalized(&strings[0], &strings[1]);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&n));
    }

    #[test]
    fn subsequence_decay_is_monotone(sa in arb_spec(), sb in arb_spec()) {
        // A larger λ never decreases the kernel value (every term grows).
        let strings = strings_from(vec![sa, sb]);
        let lo = SubsequenceKernel::new(2, 0.3).raw(&strings[0], &strings[1]);
        let hi = SubsequenceKernel::new(2, 0.9).raw(&strings[0], &strings[1]);
        prop_assert!(lo <= hi + 1e-9);
    }

    #[test]
    fn gram_matrix_matches_pairwise_evaluation(
        specs in proptest::collection::vec(arb_spec(), 1..6),
    ) {
        let strings = strings_from(specs);
        let kernel = BlendedSpectrumKernel::new(2);
        let gram = gram_matrix(&kernel, &strings, GramMode::Raw, 2);
        prop_assert!(gram.is_symmetric(0.0));
        for i in 0..strings.len() {
            for j in 0..strings.len() {
                prop_assert_eq!(gram.get(i, j), kernel.raw(&strings[i], &strings[j]));
            }
        }
    }
}
