//! The in-memory pattern corpus index.
//!
//! [`PatternIndex`] amortises the batch pipeline (trace → pattern tree →
//! weighted string → interning → self-kernel) across queries: every
//! ingested trace is preprocessed exactly once, and a k-NN query against a
//! corpus of `n` entries costs one pipeline run for the query trace plus
//! full Kast kernel evaluations for only the prefiltered candidate subset
//! (minus whatever the LRU cache already knows).
//!
//! Exactness contract: for every neighbour the index returns, the reported
//! similarity is **bit-identical** to calling
//! [`KastKernel::normalized`] directly on the same pair of interned
//! strings — the index changes *which* pairs are evaluated (prefilter) and
//! *how often* (cache), never the arithmetic.

use std::collections::HashMap;

use kastio_core::{
    ByteMode, IdString, KastKernel, KastOptions, Normalization, PatternPipeline, StringKernel,
    TokenId, TokenInterner,
};
use kastio_trace::{PatternSignature, SignatureConfig, Trace};

use crate::entry::{EntryId, IndexEntry};
use crate::lru::KernelCache;
use crate::prefilter::{select_candidates, PrefilterConfig};

/// Below this many cache misses a query scores sequentially — spawning
/// scoped threads costs more than a handful of kernel evaluations.
const MIN_PARALLEL_MISSES: usize = 8;

/// Configuration of a [`PatternIndex`].
///
/// # Examples
///
/// ```
/// use kastio_index::IndexOptions;
///
/// let opts = IndexOptions::default();
/// assert_eq!(opts.kast.cut_weight, 2);
/// assert!(opts.prefilter.enabled);
/// assert_eq!(opts.cache_capacity, 4096);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Kast kernel options (cut weight, cut rule, normalisation) applied to
    /// every pair the index evaluates.
    pub kast: KastOptions,
    /// Byte mode of the trace → string conversion.
    pub byte_mode: ByteMode,
    /// Windowing of the scalar signature used by the prefilter.
    pub signature: SignatureConfig,
    /// Candidate prefilter configuration.
    pub prefilter: PrefilterConfig,
    /// Capacity of the pairwise kernel LRU (pairs; 0 disables caching).
    pub cache_capacity: usize,
    /// OS threads for batch scoring (0 = available parallelism).
    pub threads: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            kast: KastOptions::default(),
            byte_mode: ByteMode::Preserve,
            signature: SignatureConfig::default(),
            prefilter: PrefilterConfig::default(),
            cache_capacity: 4096,
            threads: 0,
        }
    }
}

/// Monotonic counters describing the work an index has done.
///
/// `kernel_evals` counts *query-time* pairwise Kast evaluations (cache
/// misses); self-kernels are reported separately — one per ingested trace
/// in `ingest_evals`, and one per *distinct* cosine query in
/// `query_self_evals` (repeats of a known query reuse the memoised
/// value). `kernel_evals + cache_hits` is the total number of
/// (query, entry) pairs scored, and `prefilter_pruned` the pairs never
/// scored at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Queries answered.
    pub queries: u64,
    /// Pairwise kernel evaluations performed while answering queries.
    pub kernel_evals: u64,
    /// Query pairs answered from the LRU cache.
    pub cache_hits: u64,
    /// Entries skipped by the signature prefilter, summed over queries.
    pub prefilter_pruned: u64,
    /// Self-kernel evaluations performed at ingestion.
    pub ingest_evals: u64,
    /// Self-kernel evaluations performed for (distinct) queries.
    pub query_self_evals: u64,
}

/// One returned neighbour of a k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The entry's id.
    pub id: EntryId,
    /// The entry's name.
    pub name: String,
    /// The entry's label.
    pub label: String,
    /// Normalised Kast similarity to the query — bit-identical to a direct
    /// [`KastKernel::normalized`] evaluation of the pair.
    pub similarity: f64,
}

/// The result of one k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Up to `k` nearest entries, descending by similarity (ties broken by
    /// ingestion order, so results are deterministic).
    pub neighbors: Vec<Neighbor>,
    /// Majority-vote label over the returned neighbours; ties are broken
    /// by summed similarity, then lexicographically. `None` on an empty
    /// corpus.
    pub label: Option<String>,
    /// Candidates that survived the prefilter for this query.
    pub candidates: usize,
    /// Full kernel evaluations this query performed (cache misses).
    pub evaluated: usize,
    /// Pairs this query answered from the cache.
    pub cache_hits: usize,
}

/// The online pattern corpus index.
///
/// # Examples
///
/// ```
/// use kastio_index::{IndexOptions, PatternIndex};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut index = PatternIndex::new(IndexOptions::default());
/// let writes = parse_trace(&"h0 write 1048576\n".repeat(32))?;
/// let reads = parse_trace(&"h0 read 4096\n".repeat(32))?;
/// index.ingest("ckpt", "checkpoint", writes.clone());
/// index.ingest("scan", "analysis", reads);
///
/// let result = index.query(&writes, 1);
/// assert_eq!(result.neighbors[0].name, "ckpt");
/// assert_eq!(result.label.as_deref(), Some("checkpoint"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PatternIndex {
    opts: IndexOptions,
    pipeline: PatternPipeline,
    kernel: KastKernel,
    interner: TokenInterner,
    entries: Vec<IndexEntry>,
    signatures: Vec<PatternSignature>,
    cache: KernelCache,
    queries: QueryRegistry,
    stats: IndexStats,
}

/// Full-content identity of a query string: its exact id and weight
/// vectors. Used instead of a content *hash* so two distinct queries can
/// never alias a cache entry — a collision would silently serve the wrong
/// kernel value and break the bit-identical contract.
type QueryKey = (Vec<TokenId>, Vec<u64>);

/// What the index remembers about a distinct query: its dense id (the
/// query half of pair-cache keys) and its memoised self-kernel.
#[derive(Debug, Clone, Copy)]
struct QueryInfo {
    id: u64,
    self_kernel: Option<f64>,
}

/// Maps distinct query strings to [`QueryInfo`]. Bounded: when it
/// outgrows its capacity it resets together with the pair cache (the
/// dense ids keep increasing, so even a racy mix of old and new entries
/// could not alias — the reset just keeps memory flat).
#[derive(Debug, Default)]
struct QueryRegistry {
    map: HashMap<QueryKey, QueryInfo>,
    next_id: u64,
}

impl PatternIndex {
    /// Creates an empty index.
    pub fn new(opts: IndexOptions) -> Self {
        PatternIndex {
            opts,
            pipeline: PatternPipeline::new(opts.byte_mode),
            kernel: KastKernel::new(opts.kast),
            interner: TokenInterner::new(),
            entries: Vec::new(),
            signatures: Vec::new(),
            cache: KernelCache::new(opts.cache_capacity),
            queries: QueryRegistry::default(),
            stats: IndexStats::default(),
        }
    }

    /// The index configuration.
    pub fn options(&self) -> &IndexOptions {
        &self.opts
    }

    /// Number of ingested entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ingested entries, in ingestion order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Number of pairs currently cached.
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    /// Runs the trace → weighted string pipeline and interns the result
    /// with the index's shared interner, making the returned string
    /// comparable with every indexed entry (see the [`TokenInterner`]
    /// same-interner invariant).
    pub fn intern_trace(&mut self, trace: &Trace) -> IdString {
        self.interner.intern_string(&self.pipeline.string_of_trace(trace))
    }

    /// The kernel the index evaluates (for direct cross-checks).
    pub fn kernel(&self) -> &KastKernel {
        &self.kernel
    }

    /// Ingests one labelled trace, running the full preprocessing pipeline
    /// once: pattern string, interning, self-kernel, cut mass, signature.
    ///
    /// Names should be unique within an index — persistence writes one
    /// file per name, and later duplicates overwrite earlier ones there.
    pub fn ingest(
        &mut self,
        name: impl Into<String>,
        label: impl Into<String>,
        trace: Trace,
    ) -> EntryId {
        let id = EntryId(self.entries.len() as u32);
        let string = self.intern_trace(&trace);
        let self_kernel = self.kernel.raw(&string, &string);
        self.stats.ingest_evals += 1;
        let entry = IndexEntry {
            id,
            name: name.into(),
            label: label.into(),
            signature: PatternSignature::of(&trace, self.opts.signature),
            cut_mass: string.weight_at_least(self.opts.kast.cut_weight),
            trace,
            string,
            self_kernel,
        };
        self.signatures.push(entry.signature);
        self.entries.push(entry);
        id
    }

    /// Answers a k-NN query: the up-to-`k` most similar corpus entries and
    /// the majority-vote label.
    ///
    /// Pipeline: convert + intern the query once, prefilter the corpus by
    /// signature distance, serve cached pairs from the LRU, score the
    /// remaining candidates in parallel, merge and rank.
    pub fn query(&mut self, trace: &Trace, k: usize) -> QueryResult {
        let query_string = self.intern_trace(trace);
        let query_signature = PatternSignature::of(trace, self.opts.signature);
        self.query_interned(&query_string, &query_signature, k)
    }

    /// [`PatternIndex::query`] for a query that is already converted and
    /// interned (by [`PatternIndex::intern_trace`]) with its signature.
    pub fn query_interned(
        &mut self,
        query: &IdString,
        signature: &PatternSignature,
        k: usize,
    ) -> QueryResult {
        self.stats.queries += 1;
        let budget = self.opts.prefilter.budget_for(k, self.entries.len());
        let candidates = if budget >= self.entries.len() {
            (0..self.entries.len()).collect()
        } else {
            select_candidates(signature, &self.signatures, budget)
        };
        self.stats.prefilter_pruned += (self.entries.len() - candidates.len()) as u64;

        // Resolve the query's exact identity (and memoised self-kernel).
        let (query_key, query_self) = self.query_identity(query);

        // Serve what the LRU already knows; collect the rest for scoring.
        let mut raw_values: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
        let mut misses: Vec<usize> = Vec::new();
        for &idx in &candidates {
            match self.cache.get((query_key, self.entries[idx].id.0)) {
                Some(value) => raw_values.push((idx, value)),
                None => misses.push(idx),
            }
        }
        let cache_hits = raw_values.len();
        let evaluated = misses.len();
        self.stats.cache_hits += cache_hits as u64;
        self.stats.kernel_evals += evaluated as u64;

        let scored = self.score_batch(query, &misses);
        for &(idx, value) in &scored {
            self.cache.insert((query_key, self.entries[idx].id.0), value);
        }
        raw_values.extend(scored);

        // Normalise with the precomputed denominators, replicating
        // `KastKernel::normalized(query, entry)` bit for bit.
        let query_mass = query.weight_at_least(self.opts.kast.cut_weight);
        let mut neighbors: Vec<Neighbor> = raw_values
            .into_iter()
            .map(|(idx, kab)| {
                let entry = &self.entries[idx];
                let similarity = match self.opts.kast.normalization {
                    Normalization::Cosine => {
                        if kab == 0.0 || query_self <= 0.0 || entry.self_kernel <= 0.0 {
                            0.0
                        } else {
                            kab / (query_self * entry.self_kernel).sqrt()
                        }
                    }
                    Normalization::WeightProduct => {
                        let denom = query_mass as f64 * entry.cut_mass as f64;
                        if denom <= 0.0 {
                            0.0
                        } else {
                            kab / denom
                        }
                    }
                };
                Neighbor {
                    id: entry.id,
                    name: entry.name.clone(),
                    label: entry.label.clone(),
                    similarity,
                }
            })
            .collect();
        neighbors.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        neighbors.truncate(k);
        let label = majority_label(&neighbors);
        QueryResult { neighbors, label, candidates: candidates.len(), evaluated, cache_hits }
    }

    /// Resolves the query half of pair-cache keys (a dense id assigned to
    /// the exact string content — never a hash, so distinct queries can
    /// never alias) and the query self-kernel, memoised per distinct
    /// query so repeated queries skip the quadratic `raw(q, q)`.
    ///
    /// With caching disabled (`cache_capacity == 0`) nothing is
    /// remembered: the self-kernel is recomputed per query, matching the
    /// uncached pair path.
    fn query_identity(&mut self, query: &IdString) -> (u64, f64) {
        let need_self = self.opts.kast.normalization == Normalization::Cosine;
        if self.opts.cache_capacity == 0 {
            let query_self = if need_self {
                self.stats.query_self_evals += 1;
                self.kernel.raw(query, query)
            } else {
                0.0
            };
            return (0, query_self);
        }
        // Bound the registry by the cache capacity: past it, reset both
        // (the pair cache is keyed by these ids, so they retire together).
        let key: QueryKey = (query.ids().to_vec(), query.weights().to_vec());
        if self.queries.map.len() >= self.opts.cache_capacity
            && !self.queries.map.contains_key(&key)
        {
            self.queries.map.clear();
            self.cache.clear();
        }
        let next_id = self.queries.next_id;
        let info =
            self.queries.map.entry(key).or_insert(QueryInfo { id: next_id, self_kernel: None });
        if info.id == next_id {
            self.queries.next_id += 1;
        }
        let query_self = if need_self {
            match info.self_kernel {
                Some(value) => value,
                None => {
                    let value = self.kernel.raw(query, query);
                    self.stats.query_self_evals += 1;
                    info.self_kernel = Some(value);
                    value
                }
            }
        } else {
            0.0
        };
        (info.id, query_self)
    }

    /// Scores `query` against the entries at `misses`, striping the batch
    /// across scoped OS threads when it is large enough to pay for them.
    fn score_batch(&self, query: &IdString, misses: &[usize]) -> Vec<(usize, f64)> {
        let entries = &self.entries;
        let kernel = &self.kernel;
        let threads = effective_threads(self.opts.threads, misses.len());
        if threads <= 1 || misses.len() < MIN_PARALLEL_MISSES {
            return misses.iter().map(|&i| (i, kernel.raw(query, &entries[i].string))).collect();
        }
        let mut scored: Vec<(usize, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut acc = Vec::new();
                        let mut at = t;
                        while at < misses.len() {
                            let i = misses[at];
                            acc.push((i, kernel.raw(query, &entries[i].string)));
                            at += threads;
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("index scorer thread panicked"))
                .collect()
        });
        // Deterministic merge order regardless of thread count.
        scored.sort_by_key(|&(i, _)| i);
        scored
    }
}

fn effective_threads(requested: usize, work: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        requested
    };
    threads.min(work).max(1)
}

fn majority_label(neighbors: &[Neighbor]) -> Option<String> {
    let mut tally: Vec<(&str, usize, f64)> = Vec::new();
    for n in neighbors {
        match tally.iter_mut().find(|(label, _, _)| *label == n.label) {
            Some((_, votes, mass)) => {
                *votes += 1;
                *mass += n.similarity;
            }
            None => tally.push((&n.label, 1, n.similarity)),
        }
    }
    tally
        .into_iter()
        .max_by(|a, b| {
            a.1.cmp(&b.1)
                .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
                .then(b.0.cmp(a.0))
        })
        .map(|(label, _, _)| label.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;

    fn checkpoint(blocks: usize) -> Trace {
        parse_trace(&"h0 write 1048576\n".repeat(blocks)).unwrap()
    }

    fn scan(blocks: usize) -> Trace {
        parse_trace(&"h0 read 4096\nh0 lseek 0\n".repeat(blocks)).unwrap()
    }

    fn small_index() -> PatternIndex {
        let mut index = PatternIndex::new(IndexOptions::default());
        for i in 0..4 {
            index.ingest(format!("w{i}"), "write-heavy", checkpoint(16 + i));
            index.ingest(format!("r{i}"), "read-heavy", scan(16 + i));
        }
        index
    }

    #[test]
    fn nearest_neighbor_is_exact() {
        let mut index = small_index();
        let result = index.query(&checkpoint(16), 3);
        assert_eq!(result.neighbors.len(), 3);
        assert_eq!(result.neighbors[0].name, "w0");
        assert!((result.neighbors[0].similarity - 1.0).abs() < 1e-12);
        assert_eq!(result.label.as_deref(), Some("write-heavy"));
    }

    #[test]
    fn similarity_matches_direct_kernel_evaluation_bitwise() {
        let mut index = small_index();
        let query_trace = checkpoint(40);
        let query = index.intern_trace(&query_trace);
        let direct: Vec<(String, f64)> = index
            .entries()
            .iter()
            .map(|e| (e.name.clone(), index.kernel().normalized(&query, &e.string)))
            .collect();
        let result = index.query(&query_trace, index.len());
        for n in &result.neighbors {
            let (_, expected) =
                direct.iter().find(|(name, _)| *name == n.name).expect("entry known");
            assert_eq!(
                n.similarity.to_bits(),
                expected.to_bits(),
                "{}: index similarity must be bit-identical to direct evaluation",
                n.name
            );
        }
    }

    #[test]
    fn prefilter_reduces_kernel_evaluations() {
        let mut index = PatternIndex::new(IndexOptions {
            prefilter: PrefilterConfig { enabled: true, min_candidates: 2, per_k: 1 },
            ..IndexOptions::default()
        });
        for i in 0..6 {
            index.ingest(format!("w{i}"), "w", checkpoint(12 + i));
            index.ingest(format!("r{i}"), "r", scan(12 + i));
        }
        let result = index.query(&checkpoint(12), 1);
        assert_eq!(result.candidates, 2);
        assert_eq!(result.evaluated, 2);
        assert_eq!(index.stats().prefilter_pruned, 10);
        // The signature space separates the two families, so the true
        // nearest neighbour survives the aggressive budget.
        assert_eq!(result.neighbors[0].name, "w0");
    }

    #[test]
    fn repeated_query_is_served_from_cache() {
        let mut index = small_index();
        let first = index.query(&scan(20), 4);
        assert!(first.evaluated > 0);
        assert_eq!(first.cache_hits, 0);
        let second = index.query(&scan(20), 4);
        assert_eq!(second.evaluated, 0, "all pairs cached");
        assert_eq!(second.cache_hits, first.evaluated + first.cache_hits);
        assert_eq!(first.neighbors, second.neighbors);
        let stats = index.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.kernel_evals, first.evaluated as u64);
        assert_eq!(stats.query_self_evals, 1, "repeat query reuses the memoised self-kernel");
    }

    #[test]
    fn cache_capacity_zero_always_reevaluates() {
        let mut index =
            PatternIndex::new(IndexOptions { cache_capacity: 0, ..IndexOptions::default() });
        index.ingest("w", "w", checkpoint(8));
        let a = index.query(&checkpoint(8), 1);
        let b = index.query(&checkpoint(8), 1);
        assert_eq!(a.evaluated, 1);
        assert_eq!(b.evaluated, 1);
        assert_eq!(b.cache_hits, 0);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(
            index.stats().query_self_evals,
            2,
            "no caching → the self-kernel is recomputed per query"
        );
    }

    #[test]
    fn query_registry_reset_preserves_correctness() {
        // Capacity 2: the third distinct query forces a registry + cache
        // reset; results must stay identical to an unbounded index.
        let mut bounded =
            PatternIndex::new(IndexOptions { cache_capacity: 2, ..IndexOptions::default() });
        let mut unbounded = PatternIndex::new(IndexOptions::default());
        for i in 0..3 {
            bounded.ingest(format!("w{i}"), "w", checkpoint(8 + i));
            unbounded.ingest(format!("w{i}"), "w", checkpoint(8 + i));
        }
        let probes =
            [checkpoint(10), scan(10), checkpoint(20), checkpoint(10), scan(10), checkpoint(20)];
        for probe in &probes {
            let a = bounded.query(probe, 3);
            let b = unbounded.query(probe, 3);
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.label, b.label);
        }
        assert!(
            bounded.stats().query_self_evals > unbounded.stats().query_self_evals,
            "the reset forgot some memoised self-kernels (bounded {} vs unbounded {})",
            bounded.stats().query_self_evals,
            unbounded.stats().query_self_evals
        );
    }

    #[test]
    fn empty_corpus_yields_empty_result() {
        let mut index = PatternIndex::new(IndexOptions::default());
        let result = index.query(&checkpoint(4), 3);
        assert!(result.neighbors.is_empty());
        assert_eq!(result.label, None);
        assert_eq!(result.candidates, 0);
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let mut index = small_index();
        let result = index.query(&checkpoint(16), 100);
        assert_eq!(result.neighbors.len(), index.len());
    }

    #[test]
    fn majority_vote_breaks_ties_by_similarity_mass() {
        let neighbors = vec![
            Neighbor { id: EntryId(0), name: "a".into(), label: "x".into(), similarity: 0.9 },
            Neighbor { id: EntryId(1), name: "b".into(), label: "y".into(), similarity: 0.2 },
            Neighbor { id: EntryId(2), name: "c".into(), label: "y".into(), similarity: 0.3 },
            Neighbor { id: EntryId(3), name: "d".into(), label: "x".into(), similarity: 0.1 },
        ];
        // Two votes each; x has mass 1.0, y has 0.5.
        assert_eq!(majority_label(&neighbors).as_deref(), Some("x"));
        assert_eq!(majority_label(&[]), None);
    }

    #[test]
    fn parallel_and_sequential_scoring_agree_bitwise() {
        let mut sequential = PatternIndex::new(IndexOptions {
            threads: 1,
            prefilter: PrefilterConfig { enabled: false, ..PrefilterConfig::default() },
            cache_capacity: 0,
            ..IndexOptions::default()
        });
        let mut parallel = PatternIndex::new(IndexOptions {
            threads: 4,
            prefilter: PrefilterConfig { enabled: false, ..PrefilterConfig::default() },
            cache_capacity: 0,
            ..IndexOptions::default()
        });
        for i in 0..MIN_PARALLEL_MISSES + 4 {
            sequential.ingest(format!("w{i}"), "w", checkpoint(8 + i));
            parallel.ingest(format!("w{i}"), "w", checkpoint(8 + i));
        }
        let q = scan(10);
        let a = sequential.query(&q, 20);
        let b = parallel.query(&q, 20);
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
        }
    }

    #[test]
    fn weight_product_normalisation_matches_direct_evaluation() {
        let mut index = PatternIndex::new(IndexOptions {
            kast: KastOptions {
                normalization: Normalization::WeightProduct,
                ..KastOptions::with_cut_weight(2)
            },
            ..IndexOptions::default()
        });
        index.ingest("w", "w", checkpoint(16));
        index.ingest("r", "r", scan(16));
        let query_trace = checkpoint(12);
        let query = index.intern_trace(&query_trace);
        let direct: Vec<f64> =
            index.entries().iter().map(|e| index.kernel().normalized(&query, &e.string)).collect();
        let result = index.query(&query_trace, 2);
        for n in &result.neighbors {
            let expected = direct[n.id.0 as usize];
            assert_eq!(n.similarity.to_bits(), expected.to_bits());
        }
    }
}
