//! The in-memory pattern corpus index.
//!
//! [`PatternIndex`] amortises the batch pipeline (trace → pattern tree →
//! weighted string → interning → self-kernel) across queries: every
//! ingested trace is preprocessed exactly once, and a k-NN query against a
//! corpus of `n` entries costs one pipeline run for the query trace plus
//! full Kast kernel evaluations for only the prefiltered candidate subset
//! (minus whatever the LRU cache already knows).
//!
//! # Sharding and concurrency
//!
//! The corpus is split across `S` shards (configured by
//! [`IndexOptions::shards`]). Every mutable accelerator — the shared
//! [`TokenInterner`], the index-wide striped pairwise-kernel cache
//! ([`crate::lru::SharedKernelCache`]), the per-query self-kernel memo
//! and the work counters — sits behind interior mutability, so both
//! [`PatternIndex::query`] and [`PatternIndex::ingest`] take `&self`: any
//! number of threads can share one index behind a plain `Arc` with no
//! external lock. A query takes *read* locks on every shard (so
//! concurrent queries never serialise on each other); an ingest
//! write-locks only the one shard that owns the new entry, leaving
//! queries on the other `S − 1` shards untouched. The kernel cache is
//! shared by all shards (striped internally to keep contention low), so
//! a hot query warms it once — not once per shard — and a single byte
//! budget bounds it regardless of the shard count.
//!
//! ## Shard-assignment invariant
//!
//! An entry with [`EntryId`] `i` always lives in shard `i % S`. Ids are
//! allocated from a monotonic counter in ingestion order, so a corpus
//! saved with [`crate::save_index`] and reloaded with the same entry order
//! lands every entry in the same shard again — placement is a pure
//! function of ingestion order and shard count, never of timing.
//!
//! # Exactness contract
//!
//! For every neighbour the index returns, the reported similarity is
//! **bit-identical** to calling [`KastKernel::normalized`] directly on the
//! same pair of interned strings — the index changes *which* pairs are
//! evaluated (prefilter), *how often* (cache) and *where the entries live*
//! (shards), never the arithmetic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use kastio_core::{
    ByteMode, IdString, KastEvaluator, KastKernel, KastOptions, Normalization, PatternPipeline,
    StringKernel, TokenId, TokenInterner,
};
use kastio_quota::{Account, MemoryQuota};
use kastio_trace::{valid_entry_name, valid_entry_tag, PatternSignature, SignatureConfig, Trace};

use crate::entry::{entry_footprint_bytes, EntryId, IndexEntry};
use crate::lru::SharedKernelCache;
use crate::prefilter::{select_candidates_ranked, PrefilterConfig};

/// Below this many cache misses a query scores sequentially — spawning
/// scoped threads costs more than a handful of kernel evaluations.
const MIN_PARALLEL_MISSES: usize = 8;

/// Below this many corpus entries the per-shard prefilter fan-out runs
/// inline — a signature distance is three subtractions and three
/// multiplications, so small corpora never pay for thread spawns.
const MIN_PARALLEL_PREFILTER: usize = 1024;

/// Configuration of a [`PatternIndex`].
///
/// # Examples
///
/// ```
/// use kastio_index::IndexOptions;
///
/// let opts = IndexOptions::default();
/// assert_eq!(opts.kast.cut_weight, 2);
/// assert!(opts.prefilter.enabled);
/// assert_eq!(opts.cache_capacity, 4096);
/// assert_eq!(opts.shards, 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Kast kernel options (cut weight, cut rule, normalisation) applied to
    /// every pair the index evaluates.
    pub kast: KastOptions,
    /// Byte mode of the trace → string conversion.
    pub byte_mode: ByteMode,
    /// Windowing of the scalar signature used by the prefilter.
    pub signature: SignatureConfig,
    /// Candidate prefilter configuration.
    pub prefilter: PrefilterConfig,
    /// Total capacity of the index-wide pairwise kernel cache (pairs,
    /// shared by all shards; 0 disables caching).
    pub cache_capacity: usize,
    /// OS threads for batch scoring (0 = available parallelism).
    pub threads: usize,
    /// Number of shards the corpus is split across (0 is treated as 1).
    ///
    /// Sharding never changes query results — it changes which lock an
    /// ingest takes and how the prefilter fans out. One shard is the right
    /// choice for single-threaded/embedded use; the serve daemon defaults
    /// to several so ingests stop blocking unrelated queries.
    pub shards: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            kast: KastOptions::default(),
            byte_mode: ByteMode::Preserve,
            signature: SignatureConfig::default(),
            prefilter: PrefilterConfig::default(),
            cache_capacity: 4096,
            threads: 0,
            shards: 1,
        }
    }
}

/// Monotonic counters describing the work an index has done.
///
/// `kernel_evals` counts *query-time* pairwise Kast evaluations (cache
/// misses); self-kernels are reported separately — one per ingested trace
/// in `ingest_evals`, and one per *distinct* cosine query in
/// `query_self_evals` (repeats of a known query reuse the memoised
/// value). `kernel_evals + cache_hits` is the total number of
/// (query, entry) pairs scored, and `prefilter_pruned` the pairs never
/// scored at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Queries answered.
    pub queries: u64,
    /// Pairwise kernel evaluations performed while answering queries.
    pub kernel_evals: u64,
    /// Query pairs answered from the LRU cache.
    pub cache_hits: u64,
    /// Entries skipped by the signature prefilter, summed over queries.
    pub prefilter_pruned: u64,
    /// Self-kernel evaluations performed at ingestion.
    pub ingest_evals: u64,
    /// Self-kernel evaluations performed for (distinct) queries.
    pub query_self_evals: u64,
}

/// [`IndexStats`] as atomics, so concurrent queries can count work while
/// holding only shard *read* locks.
#[derive(Debug, Default)]
struct SharedStats {
    queries: AtomicU64,
    kernel_evals: AtomicU64,
    cache_hits: AtomicU64,
    prefilter_pruned: AtomicU64,
    ingest_evals: AtomicU64,
    query_self_evals: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> IndexStats {
        IndexStats {
            queries: self.queries.load(Ordering::Relaxed),
            kernel_evals: self.kernel_evals.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            prefilter_pruned: self.prefilter_pruned.load(Ordering::Relaxed),
            ingest_evals: self.ingest_evals.load(Ordering::Relaxed),
            query_self_evals: self.query_self_evals.load(Ordering::Relaxed),
        }
    }
}

/// Why an entry was rejected at ingestion: its name or label cannot
/// survive the persistence round trip (`<name>.trace` files plus a
/// whitespace-delimited `<name> <label>` manifest line), so accepting it
/// would poison every later [`crate::save_index`] of the whole corpus.
///
/// Validation happens *at ingest* — not at save time — so a `--save`
/// daemon can never accumulate an entry whose *format* makes its final
/// snapshot fail and lose everything else with it. The guarantee is
/// format-level: environmental limits (a filesystem's file-name length
/// cap on an extreme library-supplied name, disk space, permissions)
/// still surface at save time — loudly (wire `ERR`, `STATS` counters,
/// non-zero daemon exit) and with the previous snapshot left intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The entry name is empty, contains whitespace or a path separator,
    /// or starts with a dot (names become file names on disk).
    InvalidName(String),
    /// The label is empty or contains whitespace (the manifest line
    /// format is whitespace-delimited).
    InvalidLabel(String),
    /// Admitting the entry would push the corpus past the attached memory
    /// budget (see [`PatternIndex::attach_quota`]). Transient, not a
    /// validation failure: the entry itself is fine, the index is full.
    /// The `Display` form is the wire shed message, so the serve daemon's
    /// generic `ERR {error}` rendering produces exactly
    /// `ERR busy reason=memory`.
    OverMemoryBudget,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::InvalidName(name) => write!(
                f,
                "entry name `{}` cannot be persisted \
                 (empty, whitespace, path separator or leading dot)",
                name.escape_debug()
            ),
            IngestError::InvalidLabel(label) => write!(
                f,
                "label `{}` cannot be persisted (empty or whitespace)",
                label.escape_debug()
            ),
            IngestError::OverMemoryBudget => write!(f, "busy reason=memory"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Health of the index's persistence, maintained by [`crate::save_index`]
/// and reported over the wire by `STATS`.
///
/// `last_ok == None` means no snapshot has been attempted yet.
/// `last_generation`/`last_entries` describe the most recent *successful*
/// snapshot; comparing `last_generation` with [`PatternIndex::generation`]
/// tells whether the on-disk snapshot is current (the skip test
/// [`crate::save_index_if_changed`] performs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotStatus {
    /// Successful snapshots so far.
    pub snapshots: u64,
    /// Failed snapshot attempts so far.
    pub errors: u64,
    /// Whether the most recent attempt succeeded (`None`: never tried).
    pub last_ok: Option<bool>,
    /// Corpus generation captured by the last successful snapshot.
    pub last_generation: u64,
    /// Entry count written by the last successful snapshot.
    pub last_entries: usize,
    /// Directory the last successful snapshot went to — the skip test
    /// compares it so a save to one directory never masks a needed save
    /// to another.
    pub last_dir: Option<std::path::PathBuf>,
    /// Wall-clock duration of the last *successful* snapshot write, in
    /// microseconds (0 until one succeeds) — makes `--snapshot-every`
    /// stalls visible through `STATS`/`METRICS`.
    pub last_duration_micros: u64,
    /// Bytes written by the last successful snapshot (trace files plus
    /// the manifest).
    pub last_bytes: u64,
    /// WAL records appended since startup. Maintained live by the
    /// serving layer (overlaid from [`crate::WalManager`] into the copy
    /// `STATS`/`METRICS` render); 0 when the daemon runs without
    /// `--wal`.
    pub wal_records: u64,
    /// WAL bytes appended since startup (frames included). Overlaid like
    /// `wal_records`.
    pub wal_bytes: u64,
    /// WAL group-commit fsyncs since startup (one per dirty shard per
    /// commit pass). Overlaid like `wal_records`.
    pub wal_fsyncs: u64,
    /// WAL records replayed by the last [`crate::load_index`] recovery
    /// (0 for a legacy-layout or snapshot-only load). Set at load time,
    /// not overlaid.
    pub last_replay_records: u64,
}

/// One returned neighbour of a k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The entry's id.
    pub id: EntryId,
    /// The entry's name.
    pub name: String,
    /// The entry's label.
    pub label: String,
    /// Normalised Kast similarity to the query — bit-identical to a direct
    /// [`KastKernel::normalized`] evaluation of the pair.
    pub similarity: f64,
}

/// Monotonic-clock spans measured inside one query, nanoseconds per
/// pipeline stage. Returned on every [`QueryResult`] so the serve
/// daemon can aggregate per-stage histograms and answer
/// `QUERY … trace=1` without a second timing pass; [`merge`] folds the
/// per-item timings of an `MQUERY` batch into one breakdown.
///
/// The stages are disjoint sub-intervals of the query's total wall
/// time, so their sum never exceeds it.
///
/// [`merge`]: QueryTimings::merge
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTimings {
    /// Signature prefilter scan (candidate selection across shards).
    pub prefilter_ns: u64,
    /// Shared kernel-cache lookups plus the post-scoring cache fills.
    pub cache_ns: u64,
    /// Kernel scoring of the cache misses.
    pub kernel_ns: u64,
}

impl QueryTimings {
    /// Accumulates another query's spans into this one.
    pub fn merge(&mut self, other: &QueryTimings) {
        self.prefilter_ns += other.prefilter_ns;
        self.cache_ns += other.cache_ns;
        self.kernel_ns += other.kernel_ns;
    }
}

/// The result of one k-NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Up to `k` nearest entries, descending by similarity (ties broken by
    /// ingestion order, so results are deterministic).
    pub neighbors: Vec<Neighbor>,
    /// Majority-vote label over the returned neighbours; ties are broken
    /// by summed similarity, then lexicographically. `None` on an empty
    /// corpus.
    pub label: Option<String>,
    /// Candidates that survived the prefilter for this query.
    pub candidates: usize,
    /// Full kernel evaluations this query performed (cache misses).
    pub evaluated: usize,
    /// Pairs this query answered from the cache.
    pub cache_hits: usize,
    /// Per-stage monotonic-clock spans measured while answering.
    pub timings: QueryTimings,
}

/// One shard of the corpus: a contiguous id-ordered slice of the entries
/// assigned to it.
///
/// The entry vectors are only mutated under the shard's *write* lock
/// (ingest). Pairwise kernel values live in the index-wide
/// [`SharedKernelCache`], not here — queries hit and fill that cache
/// while holding only shard *read* locks.
#[derive(Debug, Default)]
struct Shard {
    entries: Vec<IndexEntry>,
    signatures: Vec<PatternSignature>,
}

/// The online pattern corpus index.
///
/// All methods take `&self`: the index is internally synchronised (see the
/// [module docs](crate::index) for the sharding and locking model), so a
/// multi-threaded server shares it behind a plain `Arc` with no external
/// lock, queries running concurrently with each other and with ingests
/// into other shards.
///
/// # Shard-assignment invariant
///
/// The entry with [`EntryId`] `i` lives in shard `i % shard_count()`, and
/// ids are allocated contiguously in ingestion order. Placement is
/// therefore deterministic: re-ingesting the same entries in the same
/// order (as [`crate::load_index`] does) reproduces the same shard layout.
///
/// # Examples
///
/// ```
/// use kastio_index::{IndexOptions, PatternIndex};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let index = PatternIndex::new(IndexOptions::default());
/// let writes = parse_trace(&"h0 write 1048576\n".repeat(32))?;
/// let reads = parse_trace(&"h0 read 4096\n".repeat(32))?;
/// index.ingest("ckpt", "checkpoint", writes.clone())?;
/// index.ingest("scan", "analysis", reads)?;
///
/// let result = index.query(&writes, 1);
/// assert_eq!(result.neighbors[0].name, "ckpt");
/// assert_eq!(result.label.as_deref(), Some("checkpoint"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PatternIndex {
    opts: IndexOptions,
    pipeline: PatternPipeline,
    kernel: KastKernel,
    interner: Mutex<TokenInterner>,
    shards: Vec<RwLock<Shard>>,
    /// The index-wide pairwise kernel cache, shared by all shards.
    cache: Arc<SharedKernelCache>,
    /// Byte account the resident corpus is charged against. Unset until
    /// [`PatternIndex::attach_quota`] — an unattached index does no
    /// memory admission at all.
    corpus_account: OnceLock<Account>,
    /// Report-only account carrying the interner's heap footprint —
    /// interned tokens are never evicted, so the bytes are visible to
    /// the quota (and to `STATS`) but are not a reclaim source.
    /// `interner_charged` remembers the bytes charged so far, so each
    /// intern batch charges only its growth.
    interner_account: OnceLock<Account>,
    interner_charged: AtomicU64,
    /// Report-only account carrying the query registry's memoised
    /// entries; released wholesale when the registry resets.
    registry_account: OnceLock<Account>,
    next_id: AtomicU32,
    queries: Mutex<QueryRegistry>,
    stats: SharedStats,
    /// Bumped once per *completed* ingest (after the shard insertion), so
    /// a snapshot that read generation `g` before scanning the shards is
    /// guaranteed to contain every ingest whose bump it observed.
    generation: AtomicU64,
    /// Snapshot health. Locked only for brief reads/updates, so `STATS`
    /// never waits on a save's disk I/O.
    snapshot: Mutex<SnapshotStatus>,
    /// Serialises whole saves (periodic snapshotter vs `SAVE` vs
    /// shutdown) so their directory swaps cannot interleave. Separate
    /// from the status mutex above on purpose.
    save_lock: Mutex<()>,
}

/// Full-content identity of a query string: its exact id and weight
/// vectors. Used instead of a content *hash* so two distinct queries can
/// never alias a cache entry — a collision would silently serve the wrong
/// kernel value and break the bit-identical contract.
type QueryKey = (Vec<TokenId>, Vec<u64>);

/// What the index remembers about a distinct query: its dense id (the
/// query half of pair-cache keys) and its memoised self-kernel.
#[derive(Debug, Clone, Copy)]
struct QueryInfo {
    id: u64,
    self_kernel: Option<f64>,
}

/// Maps distinct query strings to [`QueryInfo`]. Bounded: when it
/// outgrows its capacity it resets together with the per-shard pair
/// caches (the dense ids keep increasing, so even a racy mix of old and
/// new entries could not alias — the reset just keeps memory flat).
#[derive(Debug, Default)]
struct QueryRegistry {
    map: HashMap<QueryKey, QueryInfo>,
    next_id: u64,
}

/// Approximate bytes one memoised registry entry keeps alive: the cloned
/// key vectors plus the map entry itself. Charged to the report-only
/// `query-registry` account on insert and released in bulk on reset.
fn registry_entry_bytes(key: &QueryKey) -> u64 {
    (std::mem::size_of::<(QueryKey, QueryInfo)>()
        + key.0.len() * std::mem::size_of::<TokenId>()
        + key.1.len() * std::mem::size_of::<u64>()) as u64
}

/// A candidate surviving the prefilter: which shard holds it and its
/// position inside that shard's entry vector.
type Candidate = (usize, usize);

impl PatternIndex {
    /// Creates an empty index.
    pub fn new(opts: IndexOptions) -> Self {
        let shard_count = opts.shards.max(1);
        PatternIndex {
            opts,
            pipeline: PatternPipeline::new(opts.byte_mode),
            kernel: KastKernel::new(opts.kast),
            interner: Mutex::new(TokenInterner::new()),
            shards: (0..shard_count).map(|_| RwLock::new(Shard::default())).collect(),
            cache: Arc::new(SharedKernelCache::new(opts.cache_capacity, shard_count)),
            corpus_account: OnceLock::new(),
            interner_account: OnceLock::new(),
            interner_charged: AtomicU64::new(0),
            registry_account: OnceLock::new(),
            next_id: AtomicU32::new(0),
            queries: Mutex::new(QueryRegistry::default()),
            stats: SharedStats::default(),
            generation: AtomicU64::new(0),
            snapshot: Mutex::new(SnapshotStatus::default()),
            save_lock: Mutex::new(()),
        }
    }

    /// The index configuration.
    pub fn options(&self) -> &IndexOptions {
        &self.opts
    }

    /// Number of shards the corpus is split across.
    ///
    /// # Examples
    ///
    /// ```
    /// use kastio_index::{IndexOptions, PatternIndex};
    ///
    /// let index = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
    /// assert_eq!(index.shard_count(), 4);
    /// // 0 is normalised to a single shard.
    /// let single = PatternIndex::new(IndexOptions { shards: 0, ..IndexOptions::default() });
    /// assert_eq!(single.shard_count(), 1);
    /// ```
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of entries in each shard, in shard order. The sum equals
    /// [`PatternIndex::len`], and by the shard-assignment invariant entry
    /// `i` is counted by shard `i % shard_count()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use kastio_index::{IndexOptions, PatternIndex};
    /// use kastio_trace::parse_trace;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let index = PatternIndex::new(IndexOptions { shards: 2, ..IndexOptions::default() });
    /// for i in 0..5 {
    ///     index.ingest(format!("e{i}"), "label", parse_trace("h0 write 64\n")?);
    /// }
    /// assert_eq!(index.shard_sizes(), vec![3, 2]); // ids 0,2,4 and 1,3
    /// # Ok(())
    /// # }
    /// ```
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|shard| read_shard(shard).entries.len()).collect()
    }

    /// The shard that owns (or will own) the entry with the given id —
    /// `id % shard_count()`, the shard-assignment invariant.
    pub fn shard_of(&self, id: EntryId) -> usize {
        id.0 as usize % self.shards.len()
    }

    /// Number of ingested entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| read_shard(shard).entries.len()).sum()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the ingested entries in ingestion (id) order.
    ///
    /// Entries are cloned out of their shards so the snapshot is
    /// self-contained — it stays valid while other threads keep ingesting.
    pub fn entries(&self) -> Vec<IndexEntry> {
        let mut entries: Vec<IndexEntry> =
            self.shards.iter().flat_map(|shard| read_shard(shard).entries.clone()).collect();
        entries.sort_by_key(|e| e.id);
        entries
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> IndexStats {
        self.stats.snapshot()
    }

    /// The corpus generation: the number of completed ingests. A snapshot
    /// taken at generation `g` contains at least every entry whose ingest
    /// completed before `g` was read — the skip test periodic snapshots
    /// use ("unchanged since the last save?") compares this counter with
    /// [`SnapshotStatus::last_generation`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Snapshot health: attempt counters and what the last successful
    /// snapshot covered. Maintained by [`crate::save_index`]. Never
    /// blocks on an in-flight save (the status has its own short-lived
    /// lock), so `STATS` stays responsive while a snapshot writes.
    pub fn snapshot_status(&self) -> SnapshotStatus {
        self.lock_snapshot().clone()
    }

    /// The snapshot-status lock. Held only for brief reads and updates —
    /// never across disk I/O.
    pub(crate) fn lock_snapshot(&self) -> MutexGuard<'_, SnapshotStatus> {
        self.snapshot.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The save serialisation lock: [`crate::save_index`] holds it for
    /// the whole temp-dir-write plus rename dance so two concurrent
    /// saves cannot interleave their directory swaps.
    pub(crate) fn lock_save(&self) -> MutexGuard<'_, ()> {
        self.save_lock.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Number of pairs currently held by the shared kernel cache.
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    /// Wires the index into a memory budget: charges the resident corpus
    /// to a `corpus` account, the kernel cache to a `cache` account, and
    /// registers the cache as the budget's reclaim target (under
    /// pressure the quota clears it, the cheapest memory the index can
    /// give back). After attachment every ingest is *admission
    /// controlled*: an entry whose footprint no longer fits is refused
    /// with [`IngestError::OverMemoryBudget`] instead of growing past
    /// the budget.
    ///
    /// Entries already resident (a corpus preloaded before attachment)
    /// are charged unconditionally — a corpus bigger than the budget
    /// still loads, it just sheds all further ingests.
    ///
    /// At most one attachment sticks; later calls are ignored.
    pub fn attach_quota(&self, quota: &MemoryQuota) {
        let corpus = quota.account("corpus");
        let preloaded: u64 = self
            .shards
            .iter()
            .map(|shard| {
                read_shard(shard)
                    .entries
                    .iter()
                    .map(|e| entry_footprint_bytes(&e.name, &e.label, &e.trace))
                    .sum::<u64>()
            })
            .sum();
        if self.corpus_account.set(corpus).is_err() {
            return;
        }
        if preloaded > 0 {
            if let Some(account) = self.corpus_account.get() {
                account.charge(preloaded);
            }
        }
        self.cache.attach_account(quota.account("cache"));
        let cache = Arc::downgrade(&self.cache);
        quota.set_reclaimer("cache", move |_wanted| {
            cache.upgrade().map_or(0, |cache| cache.clear())
        });
        // Unreclaimable side: the interner and the query registry hold
        // memory the index can never give back, so they are charged to
        // report-only accounts — counted in the root total (and the
        // `mem_unreclaimable_bytes` gauge) but never a reclaim source.
        let interner = quota.report_account("interner");
        let preinterned = self.lock_interner().approx_bytes() as u64;
        if preinterned > 0 {
            interner.charge(preinterned);
        }
        self.interner_charged.store(preinterned, Ordering::Relaxed);
        let _ = self.interner_account.set(interner);
        let _ = self.registry_account.set(quota.report_account("query-registry"));
    }

    /// Runs the trace → weighted string pipeline and interns the result
    /// with the index's shared interner, making the returned string
    /// comparable with every indexed entry (see the [`TokenInterner`]
    /// same-interner invariant).
    pub fn intern_trace(&self, trace: &Trace) -> IdString {
        let string = self.pipeline.string_of_trace(trace);
        let mut interner = self.lock_interner();
        let ids = interner.intern_string(&string);
        if let Some(account) = self.interner_account.get() {
            // Charge the growth while still holding the interner lock, so
            // concurrent interns each account exactly their own delta.
            let now = interner.approx_bytes() as u64;
            let before = self.interner_charged.swap(now, Ordering::Relaxed);
            account.charge(now.saturating_sub(before));
        }
        ids
    }

    fn lock_interner(&self) -> MutexGuard<'_, TokenInterner> {
        self.interner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The kernel the index evaluates (for direct cross-checks).
    pub fn kernel(&self) -> &KastKernel {
        &self.kernel
    }

    /// Ingests one labelled trace, running the full preprocessing pipeline
    /// once: pattern string, interning, self-kernel, cut mass, signature.
    /// Only the owning shard is write-locked, and only for the final
    /// insertion — queries touching other shards proceed undisturbed.
    ///
    /// Names should be unique within an index — persistence writes one
    /// file per name, and later duplicates overwrite earlier ones there.
    ///
    /// # Errors
    ///
    /// [`IngestError`] when the name or label could not survive the
    /// persistence round trip (whitespace, path separators, …); rejecting
    /// such entries *here* keeps every later [`crate::save_index`] of the
    /// corpus saveable. With a quota attached,
    /// [`IngestError::OverMemoryBudget`] when the entry's footprint no
    /// longer fits the budget. Validation and admission both happen
    /// before any id is allocated, so a rejected ingest leaves no gap in
    /// the id sequence.
    ///
    /// # Examples
    ///
    /// ```
    /// use kastio_index::{IndexOptions, PatternIndex};
    /// use kastio_trace::parse_trace;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let index = PatternIndex::new(IndexOptions::default());
    /// let id = index.ingest("ckpt", "checkpoint", parse_trace("h0 write 64\n")?)?;
    /// assert_eq!(id.0, 0);
    /// assert_eq!(index.len(), 1);
    /// assert!(index.ingest("bad name", "checkpoint", parse_trace("h0 write 64\n")?).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn ingest(
        &self,
        name: impl Into<String>,
        label: impl Into<String>,
        trace: Trace,
    ) -> Result<EntryId, IngestError> {
        let (name, label) = (name.into(), label.into());
        if !valid_entry_name(&name) {
            return Err(IngestError::InvalidName(name));
        }
        if !valid_entry_tag(&label) {
            return Err(IngestError::InvalidLabel(label));
        }
        self.admit_entry(&name, &label, &trace)?;
        let id = self.allocate_id();
        Ok(self.ingest_with_id(id, name, label, trace))
    }

    /// [`PatternIndex::ingest`] with the name derived from the allocated
    /// id (`e<id>`), for callers — like the serve daemon — that do not
    /// name entries themselves. Unlike naming by [`PatternIndex::len`],
    /// this is race-free under concurrent ingestion: the id is unique by
    /// construction (and always persistence-safe, so only the label is
    /// validated).
    ///
    /// # Errors
    ///
    /// [`IngestError::InvalidLabel`] when the label could not survive the
    /// persistence round trip.
    pub fn ingest_auto(
        &self,
        label: impl Into<String>,
        trace: Trace,
    ) -> Result<EntryId, IngestError> {
        let label = label.into();
        if !valid_entry_tag(&label) {
            return Err(IngestError::InvalidLabel(label));
        }
        // Admission estimates with the widest name the id could render
        // to ("e" + u32) so the estimate never depends on the id value.
        self.admit_entry("e4294967295", &label, &trace)?;
        let id = self.allocate_id();
        Ok(self.ingest_with_id(id, format!("e{}", id.0), label, trace))
    }

    /// Memory admission for one prospective entry: with a quota attached,
    /// charges its estimated footprint against the corpus account —
    /// refusing (without allocating an id) when it no longer fits. The
    /// `try_charge` under the hood reclaims (clears the kernel cache)
    /// before giving up, so a refusal means the corpus truly cannot grow.
    fn admit_entry(&self, name: &str, label: &str, trace: &Trace) -> Result<(), IngestError> {
        let Some(account) = self.corpus_account.get() else { return Ok(()) };
        if account.try_charge(entry_footprint_bytes(name, label, trace)) {
            Ok(())
        } else {
            Err(IngestError::OverMemoryBudget)
        }
    }

    fn allocate_id(&self) -> EntryId {
        EntryId(self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    fn ingest_with_id(&self, id: EntryId, name: String, label: String, trace: Trace) -> EntryId {
        let string = self.intern_trace(&trace);
        let self_kernel = self.kernel.raw(&string, &string);
        self.stats.ingest_evals.fetch_add(1, Ordering::Relaxed);
        let entry = IndexEntry {
            id,
            name,
            label,
            signature: PatternSignature::of(&trace, self.opts.signature),
            cut_mass: string.weight_at_least(self.opts.kast.cut_weight),
            trace,
            string,
            self_kernel,
        };
        {
            let mut shard = write_shard(&self.shards[self.shard_of(id)]);
            // Concurrent ingests into one shard can reach this point out
            // of id order; insert by id so shard contents are
            // deterministic.
            let at = shard.entries.partition_point(|e| e.id < id);
            shard.signatures.insert(at, entry.signature);
            shard.entries.insert(at, entry);
        }
        // Bumped strictly after the insertion (and after the shard lock is
        // released): a snapshot that observes generation g therefore sees
        // every entry of the g completed ingests in its shard scan.
        self.generation.fetch_add(1, Ordering::SeqCst);
        id
    }

    /// Answers a k-NN query: the up-to-`k` most similar corpus entries and
    /// the majority-vote label.
    ///
    /// Pipeline: convert + intern the query once, prefilter the corpus by
    /// signature distance (fanned across shards), serve cached pairs from
    /// the shared kernel cache, score the remaining candidates in
    /// parallel, merge and rank. Holds *read* locks on the shards, so any
    /// number of queries run concurrently.
    ///
    /// # Examples
    ///
    /// ```
    /// use kastio_index::{IndexOptions, PatternIndex};
    /// use kastio_trace::parse_trace;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let index = PatternIndex::new(IndexOptions { shards: 2, ..IndexOptions::default() });
    /// index.ingest("ckpt", "checkpoint", parse_trace(&"h0 write 1048576\n".repeat(16))?);
    /// index.ingest("scan", "analysis", parse_trace(&"h0 read 4096\n".repeat(16))?);
    ///
    /// let result = index.query(&parse_trace(&"h0 read 4096\n".repeat(12))?, 1);
    /// assert_eq!(result.neighbors.len(), 1);
    /// assert_eq!(result.label.as_deref(), Some("analysis"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn query(&self, trace: &Trace, k: usize) -> QueryResult {
        let query_string = self.intern_trace(trace);
        let query_signature = PatternSignature::of(trace, self.opts.signature);
        self.query_interned(&query_string, &query_signature, k)
    }

    /// Answers one query per trace, in order. Each query parallelises
    /// internally; this is the library half of the wire protocol's
    /// `MQUERY` batching, which amortises framing and round-trips rather
    /// than computation.
    pub fn query_batch(&self, traces: &[Trace], k: usize) -> Vec<QueryResult> {
        traces.iter().map(|trace| self.query(trace, k)).collect()
    }

    /// [`PatternIndex::query`] for a query that is already converted and
    /// interned (by [`PatternIndex::intern_trace`]) with its signature.
    pub fn query_interned(
        &self,
        query: &IdString,
        signature: &PatternSignature,
        k: usize,
    ) -> QueryResult {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);

        // Resolve the query's exact identity (and memoised self-kernel)
        // before taking any shard lock. Lock order: the registry mutex
        // may be acquired *before* shard locks and cache stripe locks
        // (its reset path clears the shared cache while holding it),
        // never after — no code path may take the registry while holding
        // a shard lock or a cache stripe, or the order would cycle.
        let (query_key, query_self) = self.query_identity(query);

        // Read-lock every shard for the duration of the query. Shards are
        // always locked in index order, and writers only ever hold one
        // shard lock, so this cannot deadlock.
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.shards.iter().map(read_shard).collect();
        let shards: Vec<&Shard> = guards.iter().map(|guard| &**guard).collect();
        let total: usize = shards.iter().map(|shard| shard.entries.len()).sum();

        let mut timings = QueryTimings::default();

        let budget = self.opts.prefilter.budget_for(k, total);
        let stage = Instant::now();
        let candidates = self.select_candidates_sharded(&shards, signature, budget, total);
        timings.prefilter_ns = span_ns(stage);
        self.stats.prefilter_pruned.fetch_add((total - candidates.len()) as u64, Ordering::Relaxed);

        // Serve what the shared kernel cache already knows; collect the
        // rest. The cache is keyed by (query, entry) — which shard owns
        // an entry never matters, so a pair warmed by any earlier query
        // hits here regardless of sharding.
        let stage = Instant::now();
        let mut raw_values: Vec<(Candidate, f64)> = Vec::with_capacity(candidates.len());
        let mut misses: Vec<Candidate> = Vec::new();
        for &(s, pos) in &candidates {
            match self.cache.get((query_key, shards[s].entries[pos].id.0)) {
                Some(value) => raw_values.push(((s, pos), value)),
                None => misses.push((s, pos)),
            }
        }
        timings.cache_ns += span_ns(stage);
        let cache_hits = raw_values.len();
        let evaluated = misses.len();
        self.stats.cache_hits.fetch_add(cache_hits as u64, Ordering::Relaxed);
        self.stats.kernel_evals.fetch_add(evaluated as u64, Ordering::Relaxed);

        let stage = Instant::now();
        let scored = self.score_batch(&shards, query, &misses);
        timings.kernel_ns = span_ns(stage);
        let stage = Instant::now();
        for &((s, pos), value) in &scored {
            self.cache.insert((query_key, shards[s].entries[pos].id.0), value);
        }
        timings.cache_ns += span_ns(stage);
        raw_values.extend(scored);

        // Normalise with the precomputed denominators, replicating
        // `KastKernel::normalized(query, entry)` bit for bit.
        let query_mass = query.weight_at_least(self.opts.kast.cut_weight);
        let mut neighbors: Vec<Neighbor> = raw_values
            .into_iter()
            .map(|((s, pos), kab)| {
                let entry = &shards[s].entries[pos];
                let similarity = match self.opts.kast.normalization {
                    Normalization::Cosine => {
                        if kab == 0.0 || query_self <= 0.0 || entry.self_kernel <= 0.0 {
                            0.0
                        } else {
                            kab / (query_self * entry.self_kernel).sqrt()
                        }
                    }
                    Normalization::WeightProduct => {
                        let denom = query_mass as f64 * entry.cut_mass as f64;
                        if denom <= 0.0 {
                            0.0
                        } else {
                            kab / denom
                        }
                    }
                };
                Neighbor {
                    id: entry.id,
                    name: entry.name.clone(),
                    label: entry.label.clone(),
                    similarity,
                }
            })
            .collect();
        neighbors.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        neighbors.truncate(k);
        let label = majority_label(&neighbors);
        QueryResult {
            neighbors,
            label,
            candidates: candidates.len(),
            evaluated,
            cache_hits,
            timings,
        }
    }

    /// Ranks every entry by signature distance and keeps the global
    /// `budget` closest, fanning the per-shard distance scans across
    /// scoped threads when the corpus is large enough to pay for them.
    ///
    /// Ties break by global entry id, so the selected candidate *set* is
    /// identical for every shard count (and identical to the historic
    /// unsharded selection).
    fn select_candidates_sharded(
        &self,
        shards: &[&Shard],
        signature: &PatternSignature,
        budget: usize,
        total: usize,
    ) -> Vec<Candidate> {
        if budget >= total {
            return (0..shards.len())
                .flat_map(|s| (0..shards[s].entries.len()).map(move |pos| (s, pos)))
                .collect();
        }
        // Per-shard: rank the shard's entries, keep at most `budget` (the
        // global winners are a subset of every shard's local winners).
        let rank_shard = |s: usize| -> Vec<(f64, u32, Candidate)> {
            select_candidates_ranked(signature, &shards[s].signatures, budget)
                .into_iter()
                .map(|(dist, pos)| (dist, shards[s].entries[pos].id.0, (s, pos)))
                .collect()
        };
        let mut ranked: Vec<(f64, u32, Candidate)> =
            if shards.len() > 1 && total >= MIN_PARALLEL_PREFILTER {
                std::thread::scope(|scope| {
                    let handles: Vec<_> =
                        (0..shards.len()).map(|s| scope.spawn(move || rank_shard(s))).collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("prefilter shard thread panicked"))
                        .collect()
                })
            } else {
                (0..shards.len()).flat_map(rank_shard).collect()
            };
        // Global top-`budget` by (distance, id) — the same order the
        // unsharded index used, with ids standing in for corpus position.
        let order = |a: &(f64, u32, Candidate), b: &(f64, u32, Candidate)| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        };
        if budget < ranked.len() {
            ranked.select_nth_unstable_by(budget, order);
            ranked.truncate(budget);
        }
        ranked.sort_by(order);
        ranked.into_iter().map(|(_, _, candidate)| candidate).collect()
    }

    /// Resolves the query half of pair-cache keys (a dense id assigned to
    /// the exact string content — never a hash, so distinct queries can
    /// never alias) and the query self-kernel, memoised per distinct
    /// query so repeated queries skip the quadratic `raw(q, q)`.
    ///
    /// The registry mutex is *not* held while the self-kernel is computed
    /// — a concurrent identical query may race to compute the same value,
    /// which is benign (the kernel is deterministic, so both arrive at the
    /// same bits) and keeps a slow first-time query from serialising every
    /// other query behind the registry lock.
    ///
    /// With caching disabled (`cache_capacity == 0`) nothing is
    /// remembered: the self-kernel is recomputed per query, matching the
    /// uncached pair path.
    fn query_identity(&self, query: &IdString) -> (u64, f64) {
        let need_self = self.opts.kast.normalization == Normalization::Cosine;
        let compute_self = || {
            self.stats.query_self_evals.fetch_add(1, Ordering::Relaxed);
            self.kernel.raw(query, query)
        };
        if self.opts.cache_capacity == 0 {
            let query_self = if need_self { compute_self() } else { 0.0 };
            return (0, query_self);
        }
        let key: QueryKey = (query.ids().to_vec(), query.weights().to_vec());
        let id = {
            let mut registry = self.lock_registry();
            // Bound the registry by the cache capacity: past it, reset it
            // together with the shared pair cache (the cache is keyed by
            // these ids, so they retire together).
            if registry.map.len() >= self.opts.cache_capacity && !registry.map.contains_key(&key) {
                registry.map.clear();
                self.cache.clear();
                if let Some(account) = self.registry_account.get() {
                    // The reset frees every memoised entry at once; the
                    // account only ever holds registry bytes, so its own
                    // balance is exactly what to give back.
                    account.release(account.used());
                }
            }
            let QueryRegistry { map, next_id } = &mut *registry;
            let fresh_id = *next_id;
            let info =
                map.entry(key.clone()).or_insert(QueryInfo { id: fresh_id, self_kernel: None });
            if info.id == fresh_id {
                *next_id += 1;
                if let Some(account) = self.registry_account.get() {
                    account.charge(registry_entry_bytes(&key));
                }
            }
            if !need_self {
                return (info.id, 0.0);
            }
            if let Some(value) = info.self_kernel {
                return (info.id, value);
            }
            info.id
        };
        // Compute outside the lock, then publish.
        let value = compute_self();
        let mut registry = self.lock_registry();
        if let Some(info) = registry.map.get_mut(&key) {
            info.self_kernel = Some(value);
        }
        (id, value)
    }

    fn lock_registry(&self) -> MutexGuard<'_, QueryRegistry> {
        self.queries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Scores `query` against the candidates at `misses` (across all
    /// shards), striping the batch over scoped OS threads when it is
    /// large enough to pay for them.
    ///
    /// Each spawned scoring thread owns one warm [`KastEvaluator`], so a
    /// batch of `k` kernel evaluations reuses one set of scratch buffers
    /// instead of allocating per pair; small batches stay on the calling
    /// thread and go through [`KastKernel::raw`], whose per-*thread*
    /// scratch stays warm across queries on a persistent connection
    /// thread. Values are bit-identical either way.
    fn score_batch(
        &self,
        shards: &[&Shard],
        query: &IdString,
        misses: &[Candidate],
    ) -> Vec<(Candidate, f64)> {
        let eval = |evaluator: &mut KastEvaluator, &(s, pos): &Candidate| {
            ((s, pos), evaluator.raw(query, &shards[s].entries[pos].string))
        };
        let threads = effective_threads(self.opts.threads, misses.len());
        if threads <= 1 || misses.len() < MIN_PARALLEL_MISSES {
            let kernel = &self.kernel;
            return misses
                .iter()
                .map(|&(s, pos)| ((s, pos), kernel.raw(query, &shards[s].entries[pos].string)))
                .collect();
        }
        let mut scored: Vec<(Candidate, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut evaluator = KastEvaluator::new(self.opts.kast);
                        let mut acc = Vec::new();
                        let mut at = t;
                        while at < misses.len() {
                            acc.push(eval(&mut evaluator, &misses[at]));
                            at += threads;
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("index scorer thread panicked"))
                .collect()
        });
        // Deterministic merge order regardless of thread count.
        scored.sort_by_key(|&((s, pos), _)| (s, pos));
        scored
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX` (a span that
/// long means the clock is broken anyway).
fn span_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn read_shard(shard: &RwLock<Shard>) -> RwLockReadGuard<'_, Shard> {
    // A panicking query thread cannot leave a shard torn (it holds only
    // read access; cache mutations are LRU-internal and unwind-safe), so a
    // poisoned lock is still safe to reuse.
    shard.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_shard(shard: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    shard.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn effective_threads(requested: usize, work: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        requested
    };
    threads.min(work).max(1)
}

fn majority_label(neighbors: &[Neighbor]) -> Option<String> {
    let mut tally: Vec<(&str, usize, f64)> = Vec::new();
    for n in neighbors {
        match tally.iter_mut().find(|(label, _, _)| *label == n.label) {
            Some((_, votes, mass)) => {
                *votes += 1;
                *mass += n.similarity;
            }
            None => tally.push((&n.label, 1, n.similarity)),
        }
    }
    tally
        .into_iter()
        .max_by(|a, b| {
            a.1.cmp(&b.1)
                .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
                .then(b.0.cmp(a.0))
        })
        .map(|(label, _, _)| label.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;

    fn checkpoint(blocks: usize) -> Trace {
        parse_trace(&"h0 write 1048576\n".repeat(blocks)).unwrap()
    }

    fn scan(blocks: usize) -> Trace {
        parse_trace(&"h0 read 4096\nh0 lseek 0\n".repeat(blocks)).unwrap()
    }

    fn small_index() -> PatternIndex {
        let index = PatternIndex::new(IndexOptions::default());
        for i in 0..4 {
            index.ingest(format!("w{i}"), "write-heavy", checkpoint(16 + i)).unwrap();
            index.ingest(format!("r{i}"), "read-heavy", scan(16 + i)).unwrap();
        }
        index
    }

    #[test]
    fn nearest_neighbor_is_exact() {
        let index = small_index();
        let result = index.query(&checkpoint(16), 3);
        assert_eq!(result.neighbors.len(), 3);
        assert_eq!(result.neighbors[0].name, "w0");
        assert!((result.neighbors[0].similarity - 1.0).abs() < 1e-12);
        assert_eq!(result.label.as_deref(), Some("write-heavy"));
    }

    #[test]
    fn similarity_matches_direct_kernel_evaluation_bitwise() {
        let index = small_index();
        let query_trace = checkpoint(40);
        let query = index.intern_trace(&query_trace);
        let direct: Vec<(String, f64)> = index
            .entries()
            .iter()
            .map(|e| (e.name.clone(), index.kernel().normalized(&query, &e.string)))
            .collect();
        let result = index.query(&query_trace, index.len());
        for n in &result.neighbors {
            let (_, expected) =
                direct.iter().find(|(name, _)| *name == n.name).expect("entry known");
            assert_eq!(
                n.similarity.to_bits(),
                expected.to_bits(),
                "{}: index similarity must be bit-identical to direct evaluation",
                n.name
            );
        }
    }

    #[test]
    fn prefilter_reduces_kernel_evaluations() {
        let index = PatternIndex::new(IndexOptions {
            prefilter: PrefilterConfig { enabled: true, min_candidates: 2, per_k: 1 },
            ..IndexOptions::default()
        });
        for i in 0..6 {
            index.ingest(format!("w{i}"), "w", checkpoint(12 + i)).unwrap();
            index.ingest(format!("r{i}"), "r", scan(12 + i)).unwrap();
        }
        let result = index.query(&checkpoint(12), 1);
        assert_eq!(result.candidates, 2);
        assert_eq!(result.evaluated, 2);
        assert_eq!(index.stats().prefilter_pruned, 10);
        // The signature space separates the two families, so the true
        // nearest neighbour survives the aggressive budget.
        assert_eq!(result.neighbors[0].name, "w0");
    }

    #[test]
    fn repeated_query_is_served_from_cache() {
        let index = small_index();
        let first = index.query(&scan(20), 4);
        assert!(first.evaluated > 0);
        assert_eq!(first.cache_hits, 0);
        let second = index.query(&scan(20), 4);
        assert_eq!(second.evaluated, 0, "all pairs cached");
        assert_eq!(second.cache_hits, first.evaluated + first.cache_hits);
        assert_eq!(first.neighbors, second.neighbors);
        let stats = index.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.kernel_evals, first.evaluated as u64);
        assert_eq!(stats.query_self_evals, 1, "repeat query reuses the memoised self-kernel");
    }

    #[test]
    fn cache_capacity_zero_always_reevaluates() {
        let index =
            PatternIndex::new(IndexOptions { cache_capacity: 0, ..IndexOptions::default() });
        index.ingest("w", "w", checkpoint(8)).unwrap();
        let a = index.query(&checkpoint(8), 1);
        let b = index.query(&checkpoint(8), 1);
        assert_eq!(a.evaluated, 1);
        assert_eq!(b.evaluated, 1);
        assert_eq!(b.cache_hits, 0);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(
            index.stats().query_self_evals,
            2,
            "no caching → the self-kernel is recomputed per query"
        );
    }

    #[test]
    fn query_registry_reset_preserves_correctness() {
        // Capacity 2: the third distinct query forces a registry + cache
        // reset; results must stay identical to an unbounded index.
        let bounded =
            PatternIndex::new(IndexOptions { cache_capacity: 2, ..IndexOptions::default() });
        let unbounded = PatternIndex::new(IndexOptions::default());
        for i in 0..3 {
            bounded.ingest(format!("w{i}"), "w", checkpoint(8 + i)).unwrap();
            unbounded.ingest(format!("w{i}"), "w", checkpoint(8 + i)).unwrap();
        }
        let probes =
            [checkpoint(10), scan(10), checkpoint(20), checkpoint(10), scan(10), checkpoint(20)];
        for probe in &probes {
            let a = bounded.query(probe, 3);
            let b = unbounded.query(probe, 3);
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.label, b.label);
        }
        assert!(
            bounded.stats().query_self_evals > unbounded.stats().query_self_evals,
            "the reset forgot some memoised self-kernels (bounded {} vs unbounded {})",
            bounded.stats().query_self_evals,
            unbounded.stats().query_self_evals
        );
    }

    #[test]
    fn cross_shard_hot_query_warms_the_cache_once() {
        // One shared cache: repeating a query that touches entries in
        // every shard re-evaluates nothing — the warm pairs hit no matter
        // which shard owns them.
        let index = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
        for i in 0..8 {
            index.ingest(format!("w{i}"), "w", checkpoint(8 + i)).unwrap();
        }
        let first = index.query(&checkpoint(10), 8);
        assert!(first.evaluated > 0);
        assert_eq!(first.cache_hits, 0);
        let second = index.query(&checkpoint(10), 8);
        assert_eq!(second.evaluated, 0, "every cross-shard pair was warmed by the first query");
        assert_eq!(second.cache_hits, first.evaluated);
        assert_eq!(first.neighbors, second.neighbors);
        assert_eq!(index.stats().kernel_evals, first.evaluated as u64);
    }

    #[test]
    fn memory_admission_sheds_ingests_once_the_budget_is_full() {
        let quota = MemoryQuota::new(Some(4096));
        let index = PatternIndex::new(IndexOptions::default());
        index.attach_quota(&quota);
        let mut admitted = 0usize;
        let mut shed = false;
        for i in 0..64 {
            match index.ingest(format!("w{i}"), "w", checkpoint(16)) {
                Ok(_) => admitted += 1,
                Err(IngestError::OverMemoryBudget) => {
                    shed = true;
                    break;
                }
                Err(other) => panic!("unexpected ingest error: {other}"),
            }
        }
        assert!(shed, "a 4 KiB budget must fill up");
        assert!(admitted >= 1, "the first entry fits");
        assert_eq!(index.len(), admitted, "a refused ingest leaves no entry and no id gap");
        assert!(quota.used() <= 4096, "admission never exceeds the limit");
        // The index still answers queries after shedding.
        let result = index.query(&checkpoint(16), 1);
        assert_eq!(result.neighbors.len(), 1);
        // The next id is contiguous with the admitted entries.
        assert_eq!(index.entries().last().unwrap().id.0 as usize, admitted - 1);
    }

    #[test]
    fn attach_quota_charges_a_preloaded_corpus() {
        let index = PatternIndex::new(IndexOptions::default());
        index.ingest("w0", "w", checkpoint(16)).unwrap();
        index.ingest("w1", "w", checkpoint(17)).unwrap();
        let quota = MemoryQuota::new(Some(1 << 20));
        index.attach_quota(&quota);
        assert!(quota.used() > 0, "the resident corpus is charged at attachment");
        let before = quota.used();
        index.ingest("w2", "w", checkpoint(18)).unwrap();
        assert!(quota.used() > before, "later ingests keep charging");
    }

    #[test]
    fn empty_corpus_yields_empty_result() {
        let index = PatternIndex::new(IndexOptions::default());
        let result = index.query(&checkpoint(4), 3);
        assert!(result.neighbors.is_empty());
        assert_eq!(result.label, None);
        assert_eq!(result.candidates, 0);
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let index = small_index();
        let result = index.query(&checkpoint(16), 100);
        assert_eq!(result.neighbors.len(), index.len());
    }

    #[test]
    fn majority_vote_breaks_ties_by_similarity_mass() {
        let neighbors = vec![
            Neighbor { id: EntryId(0), name: "a".into(), label: "x".into(), similarity: 0.9 },
            Neighbor { id: EntryId(1), name: "b".into(), label: "y".into(), similarity: 0.2 },
            Neighbor { id: EntryId(2), name: "c".into(), label: "y".into(), similarity: 0.3 },
            Neighbor { id: EntryId(3), name: "d".into(), label: "x".into(), similarity: 0.1 },
        ];
        // Two votes each; x has mass 1.0, y has 0.5.
        assert_eq!(majority_label(&neighbors).as_deref(), Some("x"));
        assert_eq!(majority_label(&[]), None);
    }

    #[test]
    fn parallel_and_sequential_scoring_agree_bitwise() {
        let sequential = PatternIndex::new(IndexOptions {
            threads: 1,
            prefilter: PrefilterConfig { enabled: false, ..PrefilterConfig::default() },
            cache_capacity: 0,
            ..IndexOptions::default()
        });
        let parallel = PatternIndex::new(IndexOptions {
            threads: 4,
            prefilter: PrefilterConfig { enabled: false, ..PrefilterConfig::default() },
            cache_capacity: 0,
            ..IndexOptions::default()
        });
        for i in 0..MIN_PARALLEL_MISSES + 4 {
            sequential.ingest(format!("w{i}"), "w", checkpoint(8 + i)).unwrap();
            parallel.ingest(format!("w{i}"), "w", checkpoint(8 + i)).unwrap();
        }
        let q = scan(10);
        let a = sequential.query(&q, 20);
        let b = parallel.query(&q, 20);
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
        }
    }

    #[test]
    fn weight_product_normalisation_matches_direct_evaluation() {
        let index = PatternIndex::new(IndexOptions {
            kast: KastOptions {
                normalization: Normalization::WeightProduct,
                ..KastOptions::with_cut_weight(2)
            },
            ..IndexOptions::default()
        });
        index.ingest("w", "w", checkpoint(16)).unwrap();
        index.ingest("r", "r", scan(16)).unwrap();
        let query_trace = checkpoint(12);
        let query = index.intern_trace(&query_trace);
        let direct: Vec<f64> =
            index.entries().iter().map(|e| index.kernel().normalized(&query, &e.string)).collect();
        let result = index.query(&query_trace, 2);
        for n in &result.neighbors {
            let expected = direct[n.id.0 as usize];
            assert_eq!(n.similarity.to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn shard_assignment_follows_id_modulo_invariant() {
        let index = PatternIndex::new(IndexOptions { shards: 3, ..IndexOptions::default() });
        for i in 0..8 {
            let id = index.ingest(format!("w{i}"), "w", checkpoint(4 + i)).unwrap();
            assert_eq!(id.0 as usize, i);
            assert_eq!(index.shard_of(id), i % 3);
        }
        assert_eq!(index.shard_sizes(), vec![3, 3, 2]);
        assert_eq!(index.shard_sizes().iter().sum::<usize>(), index.len());
        // The snapshot is globally id-ordered despite the shard split.
        let names: Vec<String> = index.entries().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"]);
    }

    #[test]
    fn sharded_results_are_bit_identical_to_single_shard() {
        let single = PatternIndex::new(IndexOptions::default());
        let sharded = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
        for i in 0..6 {
            single.ingest(format!("w{i}"), "w", checkpoint(10 + i)).unwrap();
            single.ingest(format!("r{i}"), "r", scan(10 + i)).unwrap();
            sharded.ingest(format!("w{i}"), "w", checkpoint(10 + i)).unwrap();
            sharded.ingest(format!("r{i}"), "r", scan(10 + i)).unwrap();
        }
        for probe in [checkpoint(11), scan(13), checkpoint(30)] {
            let a = single.query(&probe, 5);
            let b = sharded.query(&probe, 5);
            assert_eq!(a.candidates, b.candidates, "prefilter selection is shard-independent");
            assert_eq!(a.neighbors.len(), b.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                assert_eq!(x.id, y.id);
                assert_eq!(
                    x.similarity.to_bits(),
                    y.similarity.to_bits(),
                    "sharding must not change kernel values"
                );
            }
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn ingest_auto_names_by_id() {
        let index = PatternIndex::new(IndexOptions { shards: 2, ..IndexOptions::default() });
        index.ingest_auto("w", checkpoint(4)).unwrap();
        index.ingest_auto("r", scan(4)).unwrap();
        let entries = index.entries();
        assert_eq!(entries[0].name, "e0");
        assert_eq!(entries[1].name, "e1");
    }

    #[test]
    fn concurrent_queries_and_ingests_stay_exact() {
        // One writer keeps ingesting new entries while readers hammer the
        // index with queries; every similarity a reader sees must still be
        // the exact kernel value for that (query, entry) pair.
        let index = std::sync::Arc::new(PatternIndex::new(IndexOptions {
            shards: 4,
            ..IndexOptions::default()
        }));
        for i in 0..6 {
            index.ingest(format!("w{i}"), "w", checkpoint(8 + i)).unwrap();
            index.ingest(format!("r{i}"), "r", scan(8 + i)).unwrap();
        }
        let expected: Vec<(String, f64)> = {
            let probe = index.intern_trace(&checkpoint(9));
            index
                .entries()
                .iter()
                .map(|e| (e.name.clone(), index.kernel().normalized(&probe, &e.string)))
                .collect()
        };
        std::thread::scope(|scope| {
            let writer_index = std::sync::Arc::clone(&index);
            scope.spawn(move || {
                for i in 0..8 {
                    writer_index.ingest(format!("x{i}"), "x", checkpoint(40 + i)).unwrap();
                }
            });
            for _ in 0..3 {
                let reader_index = std::sync::Arc::clone(&index);
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let result = reader_index.query(&checkpoint(9), 4);
                        for n in &result.neighbors {
                            if let Some((_, want)) =
                                expected.iter().find(|(name, _)| *name == n.name)
                            {
                                assert_eq!(
                                    n.similarity.to_bits(),
                                    want.to_bits(),
                                    "{}: concurrent query drifted from direct evaluation",
                                    n.name
                                );
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(index.len(), 20);
        assert_eq!(index.shard_sizes().iter().sum::<usize>(), 20);
    }
}
