//! Signature-based candidate prefiltering.
//!
//! A Kast kernel evaluation is quadratic in string length; the scalar
//! pattern signature (burstiness, periodicity, repeatability — §2.1 of the
//! paper, after Liu et al.) costs a linear scan at ingestion time and a
//! three-float distance at query time. The prefilter ranks the corpus by
//! signature distance to the query and hands only the closest `budget`
//! entries to the kernel stage.
//!
//! The prefilter is an *approximation*: it never changes the similarity
//! value reported for an entry it keeps (those are full, exact kernel
//! evaluations), but an aggressive budget can drop a true nearest
//! neighbour whose signature is unusually far from the query's. The
//! defaults keep a generous multiple of `k`.

use kastio_trace::PatternSignature;

/// Configuration of the candidate prefilter.
///
/// # Examples
///
/// ```
/// use kastio_index::PrefilterConfig;
///
/// let cfg = PrefilterConfig::default();
/// assert!(cfg.enabled);
/// assert_eq!(cfg.budget_for(5, 100), 32.max(5 * 4));
/// // Disabled → every entry is a candidate.
/// let off = PrefilterConfig { enabled: false, ..cfg };
/// assert_eq!(off.budget_for(5, 100), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefilterConfig {
    /// Whether the prefilter runs at all. When off, every entry goes to
    /// the kernel stage (exact but slow — the naive baseline).
    pub enabled: bool,
    /// Floor on the number of candidates kept, independent of `k`.
    pub min_candidates: usize,
    /// Candidates kept per requested neighbour: the budget is
    /// `max(min_candidates, k * per_k)`.
    pub per_k: usize,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        PrefilterConfig { enabled: true, min_candidates: 32, per_k: 4 }
    }
}

impl PrefilterConfig {
    /// The number of candidates the kernel stage will see for a `k`-NN
    /// query over `corpus_len` entries.
    pub fn budget_for(&self, k: usize, corpus_len: usize) -> usize {
        if !self.enabled {
            return corpus_len;
        }
        self.min_candidates.max(k.saturating_mul(self.per_k)).min(corpus_len)
    }
}

/// Squared Euclidean distance between two signatures in
/// (burstiness, periodicity, repeatability) space.
///
/// # Examples
///
/// ```
/// use kastio_index::prefilter::signature_distance2;
/// use kastio_trace::PatternSignature;
///
/// let a = PatternSignature { burstiness: 1.0, periodicity: 0.0, repeatability: 0.0 };
/// let b = PatternSignature { burstiness: 0.0, periodicity: 2.0, repeatability: 0.0 };
/// assert_eq!(signature_distance2(&a, &a), 0.0);
/// assert_eq!(signature_distance2(&a, &b), 5.0); // 1² + 2²
/// ```
pub fn signature_distance2(a: &PatternSignature, b: &PatternSignature) -> f64 {
    let db = a.burstiness - b.burstiness;
    let dp = a.periodicity - b.periodicity;
    let dr = a.repeatability - b.repeatability;
    db * db + dp * dp + dr * dr
}

/// Selects the indices of the `budget` entries whose signatures are
/// closest to `query`, ascending by distance (ties broken by index, so the
/// selection is deterministic).
///
/// O(n) partition around the budget boundary plus an O(budget log budget)
/// sort of the kept prefix — the corpus is never fully sorted.
///
/// # Examples
///
/// ```
/// use kastio_index::prefilter::select_candidates;
/// use kastio_trace::PatternSignature;
///
/// let sig = |b: f64| PatternSignature { burstiness: b, periodicity: 0.0, repeatability: 0.0 };
/// let corpus = [sig(0.9), sig(0.1), sig(0.5)];
/// assert_eq!(select_candidates(&sig(0.0), &corpus, 2), vec![1, 2]);
/// ```
pub fn select_candidates(
    query: &PatternSignature,
    signatures: &[PatternSignature],
    budget: usize,
) -> Vec<usize> {
    select_candidates_ranked(query, signatures, budget).into_iter().map(|(_, i)| i).collect()
}

/// [`select_candidates`] keeping the squared distances alongside the
/// indices — the form the sharded index merges across shards (a shard's
/// local top-`budget` is a superset of its contribution to the global
/// top-`budget`, so per-shard calls to this function followed by a global
/// `(distance, id)` selection reproduce the unsharded candidate set
/// exactly).
pub fn select_candidates_ranked(
    query: &PatternSignature,
    signatures: &[PatternSignature],
    budget: usize,
) -> Vec<(f64, usize)> {
    let mut ranked: Vec<(f64, usize)> = signatures
        .iter()
        .enumerate()
        .map(|(i, sig)| (signature_distance2(query, sig), i))
        .collect();
    let order = |a: &(f64, usize), b: &(f64, usize)| {
        a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    };
    if budget < ranked.len() {
        ranked.select_nth_unstable_by(budget, order);
        ranked.truncate(budget);
    }
    ranked.sort_by(order);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(b: f64, p: f64, r: f64) -> PatternSignature {
        PatternSignature { burstiness: b, periodicity: p, repeatability: r }
    }

    #[test]
    fn distance_is_zero_on_equal_signatures() {
        let s = sig(0.2, -0.4, 0.9);
        assert_eq!(signature_distance2(&s, &s), 0.0);
    }

    #[test]
    fn closest_signatures_are_selected_first() {
        let q = sig(0.0, 0.0, 0.0);
        let corpus = vec![sig(0.9, 0.0, 0.0), sig(0.1, 0.0, 0.0), sig(0.5, 0.0, 0.0)];
        assert_eq!(select_candidates(&q, &corpus, 2), vec![1, 2]);
        assert_eq!(select_candidates(&q, &corpus, 5), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let q = sig(0.0, 0.0, 0.0);
        let corpus = vec![sig(0.5, 0.0, 0.0), sig(-0.5, 0.0, 0.0), sig(0.0, 0.5, 0.0)];
        assert_eq!(select_candidates(&q, &corpus, 3), vec![0, 1, 2]);
    }

    #[test]
    fn ranked_selection_carries_distances() {
        let q = sig(0.0, 0.0, 0.0);
        let corpus = vec![sig(0.3, 0.0, 0.0), sig(0.1, 0.0, 0.0)];
        let ranked = select_candidates_ranked(&q, &corpus, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].1, 1);
        assert!((ranked[0].0 - 0.01).abs() < 1e-12);
        assert!((ranked[1].0 - 0.09).abs() < 1e-12);
        // The index-only form is the same selection, distances dropped.
        assert_eq!(select_candidates(&q, &corpus, 2), vec![1, 0]);
    }

    #[test]
    fn budget_formula() {
        let cfg = PrefilterConfig { enabled: true, min_candidates: 8, per_k: 3 };
        assert_eq!(cfg.budget_for(1, 100), 8);
        assert_eq!(cfg.budget_for(4, 100), 12);
        assert_eq!(cfg.budget_for(4, 10), 10, "budget clamps to the corpus");
    }
}
