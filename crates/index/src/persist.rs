//! Crash-tolerant persistence: atomic snapshots of an index corpus as
//! plain-text trace files.
//!
//! The on-disk layout is [`kastio_trace::corpus`]'s — the same one the
//! batch tools speak: a directory of `<name>.trace` files plus a
//! `MANIFEST` of `<name> <label>` lines. A dataset exported by `kastio
//! generate` therefore loads directly into an index (the category tags
//! become labels), and a corpus built up over a serving session survives
//! restarts.
//!
//! # Atomicity protocol
//!
//! [`save_index`] never modifies the last good snapshot in place. A save
//! of corpus directory `corpus/` runs:
//!
//! ```text
//! 1. write the full corpus into a fresh sibling   corpus.tmp/
//!    (per-file temp+rename inside, MANIFEST last — write_corpus)
//! 2. rename corpus/      → corpus.prev/           (if corpus/ exists)
//! 3. rename corpus.tmp/  → corpus/
//! 4. remove corpus.prev/                          (best effort)
//! ```
//!
//! A crash at any point leaves a loadable state: before step 2 the old
//! `corpus/` is untouched; between steps 2 and 3 the old snapshot sits
//! complete in `corpus.prev/`, which [`load_index`] renames back; after
//! step 3 the new snapshot is in place (a leftover `corpus.prev/` is
//! ignored and cleaned by the next save). The sibling names
//! `corpus.tmp` and `corpus.prev` are **reserved** — a save deletes
//! whatever occupies them. A directory that rename cannot swap (a mount
//! point, `.`, a path ending in `..`) falls back to the in-place
//! per-file-atomic writer instead of failing every save. Saves are
//! serialised on the index's save lock (separate from the briefly-held
//! status lock, so `STATS` never waits on a snapshot's disk I/O), so
//! concurrent `SAVE` requests and the periodic [`Snapshotter`] cannot
//! interleave their directory swaps. On its own this protects against
//! *process* crashes; pairing it with the write-ahead log
//! ([`crate::WalManager`], the daemon's `--wal` flag) closes the
//! remaining power-loss window between saves.
//!
//! # The WAL layout
//!
//! With a WAL attached, `<dir>` is no longer the snapshot — it is the
//! *durable root*, holding two fixed children:
//!
//! ```text
//! <dir>/snapshot/        the swapped corpus (same protocol, one level down)
//! <dir>/wal/shard<i>.log append-only logs at stable paths
//! ```
//!
//! The snapshot must move down a level because the atomic save is a
//! whole-directory swap: swapping `<dir>` itself would unlink the live
//! log files and lose every acked-but-unsnapshotted ingest on a crash.
//! [`save_index_wal`] snapshots `<dir>/snapshot` and then compacts the
//! logs; [`load_index`] auto-detects the layout (a `snapshot/` or `wal/`
//! child marks the durable root) and recovers as *last good snapshot +
//! WAL replay*, truncating a torn log tail at the first bad CRC instead
//! of failing. Replay applies records in id order starting at the
//! snapshot's generation and stops at the first id gap: group commit
//! orders fsyncs, so nothing past a missing record was ever
//! acknowledged.
//!
//! Sharding round-trips deterministically without being written to disk
//! at all: entries are saved in id (ingestion) order, the manifest
//! preserves that order, and shard placement is the pure function
//! `id % shards` — so reloading with the same shard count reproduces the
//! exact shard layout, and reloading with a *different* shard count is
//! also fine (placement is a serving-time detail; query results are
//! shard-independent).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use kastio_trace::wal::{scan_wal, snapshot_dir, wal_dir};
use kastio_trace::{read_corpus, write_corpus, CorpusIoError};

use crate::fault::{crash_point, CRASH_AFTER_SNAPSHOT_RENAME};
use crate::index::{IndexOptions, PatternIndex};
use crate::wal::WalManager;

/// What a successful [`save_index`] wrote: the entry count and the corpus
/// generation the snapshot covers (the `SAVE` verb reports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Entries written to the snapshot.
    pub entries: usize,
    /// The corpus generation the snapshot equals: the snapshot is
    /// exactly the corpus as it stood after this many completed ingests
    /// (a contiguous id prefix — see [`save_index`] on id gaps).
    pub generation: u64,
}

/// `<dir>.<suffix>` as a sibling of `dir` (same parent directory, so the
/// final rename into place cannot cross filesystems).
fn sibling(dir: &Path, suffix: &str) -> PathBuf {
    let mut name = dir.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".{suffix}"));
    dir.with_file_name(name)
}

/// Removes whatever sits at `path` — file, directory, or nothing.
fn remove_artifact(path: &Path) -> io::Result<()> {
    match fs::symlink_metadata(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
        Ok(meta) if meta.is_dir() => fs::remove_dir_all(path),
        Ok(_) => fs::remove_file(path),
    }
}

/// Writes every entry of `index` into `dir` as an **atomic snapshot**:
/// `<name>.trace` files plus a `MANIFEST` of `<name> <label>` lines (in
/// ingestion order, so a reload reproduces ids and shard placement),
/// written into a fresh `<dir>.tmp` sibling and renamed into place — the
/// previous snapshot is preserved (as `<dir>.prev` during the swap) until
/// the new one is complete, so a crash or IO error mid-save can never
/// corrupt the last good snapshot (see the [module docs](self) for the
/// full protocol). The sibling paths `<dir>.tmp` and `<dir>.prev` are
/// **reserved**: whatever sits at them is deleted by a save, so do not
/// keep unrelated data there.
///
/// A directory that cannot be swapped by rename — a mount point, `.`, a
/// path ending in `..` — falls back to the in-place writer (still
/// per-file atomic with `MANIFEST` written last), so such a target keeps
/// saving instead of failing forever; only the whole-directory atomicity
/// is reduced for it.
///
/// The entry scan runs under shard *read* locks only, so a daemon keeps
/// answering queries while it snapshots. The index's
/// [`crate::index::SnapshotStatus`] is updated on both success and
/// failure (under its own short-lived lock, so `STATS` never waits on
/// disk I/O), and concurrent saves are serialised on a separate save
/// lock.
///
/// # Errors
///
/// Returns [`CorpusIoError`] on any filesystem failure; the previous
/// snapshot (if any) is still intact and loadable in that case.
pub fn save_index(index: &PatternIndex, dir: &Path) -> Result<SnapshotInfo, CorpusIoError> {
    save_index_with(index, dir, None)
}

/// [`save_index`] for a WAL-attached daemon: the snapshot goes to
/// `<dir>/snapshot` (the durable-root layout — see the [module
/// docs](self)) and, once it has landed, the shard logs are compacted to
/// the records the snapshot does not cover (`id ≥ generation`).
///
/// Compaction failure is deliberately *not* a save failure: the snapshot
/// is complete and the uncompacted records are redundant but harmless
/// (replay skips ids below the snapshot's generation), so the daemon
/// reports success and retries compaction at the next save. With
/// `wal == None` this is exactly [`save_index`].
///
/// # Errors
///
/// Whatever [`save_index`] reports.
pub fn save_index_wal(
    index: &PatternIndex,
    dir: &Path,
    wal: Option<&WalManager>,
) -> Result<SnapshotInfo, CorpusIoError> {
    save_index_with(index, dir, wal)
}

fn save_index_with(
    index: &PatternIndex,
    dir: &Path,
    wal: Option<&WalManager>,
) -> Result<SnapshotInfo, CorpusIoError> {
    // Held for the whole swap: serialises concurrent saves (periodic
    // snapshotter vs SAVE vs shutdown) so their directory swaps cannot
    // interleave. Shard read locks nest inside it; no ingest or query
    // path takes it, so no cycle. Status is NOT guarded by this lock —
    // it has its own mutex, locked only briefly below, so STATS readers
    // never stall behind a slow disk.
    let _save_guard = index.lock_save();
    // Persist only the contiguous id prefix of the scan. Concurrent
    // ingests can leave an id *gap* (id 5 allocated but not yet inserted
    // while id 6 already is); saving the gapped set would renumber
    // entries on reload and let a later `ingest_auto` reuse an existing
    // `e<id>` name, silently aliasing two entries onto one trace file.
    // The prefix `0..k` is exactly the corpus as of generation `k`
    // (ids are dense and entries immutable once ingested), so recording
    // `last_generation = k` keeps the skip test sound — and any entry
    // beyond a gap was ingested after generation `k`, so a later save
    // (the exit-path one runs with all handlers joined, hence gap-free)
    // necessarily picks it up.
    let mut entries = index.entries();
    entries.truncate(contiguous_prefix(&entries));
    let generation = entries.len() as u64;
    let started = std::time::Instant::now();
    // Durable-root layout: the swapped unit is `<dir>/snapshot`, so the
    // live logs under `<dir>/wal` keep their paths across the swap.
    let target = match wal {
        Some(_) => {
            if let Err(e) = fs::create_dir_all(dir) {
                let mut status = index.lock_snapshot();
                status.errors += 1;
                status.last_ok = Some(false);
                return Err(e.into());
            }
            snapshot_dir(dir)
        }
        None => dir.to_path_buf(),
    };
    let result = write_snapshot(&target, &entries);
    if result.is_ok() {
        if let Some(wal) = wal {
            crash_point(CRASH_AFTER_SNAPSHOT_RENAME);
            // Non-fatal (see save_index_wal): the snapshot is already
            // durable; stale records merely wait for the next pass.
            if let Err(e) = wal.compact(generation) {
                eprintln!("kastio snapshot: WAL compaction in {} failed: {e}", dir.display());
            }
        }
    }
    let duration_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut status = index.lock_snapshot();
    match result {
        Ok(bytes) => {
            status.snapshots += 1;
            status.last_ok = Some(true);
            status.last_generation = generation;
            status.last_entries = entries.len();
            status.last_dir = Some(dir.to_path_buf());
            status.last_duration_micros = duration_micros;
            status.last_bytes = bytes;
            Ok(SnapshotInfo { entries: entries.len(), generation })
        }
        Err(e) => {
            status.errors += 1;
            status.last_ok = Some(false);
            Err(e)
        }
    }
}

/// Length of the leading run of entries whose ids are exactly
/// `0, 1, 2, …` — the longest prefix that is guaranteed to reload with
/// identical ids (and therefore identical shard placement and no
/// `e<id>` name collisions for future auto-named ingests).
fn contiguous_prefix(entries: &[crate::entry::IndexEntry]) -> usize {
    entries.iter().enumerate().take_while(|(i, e)| e.id.0 as usize == *i).count()
}

/// The directory-level atomic write: fresh temp dir, double rename, with
/// an in-place fallback for directories rename cannot swap. Returns the
/// bytes the snapshot wrote.
fn write_snapshot(dir: &Path, entries: &[crate::entry::IndexEntry]) -> Result<u64, CorpusIoError> {
    let corpus = |target: &Path| {
        write_corpus(target, entries.iter().map(|e| (e.name.as_str(), e.label.as_str(), &e.trace)))
    };
    let tmp = sibling(dir, "tmp");
    // A stale temp dir from a crashed save is dead weight; clear it so
    // this save starts from an empty directory.
    remove_artifact(&tmp)?;
    let bytes = corpus(&tmp)?;
    match swap_into_place(dir, &tmp) {
        Ok(()) => Ok(bytes),
        // `dir` itself cannot be renamed (mount point, `.`, `..`, cross-
        // device edge cases). It is still intact — swap_into_place restores
        // it on a half-failed swap — so degrade to the in-place per-file-
        // atomic writer rather than never saving at all.
        Err(_) => {
            let _ = remove_artifact(&tmp);
            corpus(dir)
        }
    }
}

/// Steps 2–4 of the atomicity protocol: move the old snapshot aside,
/// move the new one into place, drop the old one. If the second rename
/// fails the old snapshot is restored, so the caller always finds `dir`
/// in a complete state afterwards, success or failure.
fn swap_into_place(dir: &Path, tmp: &Path) -> io::Result<()> {
    let prev = sibling(dir, "prev");
    if dir.exists() {
        remove_artifact(&prev)?;
        fs::rename(dir, &prev)?;
        if let Err(e) = fs::rename(tmp, dir) {
            let _ = fs::rename(&prev, dir); // put the old snapshot back
            return Err(e);
        }
        // The new snapshot is in place; failing to clean the old one up
        // is not a save failure (load_index ignores `.prev` when `dir`
        // exists).
        let _ = remove_artifact(&prev);
        Ok(())
    } else {
        fs::rename(tmp, dir)
    }
}

/// [`save_index`], skipped when the on-disk snapshot is already current:
/// the last save succeeded, it went to this same `dir` (a save to one
/// directory never suppresses a needed save to another), the corpus
/// generation has not moved since, and the snapshot directory still has
/// its `MANIFEST`. Returns `Ok(None)` on a skip. This is the idle-cycle
/// test the periodic [`Snapshotter`] and the daemon's exit path use.
///
/// # Errors
///
/// Whatever [`save_index`] reports.
pub fn save_index_if_changed(
    index: &PatternIndex,
    dir: &Path,
) -> Result<Option<SnapshotInfo>, CorpusIoError> {
    save_index_if_changed_wal(index, dir, None)
}

/// [`save_index_if_changed`] for a WAL-attached daemon: the currency
/// check looks for the manifest under `<dir>/snapshot` (the durable-root
/// layout) and a run that does save goes through [`save_index_wal`], so
/// it also compacts the logs.
///
/// # Errors
///
/// Whatever [`save_index`] reports.
pub fn save_index_if_changed_wal(
    index: &PatternIndex,
    dir: &Path,
    wal: Option<&WalManager>,
) -> Result<Option<SnapshotInfo>, CorpusIoError> {
    let manifest = match wal {
        Some(_) => snapshot_dir(dir).join("MANIFEST"),
        None => dir.join("MANIFEST"),
    };
    let status = index.snapshot_status();
    if status.last_ok == Some(true)
        && status.last_dir.as_deref() == Some(dir)
        && status.last_generation == index.generation()
        && manifest.exists()
    {
        return Ok(None);
    }
    save_index_with(index, dir, wal).map(Some)
}

/// Loads a corpus directory (written by [`save_index`] or by the dataset
/// exporter) into a fresh index with the given options, ingesting entries
/// in manifest order.
///
/// If `dir` itself is missing but a `<dir>.prev` sibling exists, the load
/// first renames `.prev` back into place: that is exactly the state a
/// crash between the two renames of an atomic save leaves behind, and the
/// `.prev` directory holds the complete previous snapshot.
///
/// A directory with a `snapshot/` or `wal/` child is recognised as a
/// **durable root** written by a `--wal` daemon and recovered as *last
/// good snapshot + WAL replay*: the interrupted-swap repair applies to
/// the `snapshot/` child, every `wal/shard<i>.log` is scanned for its
/// longest valid record prefix (a torn tail is truncated in place, never
/// an error), and the records are applied in id order from the
/// snapshot's generation up to the first id gap — group commit orders
/// fsyncs, so nothing past a gap was ever acknowledged. The count of
/// replayed records lands in
/// [`crate::index::SnapshotStatus::last_replay_records`].
///
/// # Errors
///
/// Propagates [`CorpusIoError`] from the directory walk (missing or
/// malformed manifest entries and trace files), including
/// [`CorpusIoError::BadEntry`] for manifest names or tags the index
/// rejects at ingestion (for example path-traversing names) — rejecting
/// them here keeps the loaded corpus saveable.
pub fn load_index(dir: &Path, opts: IndexOptions) -> Result<PatternIndex, CorpusIoError> {
    let snapshot = snapshot_dir(dir);
    if snapshot.exists() || sibling(&snapshot, "prev").is_dir() || wal_dir(dir).is_dir() {
        return load_durable_root(dir, opts);
    }
    let prev = sibling(dir, "prev");
    if !dir.exists() && prev.is_dir() {
        // Complete the interrupted swap of a crashed save.
        fs::rename(&prev, dir)?;
    }
    let index = PatternIndex::new(opts);
    for entry in read_corpus(dir)? {
        index
            .ingest(entry.name, entry.tag, entry.trace)
            .map_err(|e| CorpusIoError::BadEntry { field: e.to_string() })?;
    }
    Ok(index)
}

/// Recovery for the `--wal` durable-root layout: last good snapshot +
/// WAL replay (see [`load_index`]).
fn load_durable_root(dir: &Path, opts: IndexOptions) -> Result<PatternIndex, CorpusIoError> {
    let snapshot = snapshot_dir(dir);
    let prev = sibling(&snapshot, "prev");
    if !snapshot.exists() && prev.is_dir() {
        fs::rename(&prev, &snapshot)?;
    }
    let index = PatternIndex::new(opts);
    if snapshot.is_dir() {
        for entry in read_corpus(&snapshot)? {
            index
                .ingest(entry.name, entry.tag, entry.trace)
                .map_err(|e| CorpusIoError::BadEntry { field: e.to_string() })?;
        }
    }
    let replayed = replay_wal(&index, dir)?;
    index.lock_snapshot().last_replay_records = replayed;
    Ok(index)
}

/// Scans every shard log under `<dir>/wal`, truncates torn tails, and
/// applies the durable records the snapshot does not already contain.
/// Returns how many records were applied.
fn replay_wal(index: &PatternIndex, dir: &Path) -> Result<u64, CorpusIoError> {
    let wal = wal_dir(dir);
    let entries = match fs::read_dir(&wal) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if !name.starts_with("shard") || !name.ends_with(".log") {
            continue;
        }
        let scan = scan_wal(&fs::read(&path)?);
        if scan.truncated {
            // Cut the torn tail so the next daemon appends after the
            // durable prefix, not after garbage. Best effort: recovery
            // itself must succeed even on a read-only filesystem.
            if let Ok(file) = fs::OpenOptions::new().write(true).open(&path) {
                let _ = file.set_len(scan.durable_bytes);
            }
        }
        records.extend(scan.records);
    }
    // Records arrive per shard; globally they are one id sequence.
    records.sort_by_key(|r| r.id);
    let mut expected = u32::try_from(index.len()).unwrap_or(u32::MAX);
    let mut replayed = 0u64;
    for record in records {
        if record.id < expected {
            continue; // already covered by the snapshot
        }
        if record.id > expected {
            break; // id gap: nothing past it was ever acked
        }
        index
            .ingest(record.name, record.label, record.trace)
            .map_err(|e| CorpusIoError::BadEntry { field: e.to_string() })?;
        expected += 1;
        replayed += 1;
    }
    Ok(replayed)
}

/// A background thread that snapshots an index every `interval`, skipping
/// cycles where the corpus generation has not moved (via
/// [`save_index_if_changed`]). Snapshots run from shard *read* locks, so
/// queries keep flowing while one is written; failures are reported on
/// stderr and counted in the index's [`crate::index::SnapshotStatus`]
/// (visible over the wire in `STATS`).
///
/// Dropping the handle stops the thread promptly (it does not wait out
/// the interval) and joins it; an in-flight snapshot completes first.
#[derive(Debug)]
pub struct Snapshotter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Snapshotter {
    /// Starts the snapshot daemon thread for `index`, writing to `dir`
    /// every `interval` (when the corpus changed).
    pub fn start(index: Arc<PatternIndex>, dir: PathBuf, interval: Duration) -> Snapshotter {
        Snapshotter::start_with_wal(index, dir, interval, None)
    }

    /// [`Snapshotter::start`] for a WAL-attached daemon: periodic saves
    /// go through [`save_index_if_changed_wal`], so each one also
    /// compacts the shard logs.
    pub fn start_with_wal(
        index: Arc<PatternIndex>,
        dir: PathBuf,
        interval: Duration,
        wal: Option<Arc<WalManager>>,
    ) -> Snapshotter {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("kastio-snapshot".to_string())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut stopped = lock.lock().unwrap_or_else(|p| p.into_inner());
                while !*stopped {
                    let (guard, timeout) =
                        cvar.wait_timeout(stopped, interval).unwrap_or_else(|p| p.into_inner());
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        // Save without holding the stop mutex, so stop()
                        // only ever waits for an in-flight save, never
                        // for a full interval.
                        drop(stopped);
                        if let Err(e) = save_index_if_changed_wal(&index, &dir, wal.as_deref()) {
                            eprintln!("kastio snapshot: save to {} failed: {e}", dir.display());
                        }
                        stopped = lock.lock().unwrap_or_else(|p| p.into_inner());
                    }
                }
            })
            .expect("snapshot thread spawns");
        Snapshotter { stop, handle: Some(handle) }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;
    use std::collections::BTreeMap;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kastio-index-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(sibling(&dir, "tmp"));
        let _ = fs::remove_dir_all(sibling(&dir, "prev"));
        dir
    }

    fn sample_index(opts: IndexOptions) -> PatternIndex {
        let index = PatternIndex::new(opts);
        index
            .ingest("ckpt", "flash", parse_trace(&"h0 write 1048576\n".repeat(8)).unwrap())
            .unwrap();
        index.ingest("scan", "posix", parse_trace(&"h0 read 4096\n".repeat(8)).unwrap()).unwrap();
        index
    }

    /// Every regular file in `dir` with its exact bytes, for bit-for-bit
    /// before/after comparisons.
    fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
        fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name().to_string_lossy().into_owned(), fs::read(e.path()).unwrap())
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_entries_and_results() {
        let dir = tmpdir("roundtrip");
        let original = sample_index(IndexOptions::default());
        let info = save_index(&original, &dir).unwrap();
        assert_eq!(info, SnapshotInfo { entries: 2, generation: 2 });
        let status = original.snapshot_status();
        let on_disk: u64 =
            fs::read_dir(&dir).unwrap().map(|e| e.unwrap().metadata().unwrap().len()).sum();
        assert_eq!(status.last_bytes, on_disk, "snapshot bytes are what landed on disk");
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.generation(), 2, "reload replays every ingest");
        let q = parse_trace(&"h0 write 1048576\n".repeat(6)).unwrap();
        let a = original.query(&q, 2);
        let b = restored.query(&q, 2);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.label, b.label);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roundtrip_reproduces_shard_placement() {
        let dir = tmpdir("shards");
        let opts = IndexOptions { shards: 3, ..IndexOptions::default() };
        let original = sample_index(opts);
        original.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        save_index(&original, &dir).unwrap();

        // Same shard count → identical placement, entry for entry.
        let restored = load_index(&dir, opts).unwrap();
        assert_eq!(restored.shard_sizes(), original.shard_sizes());
        let (a, b) = (original.entries(), restored.entries());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            assert_eq!(x.label, y.label);
        }

        // Different shard count → same corpus, same query answers.
        let reshaped =
            load_index(&dir, IndexOptions { shards: 2, ..IndexOptions::default() }).unwrap();
        let q = parse_trace(&"h0 write 1048576\n".repeat(6)).unwrap();
        let want = original.query(&q, 3);
        let got = reshaped.query(&q, 3);
        assert_eq!(want.neighbors, got.neighbors);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loads_generated_dataset_layout() {
        // The dataset MANIFEST (`<name> <category-tag>`) is a valid index
        // manifest: tags become labels.
        let dir = tmpdir("dataset");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "A00 A\nB00 B\n").unwrap();
        fs::write(dir.join("A00.trace"), "h0 write 64\n").unwrap();
        fs::write(dir.join("B00.trace"), "h0 lseek 0\nh0 read 8\n").unwrap();
        let index = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index.entries()[0].label, "A");
        assert_eq!(index.entries()[1].name, "B00");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_errors_propagate() {
        let dir = tmpdir("badline");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "only-one-field\n").unwrap();
        let err = load_index(&dir, IndexOptions::default()).unwrap_err();
        assert!(matches!(err, CorpusIoError::BadManifest { line: 1 }), "{err}");

        fs::write(dir.join("MANIFEST"), "ghost X\n").unwrap();
        let err = load_index(&dir, IndexOptions::default()).unwrap_err();
        assert!(matches!(err, CorpusIoError::MissingTrace { .. }), "{err}");
        assert!(err.to_string().contains("ghost"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsafe_manifest_names_are_rejected_at_load() {
        // A hand-edited (or malicious) manifest can smuggle names the
        // wire protocol never could — path traversal here. Loading must
        // reject them, not ingest an entry that poisons every later save.
        let dir = tmpdir("evil-manifest");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "../escape A\n").unwrap();
        fs::write(dir.join("../escape.trace"), "h0 write 64\n").unwrap();
        let err = load_index(&dir, IndexOptions::default()).unwrap_err();
        assert!(matches!(&err, CorpusIoError::BadEntry { field } if field.contains("escape")));
        let _ = fs::remove_file(dir.join("../escape.trace"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_save_leaves_previous_snapshot_bit_for_bit() {
        let dir = tmpdir("fault");
        let index = sample_index(IndexOptions::default());
        save_index(&index, &dir).unwrap();
        let before = dir_bytes(&dir);

        // A 300-byte name passes manifest validation but exceeds the
        // filesystem's file-name limit: the temp-dir write fails with a
        // real IO error mid-snapshot, exactly like a torn save.
        index.ingest("x".repeat(300), "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        let err = save_index(&index, &dir).unwrap_err();
        assert!(matches!(err, CorpusIoError::Io(_)), "{err}");

        // The previous snapshot is untouched, bit for bit, and loadable.
        assert_eq!(dir_bytes(&dir), before);
        assert_eq!(load_index(&dir, IndexOptions::default()).unwrap().len(), 2);

        // The failure is visible in the status counters.
        let status = index.snapshot_status();
        assert_eq!(status.errors, 1);
        assert_eq!(status.last_ok, Some(false));
        assert_eq!(status.snapshots, 1);
        let _ = fs::remove_dir_all(sibling(&dir, "tmp"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_swap_is_recovered_on_load() {
        let dir = tmpdir("swap");
        let index = sample_index(IndexOptions::default());
        save_index(&index, &dir).unwrap();
        let saved = dir_bytes(&dir);

        // Simulate a crash between the two renames of the next save: the
        // old snapshot has moved to `.prev`, the new one never landed.
        let prev = sibling(&dir, "prev");
        fs::rename(&dir, &prev).unwrap();
        let half = sibling(&dir, "tmp");
        fs::create_dir_all(&half).unwrap();
        fs::write(half.join("e9.trace"), "h0 write 1\n").unwrap(); // no MANIFEST: torn

        let recovered = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(recovered.len(), 2, "the previous snapshot is recovered");
        assert_eq!(dir_bytes(&dir), saved, "recovery restores the old bytes untouched");
        assert!(!prev.exists(), "recovery completes the rename");

        // The next save clears the stale temp dir and lands normally.
        index.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        save_index(&index, &dir).unwrap();
        assert!(!half.exists(), "stale temp dir cleared by the next save");
        assert_eq!(load_index(&dir, IndexOptions::default()).unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_persist_only_the_contiguous_id_prefix() {
        // A concurrent-ingest id gap (id 2 allocated but not yet
        // inserted while id 3 already is) must not be persisted: on
        // reload the entries would renumber and a later auto-named
        // ingest would reuse an existing `e<id>` name, aliasing two
        // entries onto one trace file.
        let index = sample_index(IndexOptions::default());
        index.ingest("third", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        index.ingest("fourth", "flash", parse_trace("h0 write 32\n").unwrap()).unwrap();
        let mut entries = index.entries();
        assert_eq!(contiguous_prefix(&entries), 4, "dense ids: whole corpus");
        entries.remove(2); // simulate the in-flight gap at id 2
        assert_eq!(contiguous_prefix(&entries), 2, "stop at the first gap");
        assert_eq!(contiguous_prefix(&entries[..0]), 0, "empty corpus");

        // End to end: a gap-free save reports generation == entries and
        // reloads with identical ids (the identity renumbering).
        let dir = tmpdir("prefix");
        let info = save_index(&index, &dir).unwrap();
        assert_eq!(info, SnapshotInfo { entries: 4, generation: 4 });
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        for (i, e) in restored.entries().iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unswappable_directory_falls_back_to_in_place_saves() {
        // A target whose final component is `..` cannot be renamed
        // (EBUSY/EINVAL) — the same failure mode as a mount point or `.`.
        // The save must degrade to the in-place writer, not fail forever.
        let base = tmpdir("fallback");
        fs::create_dir_all(base.join("sub")).unwrap();
        let target = base.join("sub").join("..");
        let index = sample_index(IndexOptions::default());
        let info = save_index(&index, &target).expect("fallback save succeeds");
        assert_eq!(info.entries, 2);
        assert_eq!(index.snapshot_status().last_ok, Some(true));
        // The corpus landed in place (target resolves to `base`) and the
        // temp sibling was cleaned up.
        assert_eq!(load_index(&base, IndexOptions::default()).unwrap().len(), 2);
        assert!(!base.join(".tmp").exists(), "fallback cleans the temp dir");

        // Repeat saves keep working (the old failure mode was *every*
        // save erroring once the target could not be renamed).
        index.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        save_index(&index, &target).expect("second fallback save succeeds");
        assert_eq!(load_index(&base, IndexOptions::default()).unwrap().len(), 3);
        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn save_to_one_directory_never_masks_a_save_to_another() {
        let dir_a = tmpdir("skip-a");
        let dir_b = tmpdir("skip-b");
        let index = sample_index(IndexOptions::default());
        save_index(&index, &dir_a).unwrap();
        // dir_b holds a stale corpus from some earlier run.
        fs::create_dir_all(&dir_b).unwrap();
        fs::write(dir_b.join("MANIFEST"), "stale X\n").unwrap();
        fs::write(dir_b.join("stale.trace"), "h0 write 1\n").unwrap();
        // Same generation, last save ok — but to a *different* directory,
        // so this must save, not skip.
        let info = save_index_if_changed(&index, &dir_b).unwrap();
        assert!(info.is_some(), "a save to dir_a must not suppress the save to dir_b");
        assert_eq!(load_index(&dir_b, IndexOptions::default()).unwrap().len(), 2);
        // And now dir_b *is* current, so the skip applies to it.
        assert!(save_index_if_changed(&index, &dir_b).unwrap().is_none());
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn save_if_changed_skips_when_generation_is_stable() {
        let dir = tmpdir("skip");
        let index = sample_index(IndexOptions::default());
        assert!(save_index_if_changed(&index, &dir).unwrap().is_some(), "first save runs");
        assert!(save_index_if_changed(&index, &dir).unwrap().is_none(), "unchanged → skipped");
        assert_eq!(index.snapshot_status().snapshots, 1);

        index.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        let info = save_index_if_changed(&index, &dir).unwrap().expect("changed → saved");
        assert_eq!(info.entries, 3);
        assert_eq!(index.snapshot_status().snapshots, 2);

        // A vanished snapshot (operator deleted the dir) is re-created
        // even though the generation is unchanged.
        fs::remove_dir_all(&dir).unwrap();
        assert!(save_index_if_changed(&index, &dir).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshotter_saves_periodically_and_skips_idle_cycles() {
        let dir = tmpdir("daemon");
        let index = Arc::new(sample_index(IndexOptions::default()));
        let snapshotter =
            Snapshotter::start(Arc::clone(&index), dir.clone(), Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while index.snapshot_status().snapshots == 0 {
            assert!(std::time::Instant::now() < deadline, "first periodic snapshot never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Idle: the generation is unchanged, so further cycles skip.
        let after_first = index.snapshot_status().snapshots;
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(index.snapshot_status().snapshots, after_first, "idle cycles are skipped");
        assert_eq!(index.snapshot_status().last_generation, index.generation());

        // New ingest → next cycle saves again.
        index.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        while index.snapshot_status().snapshots == after_first {
            assert!(std::time::Instant::now() < deadline, "change was never re-snapshotted");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(snapshotter); // stops promptly and joins
        assert_eq!(load_index(&dir, IndexOptions::default()).unwrap().len(), 3);
        assert_eq!(index.snapshot_status().errors, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    use kastio_trace::wal::{encode_wal_record, wal_shard_path, WalRecord};

    /// Appends `entry`'s WAL record exactly as the server would and
    /// waits for the covering group commit.
    fn append_acked(wal: &WalManager, id: u32, name: &str, label: &str, trace_text: &str) {
        let record = WalRecord {
            id,
            name: name.to_string(),
            label: label.to_string(),
            trace: parse_trace(trace_text).unwrap(),
        };
        let seq = wal.append(&record).unwrap();
        wal.wait_durable(seq).unwrap();
    }

    #[test]
    fn durable_root_recovers_snapshot_plus_wal_replay() {
        let dir = tmpdir("walroot");
        let index = sample_index(IndexOptions::default());
        let wal = WalManager::open(&dir, 2, Duration::from_micros(500)).unwrap();
        append_acked(&wal, 0, "ckpt", "flash", &"h0 write 1048576\n".repeat(8));
        append_acked(&wal, 1, "scan", "posix", &"h0 read 4096\n".repeat(8));

        // Snapshot at generation 2: lands under <dir>/snapshot and
        // compacts both records away.
        let info = save_index_wal(&index, &dir, Some(&wal)).unwrap();
        assert_eq!(info, SnapshotInfo { entries: 2, generation: 2 });
        assert!(snapshot_dir(&dir).join("MANIFEST").exists(), "snapshot in the subdir");
        assert!(!dir.join("MANIFEST").exists(), "durable root holds no manifest itself");
        assert_eq!(scan_wal(&fs::read(wal_shard_path(&dir, 0)).unwrap()).records.len(), 0);

        // One more acked ingest after the snapshot — WAL only.
        index.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap()).unwrap();
        append_acked(&wal, 2, "extra", "flash", "h0 write 64\n");
        drop(wal);

        // Recovery = snapshot + replay; bit-for-bit entry identity.
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.snapshot_status().last_replay_records, 1);
        let (a, b) = (index.entries(), restored.entries());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, &x.name, &x.label), (y.id, &y.name, &y.label));
        }

        // Replay is idempotent: loading again changes nothing.
        let again = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(again.snapshot_status().last_replay_records, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        use std::io::Write as _;
        let dir = tmpdir("waltear");
        let index = sample_index(IndexOptions::default());
        let wal = WalManager::open(&dir, 1, Duration::from_micros(500)).unwrap();
        save_index_wal(&index, &dir, Some(&wal)).unwrap();
        append_acked(&wal, 2, "extra", "flash", "h0 write 64\n");
        drop(wal);

        // Tear the tail: half of a record the crash interrupted.
        let torn = encode_wal_record(&WalRecord {
            id: 3,
            name: "torn".to_string(),
            label: "flash".to_string(),
            trace: parse_trace("h0 write 32\n").unwrap(),
        });
        let path = wal_shard_path(&dir, 0);
        let clean_len = fs::metadata(&path).unwrap().len();
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(file);

        // Recovery applies exactly the durable prefix and repairs the file.
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(restored.len(), 3, "acked entry survives, torn one is dropped");
        assert_eq!(restored.snapshot_status().last_replay_records, 1);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len, "tail truncated in place");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_stops_at_an_id_gap() {
        let dir = tmpdir("walgap");
        let index = sample_index(IndexOptions::default());
        let wal = WalManager::open(&dir, 1, Duration::from_micros(500)).unwrap();
        save_index_wal(&index, &dir, Some(&wal)).unwrap();
        // Record id 2 never made it to disk; id 3 did (its group commit
        // covered a different shard first in some interleaving). Nothing
        // at or past the gap was ever acked, so replay must stop.
        append_acked(&wal, 3, "orphan", "flash", "h0 write 64\n");
        drop(wal);
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(restored.len(), 2, "the post-gap record is not applied");
        assert_eq!(restored.snapshot_status().last_replay_records, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_snapshot_swap_under_wal_is_recovered() {
        let dir = tmpdir("walswap");
        let index = sample_index(IndexOptions::default());
        let wal = WalManager::open(&dir, 1, Duration::from_micros(500)).unwrap();
        save_index_wal(&index, &dir, Some(&wal)).unwrap();
        append_acked(&wal, 2, "extra", "flash", "h0 write 64\n");
        drop(wal);

        // Crash between the snapshot subdir's two renames.
        let snap = snapshot_dir(&dir);
        fs::rename(&snap, sibling(&snap, "prev")).unwrap();
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(restored.len(), 3, "prev snapshot restored, then WAL replayed");
        assert!(snap.is_dir(), "swap completed by recovery");
        fs::remove_dir_all(&dir).unwrap();
    }
}
