//! Saving and loading an index corpus as plain-text trace files.
//!
//! The on-disk layout is [`kastio_trace::corpus`]'s — the same one the
//! batch tools speak: a directory of `<name>.trace` files plus a
//! `MANIFEST` of `<name> <label>` lines. A dataset exported by `kastio
//! generate` therefore loads directly into an index (the category tags
//! become labels), and a corpus built up over a serving session survives
//! restarts.
//!
//! Sharding round-trips deterministically without being written to disk
//! at all: entries are saved in id (ingestion) order, the manifest
//! preserves that order, and shard placement is the pure function
//! `id % shards` — so reloading with the same shard count reproduces the
//! exact shard layout, and reloading with a *different* shard count is
//! also fine (placement is a serving-time detail; query results are
//! shard-independent).

use std::path::Path;

use kastio_trace::{read_corpus, write_corpus, CorpusIoError};

use crate::index::{IndexOptions, PatternIndex};

/// Writes every entry of `index` into `dir` as `<name>.trace` plus a
/// `MANIFEST` of `<name> <label>` lines (in ingestion order, so a reload
/// reproduces ids and shard placement), creating the directory if needed.
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on any filesystem failure.
pub fn save_index(index: &PatternIndex, dir: &Path) -> Result<(), CorpusIoError> {
    let entries = index.entries();
    write_corpus(dir, entries.iter().map(|e| (e.name.as_str(), e.label.as_str(), &e.trace)))
}

/// Loads a corpus directory (written by [`save_index`] or by the dataset
/// exporter) into a fresh index with the given options, ingesting entries
/// in manifest order.
///
/// # Errors
///
/// Propagates [`CorpusIoError`] from the directory walk (missing or
/// malformed manifest entries and trace files).
pub fn load_index(dir: &Path, opts: IndexOptions) -> Result<PatternIndex, CorpusIoError> {
    let index = PatternIndex::new(opts);
    for entry in read_corpus(dir)? {
        index.ingest(entry.name, entry.tag, entry.trace);
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;
    use std::fs;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kastio-index-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_index(opts: IndexOptions) -> PatternIndex {
        let index = PatternIndex::new(opts);
        index.ingest("ckpt", "flash", parse_trace(&"h0 write 1048576\n".repeat(8)).unwrap());
        index.ingest("scan", "posix", parse_trace(&"h0 read 4096\n".repeat(8)).unwrap());
        index
    }

    #[test]
    fn roundtrip_preserves_entries_and_results() {
        let dir = tmpdir("roundtrip");
        let original = sample_index(IndexOptions::default());
        save_index(&original, &dir).unwrap();
        let restored = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(restored.len(), original.len());
        let q = parse_trace(&"h0 write 1048576\n".repeat(6)).unwrap();
        let a = original.query(&q, 2);
        let b = restored.query(&q, 2);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.label, b.label);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roundtrip_reproduces_shard_placement() {
        let dir = tmpdir("shards");
        let opts = IndexOptions { shards: 3, ..IndexOptions::default() };
        let original = sample_index(opts);
        original.ingest("extra", "flash", parse_trace("h0 write 64\n").unwrap());
        save_index(&original, &dir).unwrap();

        // Same shard count → identical placement, entry for entry.
        let restored = load_index(&dir, opts).unwrap();
        assert_eq!(restored.shard_sizes(), original.shard_sizes());
        let (a, b) = (original.entries(), restored.entries());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            assert_eq!(x.label, y.label);
        }

        // Different shard count → same corpus, same query answers.
        let reshaped =
            load_index(&dir, IndexOptions { shards: 2, ..IndexOptions::default() }).unwrap();
        let q = parse_trace(&"h0 write 1048576\n".repeat(6)).unwrap();
        let want = original.query(&q, 3);
        let got = reshaped.query(&q, 3);
        assert_eq!(want.neighbors, got.neighbors);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loads_generated_dataset_layout() {
        // The dataset MANIFEST (`<name> <category-tag>`) is a valid index
        // manifest: tags become labels.
        let dir = tmpdir("dataset");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "A00 A\nB00 B\n").unwrap();
        fs::write(dir.join("A00.trace"), "h0 write 64\n").unwrap();
        fs::write(dir.join("B00.trace"), "h0 lseek 0\nh0 read 8\n").unwrap();
        let index = load_index(&dir, IndexOptions::default()).unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index.entries()[0].label, "A");
        assert_eq!(index.entries()[1].name, "B00");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_errors_propagate() {
        let dir = tmpdir("badline");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "only-one-field\n").unwrap();
        let err = load_index(&dir, IndexOptions::default()).unwrap_err();
        assert!(matches!(err, CorpusIoError::BadManifest { line: 1 }), "{err}");

        fs::write(dir.join("MANIFEST"), "ghost X\n").unwrap();
        let err = load_index(&dir, IndexOptions::default()).unwrap_err();
        assert!(matches!(err, CorpusIoError::MissingTrace { .. }), "{err}");
        assert!(err.to_string().contains("ghost"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
