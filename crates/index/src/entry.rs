//! Corpus entries: one ingested, fully preprocessed labelled trace.

use kastio_core::IdString;
use kastio_quota::ApproxSize;
use kastio_trace::{PatternSignature, Trace};

/// Dense identifier of an entry inside one [`crate::PatternIndex`].
///
/// Ids are assigned in ingestion order and never reused; they are only
/// meaningful within the index that issued them. The id also fixes the
/// entry's placement in a sharded index — entry `i` lives in shard
/// `i % shards` (see the [`crate::PatternIndex`] shard-assignment
/// invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(pub u32);

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One indexed example: the original trace plus everything the expensive
/// part of the pipeline produces, computed once at ingestion time.
///
/// Queries never re-run trace→tree→string conversion, interning or the
/// self-kernel for corpus members — that is the whole point of the index.
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// Identifier assigned at ingestion.
    pub id: EntryId,
    /// Human-readable name (unique within the index; used by persistence).
    pub name: String,
    /// Ground-truth / user-supplied label, e.g. a workload category.
    pub label: String,
    /// The original trace, kept so the index can be saved back to disk in
    /// the plain-text trace format.
    pub trace: Trace,
    /// The interned weighted string (interned by the index's shared
    /// [`kastio_core::TokenInterner`], so it is comparable with every other
    /// entry and with interned queries).
    pub string: IdString,
    /// Precomputed raw self-kernel `k(e, e)` under the index's options —
    /// the denominator half of cosine normalisation, memoised here so a
    /// query against `n` entries costs `n` pairwise evaluations plus one
    /// query self-kernel, never `O(n)` *additional* self-kernels (the
    /// same diagonal memoisation `gram_matrix` applies in normalised
    /// mode).
    pub self_kernel: f64,
    /// Precomputed `weight_{w≥cut}(e)` — the denominator half of the
    /// paper's weight-product normalisation.
    pub cut_mass: u64,
    /// Scalar pattern signature used by the candidate prefilter.
    pub signature: PatternSignature,
}

/// Approximate per-operation cost of keeping a trace resident in the
/// corpus: the operation itself plus the interned token/weight pair and
/// the prefix-sum slot derived from it.
const OP_COST_BYTES: usize = 48;

/// Fixed per-entry overhead: the [`IndexEntry`] struct, string headers,
/// signature, vector headers, and the shard's sorted-insert slot.
const ENTRY_BASE_BYTES: usize = 192;

/// Approximate resident bytes an entry built from `name`, `label` and
/// `trace` will occupy once ingested.
///
/// Deliberately computable *before* the preprocessing pipeline runs, so
/// memory admission can refuse an ingest before an entry id is allocated
/// (a refused ingest must leave no id gap). [`ApproxSize`] for a built
/// [`IndexEntry`] reports the same figure, so corpus charges taken at
/// admission always match what a later accounting walk would measure.
pub fn entry_footprint_bytes(name: &str, label: &str, trace: &Trace) -> u64 {
    (ENTRY_BASE_BYTES + name.len() + label.len() + trace.len() * OP_COST_BYTES) as u64
}

impl ApproxSize for IndexEntry {
    fn approx_size_bytes(&self) -> usize {
        entry_footprint_bytes(&self.name, &self.label, &self.trace) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_id_displays_densely() {
        assert_eq!(EntryId(7).to_string(), "e7");
        assert!(EntryId(1) > EntryId(0));
    }

    #[test]
    fn footprint_grows_with_trace_length_and_names() {
        let short = Trace::new();
        let base = entry_footprint_bytes("a", "b", &short);
        assert!(base >= ENTRY_BASE_BYTES as u64);
        let longer = entry_footprint_bytes("a-much-longer-name", "b", &short);
        assert!(longer > base);
    }
}
