//! # kastio-index
//!
//! An **online pattern-corpus index** over the paper's pipeline, turning
//! the batch tool into a long-running service. The batch flow re-parses,
//! re-interns and re-evaluates everything per invocation; the index
//! ingests each labelled trace once — precomputing its interned
//! [`kastio_core::IdString`] (shared [`kastio_core::TokenInterner`]), its
//! raw self-kernel, its cut-weight mass and its scalar
//! [`kastio_trace::PatternSignature`] — and then answers k-NN similarity
//! and majority-vote classification queries with three accelerations:
//!
//! 1. a **signature prefilter** ([`prefilter`]) that ranks the corpus by
//!    cheap scalar distance and hands only a budgeted candidate subset to
//!    the kernel stage;
//! 2. a **shared, byte-accounted LRU cache** ([`lru`]) of pairwise raw
//!    kernel values — one striped pool for all shards, so repeated or
//!    neighbouring queries stop paying for the quadratic string
//!    comparison and a hot query warms the cache once, not per shard;
//! 3. **scoped-thread batch scoring** — the surviving candidates are
//!    striped across OS threads (`std::thread::scope`, no async runtime).
//!
//! The corpus is **sharded** ([`IndexOptions::shards`]): entries are
//! assigned to shard `id % S`, every mutable accelerator sits behind
//! per-shard interior mutability, and [`PatternIndex::query`] /
//! [`PatternIndex::ingest`] take `&self` — a server shares one index
//! across threads behind a plain `Arc`, queries holding shard *read*
//! locks (so they run concurrently) and ingests write-locking only the
//! owning shard. See `docs/ARCHITECTURE.md` for the full locking model.
//!
//! Accuracy contract: the similarity reported for every returned
//! neighbour is bit-identical to a direct [`kastio_core::KastKernel`]
//! evaluation of the same pair; prefilter, cache and sharding change
//! which pairs are evaluated, how often and where the entries live,
//! never the arithmetic.
//!
//! [`persist`] stores a corpus as plain-text trace files (+ `MANIFEST`),
//! the same layout `kastio generate` emits, so an index survives restarts
//! and datasets load directly (and shard placement, a pure function of
//! ingestion order, survives with it). Saves are **atomic snapshots**
//! (fresh temp directory renamed into place, previous snapshot preserved
//! until the new one is complete) that run from shard *read* locks, and a
//! [`Snapshotter`] thread can write them periodically; [`signal`] turns
//! `SIGTERM`/`SIGINT` into a final snapshot plus clean listener shutdown,
//! making the daemon crash-tolerant. With `--wal`, [`wal`] closes the
//! window *between* snapshots too: every acked ingest is appended to a
//! per-shard write-ahead log and fsync'd (group commit) before the ack
//! goes out, recovery replays the log over the last good snapshot, and
//! [`fault`] provides the crash-point injection the durability suite
//! (`tests/wal_recovery.rs`) uses to prove no acked `INGEST` is ever
//! lost — even to `kill -9` mid-write. [`server`] wraps the index in a
//! `TcpListener` daemon speaking the line protocol of [`protocol`]
//! (`HELLO` / `INGEST` / `BATCH INGEST` / `QUERY` / `MQUERY` / `STATS` /
//! `SAVE` / `SHUTDOWN` — specified in `docs/PROTOCOL.md`), and the
//! `kastio serve` / `kastio query` subcommands front it on the command
//! line. The daemon keeps live [`ServerMetrics`] (uptime, connections,
//! per-verb request counters), reported by `STATS`, so a load harness
//! like `kastio loadgen` can correlate client-side latency with
//! server-side cache and snapshot behaviour.
//!
//! # Quickstart
//!
//! ```
//! use kastio_index::{IndexOptions, PatternIndex};
//! use kastio_trace::parse_trace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let index = PatternIndex::new(IndexOptions { shards: 2, ..IndexOptions::default() });
//! index.ingest("ckpt", "checkpoint", parse_trace(&"h0 write 1048576\n".repeat(32))?);
//! index.ingest("scan", "analysis", parse_trace(&"h0 read 4096\n".repeat(32))?);
//!
//! let result = index.query(&parse_trace(&"h0 write 1048576\n".repeat(24))?, 1);
//! assert_eq!(result.label.as_deref(), Some("checkpoint"));
//! # Ok(())
//! # }
//! ```

pub mod entry;
pub mod fault;
pub mod index;
pub mod lru;
pub mod persist;
pub mod prefilter;
pub mod protocol;
pub mod runtime;
pub mod server;
pub mod signal;
pub mod wal;

pub use entry::{EntryId, IndexEntry};
pub use index::{
    IndexOptions, IndexStats, IngestError, Neighbor, PatternIndex, QueryResult, SnapshotStatus,
};
pub use kastio_trace::CorpusIoError;
pub use lru::{KernelCache, SharedKernelCache};
pub use persist::{
    load_index, save_index, save_index_if_changed, save_index_if_changed_wal, save_index_wal,
    SnapshotInfo, Snapshotter,
};
pub use prefilter::PrefilterConfig;
pub use protocol::{
    decode_trace_inline, encode_trace_inline, parse_batch_ingest_item, parse_request, read_reply,
    MetricsSnapshot, Request, MAX_BATCH_ITEMS, PROTOCOL_VERBS, PROTOCOL_VERSION,
};
pub use runtime::{EpollRuntime, Runtime, RuntimeKind, ThreadsRuntime};
pub use server::{Server, ServerMetrics, ShutdownHandle};
pub use signal::{watch_termination, SignalWatcher, TermSignal};
pub use wal::WalManager;
