//! The thread-per-connection runtime: the daemon's original serving
//! strategy, now behind the [`Runtime`] trait. One OS thread per client,
//! blocking I/O, no reactor — simple, portable, and entirely adequate up
//! to a few hundred concurrent connections (past that, thread stacks and
//! scheduler pressure argue for [`super::EpollRuntime`]).
//!
//! There is **no server-side lock**: the index is internally sharded and
//! synchronised (see [`crate::index`]), so handler threads share it
//! behind a plain [`Arc`]. `QUERY`/`MQUERY` take shard *read* locks and
//! run concurrently with each other; `INGEST`/`BATCH INGEST` write-lock
//! only the shard that owns each new entry, so writers never stall
//! queries on the other shards.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::fault::{crash_point, CRASH_AFTER_ACK};
use crate::index::PatternIndex;
use crate::protocol::parse_request;

use super::dispatch::{
    drain_line, execute_parsed, finish_after_write, is_timeout, read_request_line, span_ns,
    ItemsInput, Line, RequestContext,
};
use super::{Runtime, ServeState};

/// Thread-per-connection with blocking I/O (the default runtime).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadsRuntime;

impl Runtime for ThreadsRuntime {
    fn name(&self) -> &'static str {
        "threads"
    }

    /// Accepts and serves connections — each on its own thread — until a
    /// client sends `SHUTDOWN` (or the stop flag fires), then joins the
    /// handlers and returns the shared index.
    ///
    /// Accept errors are treated as transient (EMFILE under fd pressure,
    /// ECONNABORTED, …): the loop backs off briefly and retries, so the
    /// in-memory corpus is never lost to a hiccup. Only a long unbroken
    /// run of failures abandons accepting — and even then the index is
    /// returned intact so the caller's save path still runs.
    fn serve(&self, state: ServeState) -> io::Result<Arc<PatternIndex>> {
        let ctx = RequestContext::of(&state);
        let ServeState {
            listener, addr, index, stop, metrics, max_connections, idle_timeout, ..
        } = state;
        // Registry of live client sockets, keyed by connection id. Each
        // handler removes its own entry on exit, so finished connections
        // release their file descriptors immediately; whatever is left at
        // shutdown is force-closed below to wake blocked readers.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut consecutive_errors: u32 = 0;
        for (connection_id, stream) in (0_u64..).zip(listener.incoming()) {
            let stream = match stream {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(_) if stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        break; // listener looks permanently broken
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // woken by the shutdown nudge below
            }
            // Reap finished handlers so the handle list tracks live
            // connections, not total connections served.
            let (done, live): (Vec<_>, Vec<_>) =
                handlers.into_iter().partition(|handler| handler.is_finished());
            for handler in done {
                let _ = handler.join();
            }
            handlers = live;

            // Connection admission: past the cap, shed loudly — one
            // readable reply line, then close — instead of spawning a
            // thread the box cannot afford. The write is best-effort (a
            // peer that already hung up gets nothing, which is fine).
            if handlers.len() >= max_connections {
                metrics.record_shed_connection();
                let mut stream = stream;
                let _ = stream.write_all(b"ERR busy reason=connections\n");
                let _ = stream.flush();
                continue;
            }
            if let Some(timeout) = idle_timeout {
                // Best-effort: a socket that refuses the deadline just
                // keeps blocking reads, as without the flag.
                let _ = stream.set_read_timeout(Some(timeout));
            }

            match stream.try_clone() {
                Ok(clone) => {
                    lock_registry(&connections).insert(connection_id, clone);
                }
                // Without a registered clone the socket could not be
                // force-closed at shutdown and its handler would block
                // serve() in join() forever — refuse the connection
                // instead (try_clone only fails under fd exhaustion).
                Err(_) => continue,
            }
            metrics.record_connection();
            let (ctx, stop, connections) =
                (ctx.clone(), Arc::clone(&stop), Arc::clone(&connections));
            handlers.push(std::thread::spawn(move || {
                let disposition = handle_connection(stream, &ctx);
                lock_registry(&connections).remove(&connection_id);
                if let Ok(Disposition::Shutdown) = disposition {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        // Close the remaining client sockets so handlers blocked in
        // read_line wake up and exit, making the joins below finite.
        for (_, connection) in lock_registry(&connections).drain() {
            let _ = connection.shutdown(std::net::Shutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        drop(listener);
        Ok(index)
    }
}

/// What handling one connection concluded.
enum Disposition {
    /// The client went away; accept the next connection.
    ClientDone,
    /// A `SHUTDOWN` request was honoured; stop the server.
    Shutdown,
}

fn lock_registry(
    connections: &Mutex<HashMap<u64, TcpStream>>,
) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
    connections.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serves one client: one reply per request until EOF or `SHUTDOWN`. For
/// the batched forms (`BATCH INGEST`, `MQUERY`) the announced item lines
/// are consumed — even when an item is malformed — before the single
/// reply, so one bad item never desyncs the connection's framing. All the
/// protocol semantics live in [`super::dispatch`]; this loop only frames
/// lines, moves bytes, and applies the blocking-I/O governance (idle
/// deadline as a read timeout, over-long lines drained inline).
fn handle_connection(stream: TcpStream, ctx: &RequestContext) -> io::Result<Disposition> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        let status = match read_request_line(&mut reader, &mut line) {
            Ok(status) => status,
            // The idle deadline fired between requests: count it and
            // close cleanly — an abandoned socket is not an I/O error.
            Err(error) if is_timeout(&error) => {
                ctx.metrics.record_timeout();
                return Ok(Disposition::ClientDone);
            }
            Err(error) => return Err(error),
        };
        match status {
            Line::Eof => return Ok(Disposition::ClientDone),
            Line::TooLong => {
                ctx.metrics.record_error();
                writer.write_all(b"ERR line too long\n")?;
                writer.flush()?;
                // Skip to the next newline: the over-long line is the
                // client's mistake, not a reason to hang up on it.
                if !drain_line(&mut reader)? {
                    return Ok(Disposition::ClientDone);
                }
                continue;
            }
            Line::Full => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let request = parse_request(&line);
        ctx.metrics.record_request(request.as_ref().ok());
        let parse_ns = span_ns(started);
        let done =
            match execute_parsed(ctx, request, started, parse_ns, ItemsInput::Live(&mut reader))? {
                None => return Ok(Disposition::ClientDone),
                Some(done) => done,
            };
        let write_started = Instant::now();
        writer.write_all(done.reply.as_bytes())?;
        writer.flush()?;
        if done.ack_ingest {
            // Fault injection: with ack-after-fsync ordering, a crash
            // *after* the ack has left the socket must already find the
            // record durable — tests/wal_recovery.rs aborts here and
            // asserts exactly that.
            crash_point(CRASH_AFTER_ACK);
        }
        let reply_ns = span_ns(write_started);
        finish_after_write(ctx, &done, reply_ns);
        if done.shutting_down {
            return Ok(Disposition::Shutdown);
        }
    }
}
