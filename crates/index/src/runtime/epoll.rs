//! The hand-rolled epoll reactor runtime (Linux only).
//!
//! One reactor thread owns every socket and an `epoll` instance; request
//! execution — kernel scoring, WAL fsync waits, snapshot writes — runs on
//! a small bounded worker pool. The contract that keeps tens of
//! thousands of connections responsive is simple: **the reactor thread
//! never blocks**. Not on `wait_durable`, not on `score_batch`, not on a
//! slow peer's send buffer. Anything that can take real time is a job
//! for the pool; the pool posts a completion and rings the
//! [`EventFd`] wakeup, and the reactor — woken by epoll like for any
//! other readiness — writes the reply out and re-arms the connection.
//!
//! Each connection is a small state machine:
//!
//! ```text
//!        read chunk            header line           items done
//! idle ──────────────▶ framing ──────────▶ collecting ─────────┐
//!   ▲                     │ unbatched verb                     ▼
//!   │                     └────────────────────────────▶ inflight (worker)
//!   │                                                          │ completion
//!   │                 write buffer flushed                     ▼
//!   └───────────────────────────────────────────────────── writing
//! ```
//!
//! * **framing** — bytes accumulate in a [`LineFramer`]; complete lines
//!   come out with the same 1 MiB cap / UTF-8 / drain semantics as the
//!   blocking reader.
//! * **collecting** — a batched header's announced item lines feed the
//!   shared [`ItemCollector`], preserving the exact error priority of
//!   the threads runtime.
//! * **inflight** — the parsed request rides a [`Job`] to the worker
//!   pool. While a request is in flight the reactor stops *consuming*
//!   buffered bytes for this connection (one request at a time, as in
//!   the threads runtime) but keeps the already-read bytes for
//!   pipelining.
//! * **writing** — the rendered reply sits in a per-connection write
//!   buffer, drained as `EPOLLOUT` allows. A slow reader only fills its
//!   own buffer (backpressure: reads stay paused until the reply is
//!   out); other connections are unaffected.
//!
//! Governance is re-expressed reactor-side with identical wire behavior:
//! `--max-connections` sheds at accept with `ERR busy
//! reason=connections`, `--idle-timeout-secs` reaps connections that sit
//! idle between requests (counted in `timeouts`), and over-long lines
//! get `ERR line too long` with the remainder drained.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_void};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::fault::{crash_point, CRASH_AFTER_ACK};
use crate::index::PatternIndex;
use crate::protocol::{parse_batch_ingest_item, parse_request, FramedLine, LineFramer, Request};

use super::dispatch::{
    execute_parsed, finish_after_write, parse_mquery_item, span_ns, CollectedItems, Executed,
    ItemCollector, ItemLine, ItemsInput, RequestContext,
};
use super::{sys, ServeState};

/// Token 0 is the listener, 1 the eventfd wakeup; connections count up
/// from 2 and tokens are never reused, so a stale kernel event for a
/// closed connection simply misses the map.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Serves the daemon on the reactor until `SHUTDOWN` / the stop flag.
pub(crate) fn serve(state: ServeState) -> io::Result<Arc<PatternIndex>> {
    let mut reactor = Reactor::new(state)?;
    reactor.run()?;
    let index = Arc::clone(&reactor.index);
    reactor.shutdown();
    Ok(index)
}

/// An owned epoll instance.
struct EpollFd(RawFd);

impl EpollFd {
    fn new() -> io::Result<EpollFd> {
        // SAFETY: no pointers involved; a failed call returns -1.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollFd(fd))
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = sys::EpollEvent { events, data: token };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.0, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) {
        // Deregistration is best-effort: close() removes the fd from the
        // interest list anyway.
        let mut event = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`.
        let _ = unsafe { sys::epoll_ctl(self.0, sys::EPOLL_CTL_DEL, fd, &mut event) };
    }

    /// Blocks up to `timeout_ms` (-1: forever) for readiness, retrying
    /// on `EINTR` (a signal is not an event).
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        loop {
            let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
            // SAFETY: `events` is a valid, writable buffer of `capacity`
            // records for the duration of the call.
            let n = unsafe { sys::epoll_wait(self.0, events.as_mut_ptr(), capacity, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let error = io::Error::last_os_error();
            if error.kind() != io::ErrorKind::Interrupted {
                return Err(error);
            }
        }
    }
}

impl Drop for EpollFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { sys::close(self.0) };
    }
}

/// The worker → reactor wakeup channel: an 8-byte counter fd the pool
/// writes after posting a completion, registered with epoll like any
/// socket. Non-blocking on both ends — a full counter (never in
/// practice) only means the reactor is already awake.
struct EventFd(RawFd);

impl EventFd {
    fn new() -> io::Result<EventFd> {
        // SAFETY: no pointers involved; a failed call returns -1.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd(fd))
    }

    /// Rings the wakeup (adds 1 to the counter).
    fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a live stack value.
        unsafe { sys::write(self.0, std::ptr::addr_of!(one).cast::<c_void>(), 8) };
    }

    /// Drains the counter so the next signal raises a fresh `EPOLLIN`.
    fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: reading 8 bytes into a live stack value.
        unsafe { sys::read(self.0, std::ptr::addr_of_mut!(count).cast::<c_void>(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { sys::close(self.0) };
    }
}

/// Flips `O_NONBLOCK` on via `fcntl` — the reactor must never block in
/// `read`/`write`/`accept`.
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL takes no third argument.
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: F_SETFL takes an int argument.
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// One parsed request on its way to the worker pool.
struct Job {
    token: u64,
    request: Result<Request, String>,
    started: Instant,
    parse_ns: u64,
    items: CollectedItems,
}

/// One executed request on its way back to the reactor.
struct Completion {
    token: u64,
    executed: Executed,
}

/// The queue the reactor and the worker pool share.
struct WorkerShared {
    /// Pending jobs + the shutdown flag, under one lock so a worker
    /// never misses the final notify.
    jobs: Mutex<(VecDeque<Job>, bool)>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    wake: Arc<EventFd>,
}

fn worker_loop(ctx: RequestContext, shared: Arc<WorkerShared>) {
    loop {
        let job = {
            let mut guard = shared.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break job;
                }
                if guard.1 {
                    return; // shutdown, queue drained
                }
                guard =
                    shared.available.wait(guard).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let Job { token, request, started, parse_ns, items } = job;
        // A pre-collected input does no I/O, so execution cannot fail and
        // cannot hang up; the reader type is irrelevant (any BufRead do).
        let executed =
            execute_parsed::<&[u8]>(&ctx, request, started, parse_ns, ItemsInput::Collected(items))
                .expect("collected input cannot fail I/O")
                .expect("collected input cannot hang up");
        shared
            .completions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Completion { token, executed });
        shared.wake.signal();
    }
}

/// Why a connection is being closed — only the idle reap is counted.
enum Close {
    /// Peer gone, protocol hangup, or write failure.
    Gone,
    /// The idle deadline fired (counts into `timeouts`).
    Idle,
}

/// What the collector half of a pending batched request holds.
enum PendingItems {
    Batch(ItemCollector<(String, kastio_trace::Trace)>),
    Queries(ItemCollector<kastio_trace::Trace>),
}

impl PendingItems {
    fn push(&mut self, line: ItemLine) {
        match self {
            PendingItems::Batch(collector) => collector.push(line),
            PendingItems::Queries(collector) => collector.push(line),
        }
    }

    fn done(&self) -> bool {
        match self {
            PendingItems::Batch(collector) => collector.done(),
            PendingItems::Queries(collector) => collector.done(),
        }
    }

    fn finish(self) -> CollectedItems {
        match self {
            PendingItems::Batch(collector) => {
                let (items, charge) = collector.finish();
                CollectedItems::Batch(items, charge)
            }
            PendingItems::Queries(collector) => {
                let (items, charge) = collector.finish();
                CollectedItems::Queries(items, charge)
            }
        }
    }
}

/// A batched header waiting for its announced item lines.
struct PendingBatch {
    request: Request,
    started: Instant,
    items: PendingItems,
}

/// Bookkeeping that rides a reply into the write buffer and fires once
/// the last byte is flushed.
struct AfterWrite {
    executed: Executed,
    write_started: Instant,
}

/// One connection's reactor-side state machine.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    /// A batched header collecting its item lines.
    pending: Option<PendingBatch>,
    /// Reply bytes not yet accepted by the kernel.
    write_buf: Vec<u8>,
    written: usize,
    /// A request is executing on the worker pool; reads are paused
    /// (bytes still buffer in the kernel and the framer — pipelining
    /// resumes when the completion lands).
    inflight: bool,
    after_write: Option<AfterWrite>,
    last_activity: Instant,
    /// The epoll interest mask currently registered for this fd.
    interest: u32,
    /// The peer half-closed its send direction; process what is
    /// buffered, then finish the trailing partial line and close.
    peer_eof: bool,
}

impl Conn {
    fn wants_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Idle means reapable: between requests, nothing buffered, nothing
    /// in flight, nothing to write.
    fn is_idle(&self) -> bool {
        !self.inflight && !self.wants_write() && self.pending.is_none() && self.framer.is_empty()
    }
}

pub(crate) struct Reactor {
    epoll: EpollFd,
    wake: Arc<EventFd>,
    listener: TcpListener,
    index: Arc<PatternIndex>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    ctx: RequestContext,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    shared: Arc<WorkerShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    max_connections: usize,
    idle_timeout: Option<Duration>,
}

impl Reactor {
    fn new(state: ServeState) -> io::Result<Reactor> {
        let epoll = EpollFd::new()?;
        let wake = Arc::new(EventFd::new()?);
        epoll.add(wake.0, sys::EPOLLIN, TOKEN_WAKE)?;
        set_nonblocking(state.listener.as_raw_fd())?;
        epoll.add(state.listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        let ctx = RequestContext::of(&state);
        let shared = Arc::new(WorkerShared {
            jobs: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            wake: Arc::clone(&wake),
        });
        // Enough workers that one slow save cannot starve queries, few
        // enough that kernel scoring (which itself fans out across
        // scoped threads) is not oversubscribed.
        let pool = std::thread::available_parallelism().map_or(2, |n| n.get()).clamp(2, 8);
        let workers = (0..pool)
            .map(|_| {
                let (ctx, shared) = (ctx.clone(), Arc::clone(&shared));
                std::thread::spawn(move || worker_loop(ctx, shared))
            })
            .collect();
        Ok(Reactor {
            epoll,
            wake,
            listener: state.listener,
            index: Arc::clone(&state.index),
            stop: Arc::clone(&state.stop),
            ctx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            shared,
            workers,
            max_connections: state.max_connections,
            idle_timeout: state.idle_timeout,
        })
    }

    /// The event loop: runs until the stop flag (raised by a `SHUTDOWN`
    /// completion, a [`crate::ShutdownHandle`], or the signal monitor).
    fn run(&mut self) -> io::Result<()> {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        while !self.stop.load(Ordering::SeqCst) {
            // With an idle deadline armed the loop must tick even when
            // no fd fires, to reap silent connections; 500 ms bounds the
            // reap latency for long deadlines, 10 ms the spin for very
            // short (test-sized) ones.
            let timeout_ms = self.idle_timeout.map_or(-1, |timeout| {
                c_int::try_from(timeout.as_millis().clamp(10, 500)).unwrap_or(500)
            });
            let n = self.epoll.wait(&mut events, timeout_ms)?;
            for event in &events[..n] {
                // Copy out of the (possibly packed) record before use.
                let (bits, token) = (event.events, event.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_completions(),
                    token => self.conn_event(token, bits),
                }
                if self.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            self.reap_idle();
        }
        Ok(())
    }

    /// Joins the pool and drops every connection (sockets close on
    /// drop). Called after the event loop exits, so no reply in flight
    /// is silently abandoned before its write completed — `SHUTDOWN`
    /// stops the loop only once its `OK bye` left the socket.
    fn shutdown(&mut self) {
        {
            let mut guard =
                self.shared.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.1 = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Level-triggered accept: take everything the backlog holds.
    fn accept_ready(&mut self) {
        loop {
            let (stream, _peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) if self.stop.load(Ordering::SeqCst) => return,
                Err(_) => {
                    // Transient accept failure (EMFILE, ECONNABORTED…):
                    // back off briefly instead of spinning on the
                    // level-triggered readiness.
                    std::thread::sleep(Duration::from_millis(10));
                    return;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            // Connection admission: past the cap, shed loudly — one
            // readable reply line, then close. The socket is fresh, so
            // the blocking best-effort write cannot stall the reactor
            // (the send buffer is empty).
            if self.conns.len() >= self.max_connections {
                self.ctx.metrics.record_shed_connection();
                let mut stream = stream;
                let _ = stream.write_all(b"ERR busy reason=connections\n");
                let _ = stream.flush();
                continue;
            }
            if set_nonblocking(stream.as_raw_fd()).is_err() {
                continue; // cannot serve a socket that might block us
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.epoll.add(stream.as_raw_fd(), sys::EPOLLIN, token).is_err() {
                continue;
            }
            self.ctx.metrics.record_connection();
            self.conns.insert(
                token,
                Conn {
                    stream,
                    framer: LineFramer::new(),
                    pending: None,
                    write_buf: Vec::new(),
                    written: 0,
                    inflight: false,
                    after_write: None,
                    last_activity: Instant::now(),
                    interest: sys::EPOLLIN,
                    peer_eof: false,
                },
            );
        }
    }

    /// Applies every completion the worker pool posted.
    fn drain_completions(&mut self) {
        self.wake.drain();
        let completions = std::mem::take(
            &mut *self.shared.completions.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for Completion { token, executed } in completions {
            if !self.conns.contains_key(&token) {
                continue; // connection died while its request executed
            }
            {
                let conn = self.conns.get_mut(&token).expect("checked above");
                conn.inflight = false;
                conn.write_buf.extend_from_slice(executed.reply.as_bytes());
                conn.after_write = Some(AfterWrite { executed, write_started: Instant::now() });
            }
            if !self.try_flush(token) {
                continue;
            }
            // The reply is out (or queued); with the one-at-a-time slot
            // free again, pipelined bytes already buffered can proceed.
            if !self.process_buffered(token) {
                continue;
            }
            self.update_interest(token);
        }
    }

    /// Socket readiness for one connection.
    fn conn_event(&mut self, token: u64, bits: u32) {
        if !self.conns.contains_key(&token) {
            return; // stale event for an already-closed connection
        }
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close(token, Close::Gone);
            return;
        }
        if bits & sys::EPOLLOUT != 0 {
            if !self.try_flush(token) {
                return;
            }
            if !self.process_buffered(token) {
                return;
            }
        }
        if bits & sys::EPOLLIN != 0 && !self.readable(token) {
            return;
        }
        self.update_interest(token);
    }

    /// Reads everything the socket has, frames it, and advances the
    /// state machine. Returns `false` when the connection was closed.
    fn readable(&mut self, token: u64) -> bool {
        let mut chunk = [0_u8; 64 * 1024];
        loop {
            // While a request is in flight or a reply is still being
            // written, stop *consuming* from the kernel: the socket
            // buffer is the backpressure (and the peer's TCP window
            // after that). What is already framed stays for later.
            {
                let conn = self.conns.get_mut(&token).expect("caller checked token");
                if conn.inflight || conn.wants_write() {
                    return true;
                }
            }
            let read = {
                let conn = self.conns.get_mut(&token).expect("caller checked token");
                match conn.stream.read(&mut chunk) {
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        n
                    }
                    Err(error) if error.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(token, Close::Gone);
                        return false;
                    }
                }
            };
            if read == 0 {
                // Half-close: the client may still be reading (a
                // pipelined burst then shutdown(SHUT_WR) is legal), so
                // process what is buffered before hanging up.
                self.conns.get_mut(&token).expect("caller checked token").peer_eof = true;
                if !self.process_buffered(token) {
                    return false;
                }
                return self.finish_eof_if_due(token);
            }
            {
                let conn = self.conns.get_mut(&token).expect("caller checked token");
                conn.framer.push_bytes(&chunk[..read]);
            }
            if !self.process_buffered(token) {
                return false;
            }
        }
    }

    /// Consumes framed lines until the connection blocks on a request in
    /// flight, a pending write, or runs out of lines. Returns `false`
    /// when the connection was closed.
    fn process_buffered(&mut self, token: u64) -> bool {
        loop {
            enum Step {
                Line(FramedLine),
                Blocked,
                Empty,
            }
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else { return false };
                if conn.inflight || conn.wants_write() {
                    Step::Blocked
                } else {
                    match conn.framer.next_line() {
                        Ok(Some(line)) => Step::Line(line),
                        Ok(None) => Step::Empty,
                        Err(_) => {
                            // Invalid UTF-8 is connection-fatal, exactly
                            // as the blocking read_line treats it.
                            self.close(token, Close::Gone);
                            return false;
                        }
                    }
                }
            };
            match step {
                Step::Blocked => return true,
                Step::Empty => return self.finish_eof_if_due(token),
                Step::Line(line) => {
                    if !self.advance_line(token, line) {
                        return false;
                    }
                }
            }
        }
    }

    /// Feeds one framed line into the connection's state machine.
    /// Returns `false` when the connection was closed.
    fn advance_line(&mut self, token: u64, line: FramedLine) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        conn.last_activity = Instant::now();
        if let Some(mut pending) = conn.pending.take() {
            // Collecting a batched request's item lines.
            pending.items.push(match line {
                FramedLine::Full(line) => ItemLine::Full(line),
                FramedLine::TooLong => ItemLine::TooLong,
            });
            if pending.items.done() {
                return self.dispatch_pending(token, pending);
            }
            conn.pending = Some(pending);
            return true;
        }
        let line = match line {
            FramedLine::TooLong => {
                // Same wire behavior as the threads runtime: a readable
                // error, the remainder drained (the framer is draining
                // already), the connection stays framed.
                self.ctx.metrics.record_error();
                conn.write_buf.extend_from_slice(b"ERR line too long\n");
                return self.try_flush(token);
            }
            FramedLine::Full(line) => line,
        };
        if line.trim().is_empty() {
            return true;
        }
        let started = Instant::now();
        let request = parse_request(&line);
        self.ctx.metrics.record_request(request.as_ref().ok());
        match request {
            Ok(Request::BatchIngest { count }) => {
                let items = PendingItems::Batch(ItemCollector::new(
                    count,
                    &self.ctx.buffers,
                    parse_batch_ingest_item,
                ));
                let pending =
                    PendingBatch { request: Request::BatchIngest { count }, started, items };
                if pending.items.done() {
                    return self.dispatch_pending(token, pending);
                }
                self.conns.get_mut(&token).expect("checked above").pending = Some(pending);
                true
            }
            Ok(Request::MultiQuery { k, count, timed }) => {
                let items = PendingItems::Queries(ItemCollector::new(
                    count,
                    &self.ctx.buffers,
                    parse_mquery_item,
                ));
                let pending = PendingBatch {
                    request: Request::MultiQuery { k, count, timed },
                    started,
                    items,
                };
                if pending.items.done() {
                    return self.dispatch_pending(token, pending);
                }
                self.conns.get_mut(&token).expect("checked above").pending = Some(pending);
                true
            }
            request => {
                let parse_ns = span_ns(started);
                self.dispatch(token, request, started, parse_ns, CollectedItems::None);
                true
            }
        }
    }

    /// A batched request has all its item lines: hand it to the pool.
    /// `parse_ns` covers header parse + item collection, matching the
    /// threads runtime's `parse` stage span.
    fn dispatch_pending(&mut self, token: u64, pending: PendingBatch) -> bool {
        let PendingBatch { request, started, items } = pending;
        let parse_ns = span_ns(started);
        self.dispatch(token, Ok(request), started, parse_ns, items.finish());
        true
    }

    /// Marks the connection in flight and queues the job.
    fn dispatch(
        &mut self,
        token: u64,
        request: Result<Request, String>,
        started: Instant,
        parse_ns: u64,
        items: CollectedItems,
    ) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight = true;
        }
        {
            let mut guard =
                self.shared.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.0.push_back(Job { token, request, started, parse_ns, items });
        }
        self.shared.available.notify_one();
    }

    /// Pushes buffered reply bytes into the socket until done or
    /// `WouldBlock`. On completion fires the after-write bookkeeping
    /// (crash point, histograms, slow log, shutdown). Returns `false`
    /// when the connection was closed.
    fn try_flush(&mut self, token: u64) -> bool {
        enum Flush {
            Done,
            Partial,
            Failed,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            loop {
                if !conn.wants_write() {
                    break Flush::Done;
                }
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => break Flush::Failed,
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                        break Flush::Partial;
                    }
                    Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break Flush::Failed,
                }
            }
        };
        match outcome {
            Flush::Failed => {
                self.close(token, Close::Gone);
                false
            }
            Flush::Partial => {
                self.update_interest(token);
                true
            }
            Flush::Done => {
                let finished = {
                    let conn = self.conns.get_mut(&token).expect("flushed above");
                    conn.write_buf.clear();
                    conn.written = 0;
                    conn.after_write.take()
                };
                if let Some(AfterWrite { executed, write_started }) = finished {
                    if executed.ack_ingest {
                        // Fault injection: with ack-after-fsync ordering,
                        // a crash *after* the ack has left the socket
                        // must already find the record durable.
                        crash_point(CRASH_AFTER_ACK);
                    }
                    let reply_ns = span_ns(write_started);
                    finish_after_write(&self.ctx, &executed, reply_ns);
                    if executed.shutting_down {
                        self.stop.store(true, Ordering::SeqCst);
                    }
                }
                true
            }
        }
    }

    /// At peer EOF with everything quiet, the framer's trailing partial
    /// line (no newline) is still a request — `read_line` semantics —
    /// including as the final item line of a batch. Returns `false` when
    /// the connection was closed.
    fn finish_eof_if_due(&mut self, token: u64) -> bool {
        let tail = {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            if !conn.peer_eof || conn.inflight || conn.wants_write() {
                return true;
            }
            match conn.framer.finish() {
                Err(_) | Ok(None) => None,
                Ok(Some(line)) => Some(line),
            }
        };
        match tail {
            None => {
                // Clean EOF (or invalid UTF-8 / drain cut short —
                // connection-fatal either way, and there is nothing
                // left to reply to).
                self.close(token, Close::Gone);
                false
            }
            Some(line) => {
                if !self.advance_line(token, line) {
                    return false;
                }
                // A header that started a batch at EOF can never get its
                // items — hang up. A dispatched request still answers
                // (its completion path re-enters here with an empty
                // framer and closes then); a blank tail left the
                // connection quiet, so close now.
                let (hangup, quiet) = {
                    let Some(conn) = self.conns.get_mut(&token) else { return false };
                    (conn.pending.is_some(), !conn.inflight && !conn.wants_write())
                };
                if hangup || quiet {
                    self.close(token, Close::Gone);
                    return false;
                }
                true
            }
        }
    }

    /// Re-registers the fd's epoll interest to match the state machine:
    /// writes wanted → `EPOLLOUT`; otherwise reads, but only while no
    /// request is in flight (one at a time — backpressure all the way to
    /// the client's TCP window).
    fn update_interest(&mut self, token: u64) {
        let failed = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let want = if conn.wants_write() {
                sys::EPOLLOUT
            } else if !conn.inflight && !conn.peer_eof {
                sys::EPOLLIN
            } else {
                0
            };
            if want == conn.interest {
                return;
            }
            conn.interest = want;
            self.epoll.modify(conn.stream.as_raw_fd(), want, token).is_err()
        };
        if failed {
            self.close(token, Close::Gone);
        }
    }

    /// Closes connections idle past the deadline (counted as timeouts,
    /// like the blocking runtime's read deadline firing).
    fn reap_idle(&mut self) {
        let Some(timeout) = self.idle_timeout else { return };
        let reap: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.is_idle() && conn.last_activity.elapsed() >= timeout)
            .map(|(&token, _)| token)
            .collect();
        for token in reap {
            self.close(token, Close::Idle);
        }
    }

    fn close(&mut self, token: u64, reason: Close) {
        if let Some(conn) = self.conns.remove(&token) {
            if matches!(reason, Close::Idle) {
                self.ctx.metrics.record_timeout();
            }
            self.epoll.delete(conn.stream.as_raw_fd());
            // Socket closes on drop; the buffer charge of a pending
            // batch (if any) releases on drop with it.
        }
    }
}
