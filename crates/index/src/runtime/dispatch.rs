//! The runtime-agnostic request core: everything between "a framed
//! request line arrived" and "these reply bytes leave, then record
//! latency" lives here, shared verbatim by the threads runtime and the
//! epoll reactor so the wire bytes cannot drift between them.
//!
//! The split with the runtimes:
//!
//! * [`execute_parsed`] turns one parsed request (plus its batched item
//!   lines, live-read or pre-collected) into an [`Executed`] reply with
//!   all the bookkeeping a runtime needs afterwards.
//! * [`finish_after_write`] records the stage/latency histograms and the
//!   slow-log entry once the runtime has written and flushed the reply.
//! * [`ItemCollector`] is the incremental item-line state machine for the
//!   batched verbs, preserving the exact error priority of the original
//!   blocking reader (over-long line ≻ cumulative cap ≻ memory admission
//!   ≻ parse error), byte-counted and budget-charged line by line.

use std::io::{self, BufRead, Read};
use std::time::Instant;

use kastio_quota::Account;
use kastio_trace::wal::WalRecord;
use kastio_trace::Trace;

use crate::index::{IngestError, PatternIndex, QueryTimings};
use crate::persist::save_index_wal;
use crate::protocol::{
    decode_trace_inline, parse_batch_ingest_item, render_hello_reply, render_hello_unsupported,
    render_metrics_reply, render_mquery_reply, render_query_reply, render_slowlog_get,
    render_slowlog_len, render_slowlog_reset, render_stats_reply, render_trace_line, Request,
    SlowlogCmd, MAX_REQUEST_LINE_BYTES, PROTOCOL_VERSION,
};
use crate::server::{
    verb_slot, ServerMetrics, STAGE_CACHE, STAGE_KERNEL, STAGE_PARSE, STAGE_PREFILTER, STAGE_REPLY,
    VERB_NAMES,
};
use crate::wal::WalManager;

use super::ServeState;

/// The shared daemon state one request executes against. Runtimes build
/// one per connection (threads) or per worker (epoll) from the
/// [`ServeState`]; cloning is cheap (all `Arc`s and handles).
#[derive(Clone)]
pub(crate) struct RequestContext {
    pub index: std::sync::Arc<PatternIndex>,
    pub save_dir: Option<std::path::PathBuf>,
    pub wal: Option<std::sync::Arc<WalManager>>,
    pub metrics: std::sync::Arc<ServerMetrics>,
    pub slow_log: std::sync::Arc<kastio_obs::SlowLog>,
    pub quota: kastio_quota::MemoryQuota,
    pub buffers: Account,
}

impl RequestContext {
    /// The context shared by every request of a [`ServeState`].
    pub fn of(state: &ServeState) -> RequestContext {
        RequestContext {
            index: std::sync::Arc::clone(&state.index),
            save_dir: state.save_dir.clone(),
            wal: state.wal.clone(),
            metrics: std::sync::Arc::clone(&state.metrics),
            slow_log: std::sync::Arc::clone(&state.slow_log),
            quota: state.quota.clone(),
            buffers: state.buffers.clone(),
        }
    }
}

/// The slow-log presentation of a request: its wire verb (space-free, so
/// `SLOW` lines stay token-aligned) and a compact argument summary.
pub(crate) fn request_summary(request: &Request) -> (&'static str, String) {
    match request {
        Request::Hello { version, .. } => ("HELLO", format!("proto={version}")),
        Request::Ingest { label, trace } => {
            ("INGEST", format!("label={label},ops={}", trace.len()))
        }
        Request::BatchIngest { count } => ("BATCH_INGEST", format!("count={count}")),
        Request::Query { k, trace, .. } => ("QUERY", format!("k={k},ops={}", trace.len())),
        Request::MultiQuery { k, count, .. } => ("MQUERY", format!("k={k},count={count}")),
        Request::Stats => ("STATS", String::new()),
        Request::Metrics => ("METRICS", String::new()),
        Request::Slowlog(SlowlogCmd::Get) => ("SLOWLOG", "GET".to_string()),
        Request::Slowlog(SlowlogCmd::Reset) => ("SLOWLOG", "RESET".to_string()),
        Request::Slowlog(SlowlogCmd::Len) => ("SLOWLOG", "LEN".to_string()),
        Request::Save => ("SAVE", String::new()),
        Request::Shutdown => ("SHUTDOWN", String::new()),
    }
}

/// What reading one request (or batch item) line produced.
pub(crate) enum Line {
    /// A complete newline-terminated line is in the buffer.
    Full,
    /// The peer closed the connection.
    Eof,
    /// The line hit [`MAX_REQUEST_LINE_BYTES`] without a newline; the
    /// remainder (up to the next newline) is still unread — drain it
    /// with [`drain_line`] to keep the connection framed.
    TooLong,
}

pub(crate) fn read_request_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<Line> {
    line.clear();
    if reader.by_ref().take(MAX_REQUEST_LINE_BYTES).read_line(line)? == 0 {
        return Ok(Line::Eof);
    }
    if line.len() as u64 >= MAX_REQUEST_LINE_BYTES && !line.ends_with('\n') {
        return Ok(Line::TooLong);
    }
    Ok(Line::Full)
}

/// Discards the unread remainder of an over-long line — everything up to
/// and including the next newline — without buffering it, so the
/// connection can keep serving requests after an `ERR line too long`.
/// Returns `false` when the stream ends first (nothing left to serve).
pub(crate) fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<bool> {
    loop {
        let buffered = reader.fill_buf()?;
        if buffered.is_empty() {
            return Ok(false); // EOF mid-line
        }
        match buffered.iter().position(|&byte| byte == b'\n') {
            Some(at) => {
                reader.consume(at + 1);
                return Ok(true);
            }
            None => {
                let len = buffered.len();
                reader.consume(len);
            }
        }
    }
}

/// Whether a read error is the per-connection idle deadline firing
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
pub(crate) fn is_timeout(error: &io::Error) -> bool {
    matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Nanoseconds elapsed since `start`, saturating.
pub(crate) fn span_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Bytes of one in-flight batched request charged against the `buffers`
/// account, released when the request's reply has been rendered (drop).
/// Admission is all-or-nothing per line: a line that no longer fits
/// sheds the whole request. Owns a handle to the account (rather than
/// borrowing) so the epoll reactor can keep a charge alive across the
/// collect → dispatch → execute handoff.
pub(crate) struct BufferCharge {
    account: Account,
    bytes: u64,
}

impl BufferCharge {
    pub fn new(account: &Account) -> BufferCharge {
        BufferCharge { account: account.clone(), bytes: 0 }
    }

    /// Tries to admit `bytes` more buffered request bytes; on refusal
    /// (budget exhausted even after reclaim) nothing is charged.
    #[must_use]
    pub fn add(&mut self, bytes: u64) -> bool {
        if self.account.try_charge(bytes) {
            self.bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Releases everything charged so far (the request was shed).
    pub fn release_all(&mut self) {
        self.account.release(self.bytes);
        self.bytes = 0;
    }
}

impl Drop for BufferCharge {
    fn drop(&mut self) {
        self.account.release(self.bytes);
    }
}

/// Upper bound on the *cumulative* item bytes of one batched request.
/// The per-line cap alone would let a 4096-item batch buffer gigabytes of
/// parsed items before replying; this keeps a whole `BATCH INGEST` /
/// `MQUERY` within a 16 MiB envelope even without a `--max-memory-bytes`
/// budget (the remaining announced lines are still consumed — without
/// being stored — so the connection stays framed).
pub(crate) const MAX_BATCH_TOTAL_BYTES: u64 = 16 << 20;

/// Outcome of collecting a batch's item lines.
pub(crate) enum Items<T> {
    /// All items read and parsed.
    Parsed(Vec<T>),
    /// An item failed to parse, ran over a size cap or was shed by memory
    /// admission; the `ERR` reply to send (every announced line was still
    /// consumed or drained, so the connection stays framed).
    Bad(String),
}

/// One framed item line as a runtime hands it to the collector.
pub(crate) enum ItemLine {
    /// A complete line, **including** its trailing newline (the
    /// cumulative byte cap counts the newline, exactly as the blocking
    /// reader's `read_line` did).
    Full(String),
    /// The line hit the 1 MiB cap without a newline; the runtime has
    /// drained (or is draining) the remainder.
    TooLong,
}

/// The incremental state machine that gathers the `count` announced item
/// lines of a batched request — one [`ItemCollector::push`] per framed
/// line, from either a blocking reader or the reactor. Every accepted
/// line's bytes are first admitted against the memory budget through the
/// owned [`BufferCharge`]; the first line that no longer fits sheds the
/// whole request with `ERR busy reason=memory` (buffered items and their
/// charges are dropped), while the remaining announced lines are still
/// consumed so the connection stays framed.
pub(crate) struct ItemCollector<T> {
    count: usize,
    seen: usize,
    items: Vec<T>,
    first_error: Option<String>,
    total_bytes: u64,
    charge: BufferCharge,
    parse: fn(&str) -> Result<T, String>,
}

impl<T> ItemCollector<T> {
    pub fn new(count: usize, buffers: &Account, parse: fn(&str) -> Result<T, String>) -> Self {
        ItemCollector {
            count,
            seen: 0,
            items: Vec::new(),
            first_error: None,
            total_bytes: 0,
            charge: BufferCharge::new(buffers),
            parse,
        }
    }

    /// Whether all announced lines have been consumed.
    pub fn done(&self) -> bool {
        self.seen >= self.count
    }

    /// Feeds the next announced line. Error priority matches the
    /// blocking reader exactly: the first failure wins, later lines are
    /// still counted (consumed) but neither stored nor charged.
    pub fn push(&mut self, line: ItemLine) {
        self.seen += 1;
        let line = match line {
            ItemLine::TooLong => {
                if self.first_error.is_none() {
                    self.items = Vec::new();
                    self.charge.release_all();
                    self.first_error = Some("ERR line too long\n".to_string());
                }
                return;
            }
            ItemLine::Full(line) => line,
        };
        if self.first_error.is_some() {
            return; // keep consuming announced lines to stay framed
        }
        self.total_bytes += line.len() as u64;
        if self.total_bytes > MAX_BATCH_TOTAL_BYTES {
            self.items = Vec::new(); // release what was buffered
            self.charge.release_all();
            self.first_error =
                Some(format!("ERR batch exceeds {MAX_BATCH_TOTAL_BYTES} total bytes\n"));
            return;
        }
        if !self.charge.add(line.len() as u64) {
            self.items = Vec::new();
            self.charge.release_all();
            self.first_error = Some("ERR busy reason=memory\n".to_string());
            return;
        }
        match (self.parse)(&line) {
            Ok(item) => self.items.push(item),
            Err(message) => {
                self.first_error =
                    Some(format!("ERR item {}/{}: {message}\n", self.seen, self.count));
            }
        }
    }

    /// The collected outcome plus the still-held buffer charge (released
    /// by the caller once the reply has been rendered).
    pub fn finish(self) -> (Items<T>, BufferCharge) {
        let ItemCollector { items, first_error, charge, .. } = self;
        let outcome = match first_error {
            Some(message) => Items::Bad(message),
            None => Items::Parsed(items),
        };
        (outcome, charge)
    }
}

/// Parses one `MQUERY` item line (a bare inline trace).
pub(crate) fn parse_mquery_item(item: &str) -> Result<Trace, String> {
    decode_trace_inline(item.trim())
}

/// Feeds the collector from a live blocking reader (the threads
/// runtime). Returns `false` on hangup — EOF or the idle deadline
/// mid-batch — in which case the caller closes the connection without a
/// reply.
pub(crate) fn fill_collector<R: BufRead, T>(
    reader: &mut R,
    metrics: &ServerMetrics,
    collector: &mut ItemCollector<T>,
) -> io::Result<bool> {
    let mut line = String::new();
    while !collector.done() {
        let status = match read_request_line(reader, &mut line) {
            Ok(status) => status,
            Err(error) if is_timeout(&error) => {
                metrics.record_timeout();
                return Ok(false);
            }
            Err(error) => return Err(error),
        };
        match status {
            Line::Eof => return Ok(false),
            Line::TooLong => {
                // Drain to the newline and keep the connection framed;
                // the batch as a whole is refused.
                collector.push(ItemLine::TooLong);
                if !drain_line(reader)? {
                    return Ok(false);
                }
            }
            Line::Full => collector.push(ItemLine::Full(std::mem::take(&mut line))),
        }
    }
    Ok(true)
}

/// Pre-collected item lines of a batched request (the epoll reactor
/// gathers them through [`ItemCollector`] before dispatching to a
/// worker), or nothing for the unbatched verbs.
pub(crate) enum CollectedItems {
    None,
    Batch(Items<(String, Trace)>, BufferCharge),
    Queries(Items<Trace>, BufferCharge),
}

/// Where a batched request's item lines come from: read live off the
/// connection (threads runtime — blocking, inline with execution), or
/// already collected by the reactor.
pub(crate) enum ItemsInput<'a, R: BufRead> {
    Live(&'a mut R),
    Collected(CollectedItems),
}

/// One executed request, ready for its runtime to write out: the reply
/// bytes (TRACE line already inserted when requested) plus everything
/// [`finish_after_write`] needs afterwards.
pub(crate) struct Executed {
    pub reply: String,
    /// The verb's histogram slot (`None` for a parse failure).
    pub slot: Option<usize>,
    /// When the request line was framed — the latency clock's zero.
    pub started: Instant,
    pub parse_ns: u64,
    pub timings: QueryTimings,
    pub ran_query: bool,
    /// Slow-log verb + argument summary, built only when the log could
    /// actually keep it.
    pub summary: Option<(&'static str, String)>,
    /// A `SHUTDOWN` was honoured: stop the daemon once the reply is out.
    pub shutting_down: bool,
    /// An acked ingest: the runtime fires the `CRASH_AFTER_ACK` fault
    /// injection point right after the reply bytes leave the socket.
    pub ack_ingest: bool,
}

/// Executes one parsed request against the daemon state. The caller has
/// already read and framed the request line, counted it
/// ([`ServerMetrics::record_request`]) and measured `parse_ns`; this
/// renders the reply and the post-write bookkeeping packet.
///
/// Returns `Ok(None)` on hangup — the connection died (EOF or idle
/// deadline) while the announced item lines of a batched request were
/// being read; the caller closes without replying.
///
/// # Errors
///
/// Propagates only live item-line read failures (threads runtime); a
/// pre-collected input never does I/O and never fails.
pub(crate) fn execute_parsed<R: BufRead>(
    ctx: &RequestContext,
    request: Result<Request, String>,
    started: Instant,
    mut parse_ns: u64,
    items_input: ItemsInput<'_, R>,
) -> io::Result<Option<Executed>> {
    let index = &*ctx.index;
    let wal = ctx.wal.as_deref();
    let metrics = &*ctx.metrics;
    let slot = request.as_ref().ok().map(verb_slot);
    // The argument summary allocates, so it is only built when the slow
    // log could actually keep it.
    let summary =
        ctx.slow_log.threshold_micros().and_then(|_| request.as_ref().ok().map(request_summary));
    let mut query_timings = QueryTimings::default();
    let mut ran_query = false;
    let mut timed = false;
    let mut shutting_down = false;
    let mut reply = match request {
        Err(message) => format!("ERR {message}\n"),
        Ok(Request::Hello { version, client: _ }) => {
            // Version negotiation: the handshake succeeds only on an
            // exact match today (there is one version). Every other
            // verb keeps working without a HELLO, so old clients are
            // unaffected.
            if version == PROTOCOL_VERSION {
                render_hello_reply()
            } else {
                render_hello_unsupported(version)
            }
        }
        Ok(Request::Ingest { label, trace }) => {
            // `ingest_auto` consumes the label and trace, but the WAL
            // record needs them too — and only exists on the success
            // path, so the clone is taken up front.
            let journal = wal.map(|wal| (wal, label.clone(), trace.clone()));
            match index.ingest_auto(label, trace) {
                Ok(id) => {
                    let durable = journal.map_or(Ok(()), |(wal, label, trace)| {
                        wal_commit(
                            wal,
                            vec![WalRecord { id: id.0, name: format!("e{}", id.0), label, trace }],
                        )
                    });
                    match durable {
                        Ok(()) => {
                            format!("OK id={} name=e{} entries={}\n", id.0, id.0, index.len())
                        }
                        Err(e) => format!("ERR wal: {e}\n"),
                    }
                }
                Err(e) => format!("ERR {e}\n"),
            }
        }
        Ok(Request::BatchIngest { count }) => {
            let items_started = Instant::now();
            let (items, charge) = match items_input {
                ItemsInput::Live(reader) => {
                    let mut collector =
                        ItemCollector::new(count, &ctx.buffers, parse_batch_ingest_item);
                    if !fill_collector(reader, metrics, &mut collector)? {
                        return Ok(None);
                    }
                    collector.finish()
                }
                ItemsInput::Collected(CollectedItems::Batch(items, charge)) => (items, charge),
                ItemsInput::Collected(_) => unreachable!("reactor collects per parsed verb"),
            };
            parse_ns += span_ns(items_started);
            let reply = match items {
                Items::Bad(message) => message,
                Items::Parsed(items) => batch_ingest_reply(index, count, items, wal),
            };
            drop(charge); // buffered bytes released once the reply exists
            reply
        }
        Ok(Request::Query { k, trace, timed: t }) => {
            let result = index.query(&trace, k);
            query_timings = result.timings;
            ran_query = true;
            timed = t;
            render_query_reply(&result)
        }
        Ok(Request::MultiQuery { k, count, timed: t }) => {
            let items_started = Instant::now();
            let (items, charge) = match items_input {
                ItemsInput::Live(reader) => {
                    let mut collector = ItemCollector::new(count, &ctx.buffers, parse_mquery_item);
                    if !fill_collector(reader, metrics, &mut collector)? {
                        return Ok(None);
                    }
                    collector.finish()
                }
                ItemsInput::Collected(CollectedItems::Queries(items, charge)) => (items, charge),
                ItemsInput::Collected(_) => unreachable!("reactor collects per parsed verb"),
            };
            parse_ns += span_ns(items_started);
            let reply = match items {
                Items::Bad(message) => message,
                Items::Parsed(traces) => {
                    let results = index.query_batch(&traces, k);
                    for result in &results {
                        query_timings.merge(&result.timings);
                    }
                    ran_query = true;
                    timed = t;
                    render_mquery_reply(&results)
                }
            };
            drop(charge);
            reply
        }
        Ok(Request::Stats) => {
            // One shard-size snapshot, with `entries` derived from it:
            // a concurrent ingest between two separate scans could
            // otherwise make the reply violate the documented
            // invariant that the shard counts sum to `entries`.
            let shard_sizes = index.shard_sizes();
            let entries = shard_sizes.iter().sum();
            render_stats_reply(
                entries,
                index.cached_pairs(),
                &shard_sizes,
                &index.stats(),
                index.generation(),
                &snapshot_status_with_wal(index, wal),
                &metrics.snapshot_with_quota(&ctx.quota),
                &metrics.latency_quantiles(),
            )
        }
        Ok(Request::Metrics) => render_metrics_reply(
            &metrics.snapshot_with_quota(&ctx.quota),
            &metrics.verb_latency_snapshots(),
            &metrics.stage_latency_snapshots(),
            &snapshot_status_with_wal(index, wal),
            ctx.slow_log.len(),
        ),
        Ok(Request::Slowlog(SlowlogCmd::Get)) => render_slowlog_get(&ctx.slow_log.entries()),
        Ok(Request::Slowlog(SlowlogCmd::Len)) => render_slowlog_len(ctx.slow_log.len()),
        Ok(Request::Slowlog(SlowlogCmd::Reset)) => {
            ctx.slow_log.reset();
            render_slowlog_reset()
        }
        Ok(Request::Save) => match ctx.save_dir.as_deref() {
            None => "ERR no save directory (start the server with --save)\n".to_string(),
            Some(dir) => match save_index_wal(index, dir, wal) {
                Ok(info) => {
                    // Under --wal a snapshot is a compaction point:
                    // the reply says the log was trimmed too, so a
                    // client (and the conformance suite) can tell the
                    // two durability modes apart on the wire.
                    let wal_note = if wal.is_some() { " wal=truncated" } else { "" };
                    format!(
                        "OK saved entries={} generation={}{wal_note}\n",
                        info.entries, info.generation
                    )
                }
                Err(e) => format!("ERR save failed: {e}\n"),
            },
        },
        Ok(Request::Shutdown) => {
            // Save *before* replying, so the client that requested
            // the shutdown learns whether the corpus actually made it
            // to disk. The server shuts down either way — the caller
            // of serve() re-checks the snapshot status and surfaces
            // the failure in its exit code.
            shutting_down = true;
            match ctx.save_dir.as_deref() {
                None => "OK bye\n".to_string(),
                Some(dir) => match save_index_wal(index, dir, wal) {
                    Ok(info) => {
                        format!("OK bye saved={} generation={}\n", info.entries, info.generation)
                    }
                    Err(e) => format!("ERR save failed: {e} (shutting down anyway)\n"),
                },
            }
        }
    };
    if reply.starts_with("ERR") {
        metrics.record_error();
    }
    // Every memory shed reply — whatever path produced it (ingest
    // admission, batch item, request buffers) — is counted here, so
    // the STATS tally equals the ERR busy replies clients observed.
    if reply.starts_with("ERR busy reason=memory") {
        metrics.record_shed_memory();
    }
    if timed && reply.ends_with("END\n") {
        // The reply-write span cannot be known before the reply is
        // written, so the inline TRACE total covers read → render;
        // `reply` still shows up in the stage histograms and the
        // slow log. Per-field flooring to µs keeps the rendered
        // stage sum at or under the rendered total.
        let trace_line = render_trace_line(
            span_ns(started),
            &[
                ("parse", parse_ns),
                ("prefilter", query_timings.prefilter_ns),
                ("cache", query_timings.cache_ns),
                ("kernel", query_timings.kernel_ns),
            ],
        );
        reply.insert_str(reply.len() - "END\n".len(), &trace_line);
    }
    let ack_ingest = reply.starts_with("OK")
        && matches!(slot.map(|s| VERB_NAMES[s]), Some("ingest" | "batch_ingest"));
    Ok(Some(Executed {
        reply,
        slot,
        started,
        parse_ns,
        timings: query_timings,
        ran_query,
        summary,
        shutting_down,
        ack_ingest,
    }))
}

/// Post-write bookkeeping, identical under every runtime: stage spans,
/// the verb's total-latency histogram, and the slow-log entry. `reply_ns`
/// is the measured write+flush span.
pub(crate) fn finish_after_write(ctx: &RequestContext, done: &Executed, reply_ns: u64) {
    let metrics = &*ctx.metrics;
    let total_ns = span_ns(done.started);
    metrics.record_stage(STAGE_PARSE, done.parse_ns);
    if done.ran_query {
        metrics.record_stage(STAGE_PREFILTER, done.timings.prefilter_ns);
        metrics.record_stage(STAGE_CACHE, done.timings.cache_ns);
        metrics.record_stage(STAGE_KERNEL, done.timings.kernel_ns);
    }
    metrics.record_stage(STAGE_REPLY, reply_ns);
    if let Some(slot) = done.slot {
        metrics.record_latency(slot, total_ns);
    }
    if let Some((verb, args)) = &done.summary {
        let mut stages = vec![("parse", done.parse_ns / 1_000)];
        if done.ran_query {
            stages.push(("prefilter", done.timings.prefilter_ns / 1_000));
            stages.push(("cache", done.timings.cache_ns / 1_000));
            stages.push(("kernel", done.timings.kernel_ns / 1_000));
        }
        stages.push(("reply", reply_ns / 1_000));
        ctx.slow_log.record(metrics.uptime_micros(), verb, args.clone(), total_ns / 1_000, stages);
    }
}

/// Applies a fully parsed `BATCH INGEST` item list. Labels were validated
/// line by line during parsing; the remaining mid-batch failure is memory
/// admission — with a budget attached, the first item that no longer fits
/// sheds the rest of the batch with `ERR busy reason=memory` (the
/// already-applied prefix is kept, as the reply says, and logged to the
/// WAL so later acked ingests never sit past an id gap at replay).
pub(crate) fn batch_ingest_reply(
    index: &PatternIndex,
    count: usize,
    items: Vec<(String, Trace)>,
    wal: Option<&WalManager>,
) -> String {
    let mut records = Vec::new();
    for (i, (label, trace)) in items.into_iter().enumerate() {
        let journal = wal.map(|_| (label.clone(), trace.clone()));
        match index.ingest_auto(label, trace) {
            Ok(id) => {
                if let Some((label, trace)) = journal {
                    records.push(WalRecord { id: id.0, name: format!("e{}", id.0), label, trace });
                }
            }
            Err(e) => {
                // The applied prefix is in memory either way; with a WAL
                // it must also be logged, or a *later* acked ingest would
                // sit past an id gap and be dropped at replay. The ERR
                // still means this batch as a whole was not acked.
                if let Some(wal) = wal {
                    let _ = wal_commit(wal, records);
                }
                // A memory shed keeps the canonical busy prefix so
                // clients (and the shed counter) recognise it.
                return match e {
                    IngestError::OverMemoryBudget => {
                        format!(
                            "ERR busy reason=memory (first {i} of {count} items were ingested)\n"
                        )
                    }
                    e => {
                        format!("ERR item {}/{count}: {e} (previous items were ingested)\n", i + 1)
                    }
                };
            }
        }
    }
    if let Some(wal) = wal {
        if let Err(e) = wal_commit(wal, records) {
            return format!("ERR wal: {e}\n");
        }
    }
    format!("OK batch={count} entries={}\n", index.len())
}

/// Appends `records` to the log and blocks until one group-commit fsync
/// covers them all — the gate an ingest reply waits behind.
pub(crate) fn wal_commit(wal: &WalManager, records: Vec<WalRecord>) -> io::Result<()> {
    let mut last = 0;
    for record in &records {
        last = wal.append(record)?;
    }
    wal.wait_durable(last)
}

/// The index's snapshot status with the live WAL counters overlaid (when
/// a WAL is attached) — the form `STATS` / `METRICS` report.
pub(crate) fn snapshot_status_with_wal(
    index: &PatternIndex,
    wal: Option<&WalManager>,
) -> crate::index::SnapshotStatus {
    let mut status = index.snapshot_status();
    if let Some(wal) = wal {
        wal.overlay(&mut status);
    }
    status
}
