//! Pluggable serving runtimes behind one [`Runtime`] trait.
//!
//! The serve daemon's protocol semantics (parsing, dispatch, replies,
//! metrics, governance) live in the crate-private `dispatch` module and
//! are runtime-agnostic;
//! what varies is only how sockets are accepted, read and written. Two
//! implementations exist, selected by `kastio serve --runtime`:
//!
//! * [`ThreadsRuntime`] — the original thread-per-connection loop:
//!   blocking I/O, one OS thread per client. Simple and robust, but it
//!   tops out in the hundreds of concurrent clients (thread stacks and
//!   scheduler pressure).
//! * [`EpollRuntime`] — a hand-rolled single-threaded epoll reactor
//!   (Linux only) driving non-blocking sockets through per-connection
//!   state machines, with request execution on a bounded worker pool.
//!   It holds tens of thousands of idle connections in one process.
//!
//! The split follows arti's `tor-rtcompat` model: callers hold a
//! [`RuntimeKind`] (or a `&dyn Runtime`) and never see the difference —
//! the wire protocol is byte-identical under both, which the conformance
//! suite asserts by running against each.

pub(crate) mod dispatch;
#[cfg(target_os = "linux")]
mod epoll;
#[cfg(target_os = "linux")]
mod sys;
mod threads;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use kastio_obs::SlowLog;
use kastio_quota::{Account, MemoryQuota};

use crate::index::PatternIndex;
use crate::server::ServerMetrics;
use crate::wal::WalManager;

pub use threads::ThreadsRuntime;

/// Everything a runtime needs to serve: the bound listener plus the
/// shared daemon state ([`crate::Server`] hands its fields over when
/// `serve()` starts). Opaque outside the crate — runtimes are selected,
/// not assembled, by callers.
pub struct ServeState {
    pub(crate) listener: TcpListener,
    /// The listener's bound address (pre-resolved so runtimes need not
    /// re-ask after moving the listener).
    pub(crate) addr: SocketAddr,
    pub(crate) index: Arc<PatternIndex>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) save_dir: Option<PathBuf>,
    pub(crate) wal: Option<Arc<WalManager>>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) slow_log: Arc<SlowLog>,
    pub(crate) quota: MemoryQuota,
    /// One shared account for every connection's in-flight request
    /// buffers: admission is against the *root* budget anyway, and a
    /// shared account keeps the STATS story simple.
    pub(crate) buffers: Account,
    pub(crate) max_connections: usize,
    pub(crate) idle_timeout: Option<Duration>,
}

/// A serving strategy: owns the accept loop and all socket I/O, and runs
/// every request through the shared dispatch core so the wire bytes are
/// identical whichever implementation is serving.
///
/// Implementations must honour the daemon's governance contract:
/// `max_connections` sheds at accept with `ERR busy reason=connections`,
/// `idle_timeout` closes silent connections and counts them, and the
/// 1 MiB request-line cap answers `ERR line too long` while keeping the
/// connection framed.
pub trait Runtime: Send + Sync {
    /// The `--runtime` name this implementation answers to.
    fn name(&self) -> &'static str;

    /// Serves connections until a `SHUTDOWN` request (or the stop flag)
    /// fires, then returns the shared index so the caller can persist it.
    ///
    /// # Errors
    ///
    /// Implementation-specific setup failures (e.g. the reactor's
    /// `epoll_create1`); after a successful start, runtimes treat
    /// per-connection errors as that connection's problem, never the
    /// daemon's.
    fn serve(&self, state: ServeState) -> io::Result<Arc<PatternIndex>>;
}

/// The built-in runtime implementations, as selected by
/// `kastio serve --runtime {threads|epoll}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// Thread-per-connection with blocking I/O (the default).
    #[default]
    Threads,
    /// Single-threaded epoll reactor with a bounded worker pool (Linux
    /// only; selecting it elsewhere makes `serve()` fail with
    /// [`io::ErrorKind::Unsupported`]).
    Epoll,
}

impl RuntimeKind {
    /// The `--runtime` spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Threads => "threads",
            RuntimeKind::Epoll => "epoll",
        }
    }

    /// The implementation this kind selects.
    pub fn runtime(self) -> &'static dyn Runtime {
        match self {
            RuntimeKind::Threads => &ThreadsRuntime,
            RuntimeKind::Epoll => &EpollRuntime,
        }
    }
}

impl std::fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RuntimeKind {
    type Err = String;

    fn from_str(name: &str) -> Result<RuntimeKind, String> {
        match name {
            "threads" => Ok(RuntimeKind::Threads),
            "epoll" => Ok(RuntimeKind::Epoll),
            other => Err(format!("unknown runtime `{other}` (threads | epoll)")),
        }
    }
}

/// The epoll reactor runtime (the `runtime::epoll` module docs describe
/// the state machine and wakeup path). On non-Linux
/// targets the type still exists, so `--runtime epoll` parses everywhere
/// and fails with a clear [`io::ErrorKind::Unsupported`] at serve time.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollRuntime;

impl Runtime for EpollRuntime {
    fn name(&self) -> &'static str {
        "epoll"
    }

    #[cfg(target_os = "linux")]
    fn serve(&self, state: ServeState) -> io::Result<Arc<PatternIndex>> {
        epoll::serve(state)
    }

    #[cfg(not(target_os = "linux"))]
    fn serve(&self, _state: ServeState) -> io::Result<Arc<PatternIndex>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll runtime requires Linux (use --runtime threads)",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_kind_parses_its_own_names() {
        assert_eq!("threads".parse::<RuntimeKind>().unwrap(), RuntimeKind::Threads);
        assert_eq!("epoll".parse::<RuntimeKind>().unwrap(), RuntimeKind::Epoll);
        assert_eq!(RuntimeKind::Threads.to_string(), "threads");
        assert_eq!(RuntimeKind::Epoll.to_string(), "epoll");
        assert_eq!(RuntimeKind::default(), RuntimeKind::Threads);
        let err = "tokio".parse::<RuntimeKind>().unwrap_err();
        assert!(err.contains("threads | epoll"), "{err}");
    }

    #[test]
    fn kinds_select_matching_implementations() {
        assert_eq!(RuntimeKind::Threads.runtime().name(), "threads");
        assert_eq!(RuntimeKind::Epoll.runtime().name(), "epoll");
    }
}
