//! Raw epoll/eventfd prototypes for the reactor runtime, dependency-free.
//!
//! The build environment has no crates.io access, so there is no `libc`
//! or `mio` to lean on. Following the pattern proven in
//! [`crate::signal`], this module declares the handful of C symbols the
//! reactor needs — `epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`, `fcntl`, plus the `read`/`write`/`close` trio for the
//! wakeup fd — all already linked into every std binary on Linux.
//!
//! The only layout-sensitive piece is [`EpollEvent`]: the kernel ABI
//! packs `struct epoll_event` on x86-64 (glibc's `__EPOLL_PACKED`) and
//! uses natural alignment everywhere else, which the `cfg_attr` pair
//! below reproduces. Everything here is `pub(crate)` plumbing for
//! [`crate::runtime::epoll`]; the safe wrappers live there.

use std::os::raw::{c_int, c_void};

pub const EPOLL_CLOEXEC: c_int = 0o2000000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x1;
pub const EPOLLOUT: u32 = 0x4;
pub const EPOLLERR: u32 = 0x8;
pub const EPOLLHUP: u32 = 0x10;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const O_NONBLOCK: c_int = 0o4000;

/// One readiness record, as `epoll_wait(2)` fills them in. `data` is the
/// opaque token registered with `epoll_ctl(2)` — the reactor stores a
/// connection id there and never a pointer, so no lifetime rides on the
/// kernel round-trip.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEvent,
        maxevents: c_int,
        timeout_ms: c_int,
    ) -> c_int;
    pub fn eventfd(initval: u32, flags: c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    pub fn close(fd: c_int) -> c_int;
}
