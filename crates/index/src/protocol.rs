//! The line-oriented text protocol spoken by `kastio serve`.
//!
//! One request per line, one reply per request. Traces travel inline with
//! operations separated by `;` (each operation is the plain-text trace
//! line format, `<handle> <op> <bytes>`):
//!
//! ```text
//! INGEST <label> <op>;<op>;…           → OK id=<id> name=<name> entries=<n>
//! QUERY k=<k> <op>;<op>;…              → OK matches=<m> label=<label|->
//!                                        MATCH <rank> <name> <label> <similarity>
//!                                        … (m lines) …
//!                                        END
//! STATS                                → STAT <key> <value> … END
//! SHUTDOWN                             → OK bye (server stops accepting)
//! ```
//!
//! Errors are a single `ERR <message>` line; the connection stays open.
//! Similarities are rendered with Rust's shortest-round-trip float
//! formatting, so parsing the decimal text back with `f64::from_str`
//! reconstructs the bit-identical kernel value.

use kastio_trace::{parse_trace, write_trace, Trace};

use crate::index::{IndexStats, QueryResult};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Add one labelled trace to the corpus.
    Ingest {
        /// Label recorded for the new entry.
        label: String,
        /// The decoded trace.
        trace: Trace,
    },
    /// k-NN query over the corpus.
    Query {
        /// Number of neighbours requested.
        k: usize,
        /// The decoded query trace.
        trace: Trace,
    },
    /// Report index counters.
    Stats,
    /// Stop the server after replying.
    Shutdown,
}

/// Renders a trace in the single-line wire form (`;`-separated ops).
///
/// # Examples
///
/// ```
/// use kastio_index::protocol::{decode_trace_inline, encode_trace_inline};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 write 64\nh0 close 0\n")?;
/// let wire = encode_trace_inline(&trace);
/// assert_eq!(wire, "h0 open 0;h0 write 64;h0 close 0");
/// assert_eq!(decode_trace_inline(&wire)?, trace);
/// # Ok(())
/// # }
/// ```
pub fn encode_trace_inline(trace: &Trace) -> String {
    write_trace(trace).trim_end().replace('\n', ";")
}

/// Decodes the single-line wire form back into a trace.
///
/// # Errors
///
/// Returns a human-readable message naming the offending operation if any
/// `;`-separated segment is not a valid trace line.
pub fn decode_trace_inline(wire: &str) -> Result<Trace, String> {
    let text: String = wire.split(';').map(str::trim).collect::<Vec<_>>().join("\n");
    parse_trace(&text).map_err(|e| format!("bad inline trace: {e}"))
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message (sent back as `ERR …`) when the line
/// is not a well-formed request.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    match verb {
        "INGEST" => {
            let (label, wire) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "INGEST needs `<label> <trace>`".to_string())?;
            Ok(Request::Ingest { label: label.to_string(), trace: decode_trace_inline(wire)? })
        }
        "QUERY" => {
            let (kspec, wire) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "QUERY needs `k=<k> <trace>`".to_string())?;
            let k: usize = kspec
                .strip_prefix("k=")
                .and_then(|v| v.parse().ok())
                .filter(|&k| k > 0)
                .ok_or_else(|| format!("bad k spec `{kspec}` (expected k=<positive int>)"))?;
            Ok(Request::Query { k, trace: decode_trace_inline(wire)? })
        }
        "STATS" if rest.is_empty() => Ok(Request::Stats),
        "SHUTDOWN" if rest.is_empty() => Ok(Request::Shutdown),
        "" => Err("empty request".to_string()),
        other => Err(format!("unknown verb `{other}`")),
    }
}

/// Renders a query result as the multi-line `OK … MATCH … END` reply.
pub fn render_query_reply(result: &QueryResult) -> String {
    let mut out = format!(
        "OK matches={} label={}\n",
        result.neighbors.len(),
        result.label.as_deref().unwrap_or("-")
    );
    for (rank, n) in result.neighbors.iter().enumerate() {
        // `{}` on f64 prints the shortest string that round-trips, so the
        // client recovers the exact bits.
        out.push_str(&format!("MATCH {} {} {} {}\n", rank + 1, n.name, n.label, n.similarity));
    }
    out.push_str("END\n");
    out
}

/// Renders index counters as the multi-line `STAT … END` reply.
pub fn render_stats_reply(entries: usize, cached_pairs: usize, stats: &IndexStats) -> String {
    format!(
        "STAT entries {entries}\n\
         STAT queries {}\n\
         STAT kernel_evals {}\n\
         STAT cache_hits {}\n\
         STAT cached_pairs {cached_pairs}\n\
         STAT prefilter_pruned {}\n\
         STAT ingest_evals {}\n\
         STAT query_self_evals {}\n\
         END\n",
        stats.queries,
        stats.kernel_evals,
        stats.cache_hits,
        stats.prefilter_pruned,
        stats.ingest_evals,
        stats.query_self_evals
    )
}

/// Reads one complete server reply — a single `OK …`/`ERR …` line, or a
/// multi-line `OK matches=…`/`STAT …` block terminated by `END` — so every
/// client (the `kastio query` subcommand, tests, examples) shares one
/// definition of the reply framing.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::UnexpectedEof`] if the connection closes
/// mid-reply, or the underlying read error.
pub fn read_reply<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut read_line = |reply: &mut String| -> std::io::Result<usize> {
        let start = reply.len();
        if reader.read_line(reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-reply",
            ));
        }
        Ok(start)
    };
    let mut reply = String::new();
    read_line(&mut reply)?;
    if reply.starts_with("OK matches=") || reply.starts_with("STAT") {
        loop {
            let start = read_line(&mut reply)?;
            if &reply[start..] == "END\n" {
                break;
            }
        }
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryId;
    use crate::index::Neighbor;

    #[test]
    fn trace_inline_roundtrip() {
        let trace = parse_trace("h0 open 0\nh1 write 8\nh0 close 0\n").unwrap();
        let wire = encode_trace_inline(&trace);
        assert!(!wire.contains('\n'));
        assert_eq!(decode_trace_inline(&wire).unwrap(), trace);
    }

    #[test]
    fn parses_ingest() {
        let req = parse_request("INGEST flash h0 write 64;h0 write 64").unwrap();
        match req {
            Request::Ingest { label, trace } => {
                assert_eq!(label, "flash");
                assert_eq!(trace.len(), 2);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn parses_query_with_k() {
        let req = parse_request("QUERY k=3 h0 read 8").unwrap();
        assert!(matches!(req, Request::Query { k: 3, .. }));
    }

    #[test]
    fn parses_bare_verbs() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("  SHUTDOWN  ").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("FROB x").unwrap_err().contains("FROB"));
        assert!(parse_request("INGEST onlylabel").unwrap_err().contains("INGEST"));
        assert!(parse_request("QUERY k=0 h0 read 8").unwrap_err().contains("k spec"));
        assert!(parse_request("QUERY k=x h0 read 8").unwrap_err().contains("k spec"));
        assert!(parse_request("QUERY k=2 h0 read").unwrap_err().contains("bad inline trace"));
    }

    #[test]
    fn query_reply_roundtrips_similarity_bits() {
        // A value whose decimal form needs all 17 significant digits.
        let sim = std::f64::consts::PI / 3.0;
        let result = QueryResult {
            neighbors: vec![Neighbor {
                id: EntryId(0),
                name: "A00".to_string(),
                label: "A".to_string(),
                similarity: sim,
            }],
            label: Some("A".to_string()),
            candidates: 1,
            evaluated: 1,
            cache_hits: 0,
        };
        let reply = render_query_reply(&result);
        let match_line = reply.lines().nth(1).unwrap();
        let rendered = match_line.split_whitespace().last().unwrap();
        let parsed: f64 = rendered.parse().unwrap();
        assert_eq!(parsed.to_bits(), sim.to_bits());
        assert!(reply.starts_with("OK matches=1 label=A\n"));
        assert!(reply.ends_with("END\n"));
    }

    #[test]
    fn stats_reply_lists_counters() {
        let stats = IndexStats {
            queries: 2,
            kernel_evals: 5,
            cache_hits: 3,
            prefilter_pruned: 7,
            ingest_evals: 4,
            query_self_evals: 2,
        };
        let reply = render_stats_reply(4, 5, &stats);
        assert!(reply.contains("STAT entries 4\n"));
        assert!(reply.contains("STAT kernel_evals 5\n"));
        assert!(reply.contains("STAT prefilter_pruned 7\n"));
        assert!(reply.contains("STAT query_self_evals 2\n"));
        assert!(reply.ends_with("END\n"));
    }

    #[test]
    fn read_reply_frames_single_and_multi_line_replies() {
        use std::io::BufReader;
        let wire = "OK id=0 name=e0 entries=1\nOK matches=1 label=x\nMATCH 1 e0 x 1\nEND\n\
                    STAT entries 1\nEND\nERR nope\n";
        let mut reader = BufReader::new(wire.as_bytes());
        assert_eq!(read_reply(&mut reader).unwrap(), "OK id=0 name=e0 entries=1\n");
        assert_eq!(read_reply(&mut reader).unwrap(), "OK matches=1 label=x\nMATCH 1 e0 x 1\nEND\n");
        assert_eq!(read_reply(&mut reader).unwrap(), "STAT entries 1\nEND\n");
        assert_eq!(read_reply(&mut reader).unwrap(), "ERR nope\n");
        let err = read_reply(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
