//! The line-oriented text protocol spoken by `kastio serve`.
//!
//! One request per line, one reply per request — except for the batched
//! forms, whose *items* follow the header line, one per line. Traces
//! travel inline with operations separated by `;` (each operation is the
//! plain-text trace line format, `<handle> <op> <bytes>`):
//!
//! ```text
//! HELLO <proto-version> [client]       → OK kastio proto=1 verbs=…
//! INGEST <label> <op>;<op>;…           → OK id=<id> name=<name> entries=<n>
//! BATCH INGEST <count>                 → OK batch=<count> entries=<n>
//! <label> <op>;<op>;…   (count lines)
//! QUERY k=<k> <op>;<op>;…              → OK matches=<m> label=<label|->
//!                                        MATCH <rank> <name> <label> <similarity>
//!                                        … (m lines) …
//!                                        END
//! MQUERY k=<k> <count>                 → OK queries=<count>
//! <op>;<op>;…           (count lines)    RESULT <i> matches=<m> label=<label|->
//!                                        MATCH … (m lines per result) …
//!                                        END
//! STATS                                → STAT <key> <value> … END
//! METRICS                              → OK metrics
//!                                        <Prometheus-style exposition>
//!                                        END
//! SLOWLOG GET|RESET|LEN                → OK slowlog entries=<n> … END /
//!                                        OK slowlog reset /
//!                                        OK slowlog len=<n>
//! SAVE                                 → OK saved entries=<n> generation=<g>
//! SHUTDOWN                             → OK bye (server stops accepting;
//!                                        `OK bye saved=<n> generation=<g>`
//!                                        when a save directory is set)
//! ```
//!
//! `QUERY` and `MQUERY` accept an optional `trace=1` token between the
//! `k=` spec and the payload (`QUERY k=3 trace=1 <trace>`); when present
//! the reply carries one `TRACE total_us=… <stage>_us=…` line before
//! `END` with the server-side per-stage breakdown. The flag is off by
//! default, so untraced replies are byte-identical to protocol v1.
//!
//! Errors are a single `ERR <message>` line; the connection stays open
//! (for the batched forms, all `<count>` item lines are consumed before
//! the `ERR` reply, so the stream stays framed). Similarities are
//! rendered with Rust's shortest-round-trip float formatting, so parsing
//! the decimal text back with `f64::from_str` reconstructs the
//! bit-identical kernel value.
//!
//! The full specification — framing, size caps, error catalogue and a
//! worked transcript — lives in `docs/PROTOCOL.md`.

use kastio_obs::{Exposition, Histogram, SlowEntry};
use kastio_trace::{parse_trace, write_trace, Trace};

use crate::index::{IndexStats, QueryResult, SnapshotStatus};

/// Upper bound on the item count a `BATCH INGEST`/`MQUERY` header may
/// announce; clients with more items issue several batches. Memory is
/// bounded separately: the server also caps a batch's *cumulative* item
/// bytes at the single-request limit (16 MiB), so a maximal item count
/// cannot multiply the per-line cap.
pub const MAX_BATCH_ITEMS: usize = 4096;

/// The protocol version this implementation speaks, negotiated by the
/// `HELLO` verb. Additive changes (new verbs, new `STAT` keys) do not
/// bump it; a breaking change (renamed verb, reshaped reply) must.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one request (or batch item) line: 1 MiB. A client
/// streaming data with no newline would otherwise grow the line buffer
/// without limit and OOM the daemon; 1 MiB comfortably fits any
/// realistic inline trace (a trace line of `n` operations is well under
/// 16 bytes per op). An over-long line is answered with
/// `ERR line too long` and *drained to its newline* — the connection
/// stays framed and usable. The cap is runtime-independent: the blocking
/// reader enforces it through a `take()` adapter, the epoll reactor
/// through [`LineFramer`].
pub const MAX_REQUEST_LINE_BYTES: u64 = 1 << 20;

/// One framed line as [`LineFramer`] emits them.
#[derive(Debug, PartialEq, Eq)]
pub enum FramedLine {
    /// A complete line, **including** its trailing newline (matching the
    /// blocking reader's `read_line` output byte for byte, so downstream
    /// byte accounting is identical under both runtimes).
    Full(String),
    /// The line hit [`MAX_REQUEST_LINE_BYTES`] without a newline. The
    /// capped prefix has been discarded and the framer is now *draining*:
    /// it silently swallows bytes until the newline, then resumes
    /// framing. Emitted once per over-long line.
    TooLong,
}

/// Incremental, non-blocking line framing for the epoll reactor: bytes
/// arrive in arbitrary chunks ([`LineFramer::push_bytes`]) and complete
/// protocol lines come out ([`LineFramer::next_line`]), with the same
/// 1 MiB cap, UTF-8 validation and over-long-line drain semantics as the
/// blocking `take(MAX).read_line()` path — proven byte-identical by the
/// conformance suite running against both runtimes.
///
/// Invalid UTF-8 is connection-fatal (an `InvalidData` error), exactly
/// as `read_line` treats it; validation happens *before* the over-long
/// check so a binary blast cannot be laundered into a polite
/// `ERR line too long`.
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline — re-scanning from 0
    /// on every small chunk would make framing O(n²) per line.
    scanned: usize,
    /// Swallowing the remainder of an over-long line (everything up to
    /// and including the next newline).
    draining: bool,
}

impl LineFramer {
    pub fn new() -> LineFramer {
        LineFramer::default()
    }

    /// Appends freshly read bytes to the frame buffer.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether nothing is buffered and no drain is in progress (the
    /// connection is between requests — safe to reap as idle).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && !self.draining
    }

    /// The next complete line, if one is buffered.
    ///
    /// # Errors
    ///
    /// `InvalidData` when a completed line (or the capped prefix of an
    /// over-long one) is not valid UTF-8 — connection-fatal, as under the
    /// blocking reader.
    pub fn next_line(&mut self) -> std::io::Result<Option<FramedLine>> {
        let max = usize::try_from(MAX_REQUEST_LINE_BYTES).unwrap_or(usize::MAX);
        if self.draining {
            match self.buf.iter().position(|&byte| byte == b'\n') {
                Some(at) => {
                    self.buf.drain(..=at);
                    self.scanned = 0;
                    self.draining = false;
                }
                None => {
                    self.buf.clear();
                    self.scanned = 0;
                    return Ok(None);
                }
            }
        }
        let scan_end = self.buf.len().min(max);
        match self.buf[self.scanned..scan_end].iter().position(|&byte| byte == b'\n') {
            Some(at) => {
                let end = self.scanned + at;
                let line: Vec<u8> = self.buf.drain(..=end).collect();
                self.scanned = 0;
                Ok(Some(FramedLine::Full(utf8(line)?)))
            }
            // `>=` with a newline *at* the cap boundary still frames: a
            // line whose newline is byte `max` (1-indexed) is exactly
            // what `take(max).read_line` accepts, found above because
            // `scan_end` includes index `max - 1`.
            None if self.buf.len() >= max => {
                // The capped prefix must be UTF-8 even though it is
                // discarded — read_line validates before the server can
                // notice the length.
                let prefix: Vec<u8> = self.buf.drain(..max).collect();
                utf8(prefix)?;
                self.scanned = 0;
                self.draining = true;
                Ok(Some(FramedLine::TooLong))
            }
            None => {
                self.scanned = scan_end;
                Ok(None)
            }
        }
    }

    /// The peer sent EOF: the final, newline-less partial line — which
    /// `read_line` *does* return and the server *does* process — or
    /// `None` when the connection ended cleanly (empty buffer, or EOF in
    /// the middle of draining an over-long line: hangup, no reply).
    ///
    /// # Errors
    ///
    /// `InvalidData` when the trailing bytes are not valid UTF-8.
    pub fn finish(&mut self) -> std::io::Result<Option<FramedLine>> {
        if self.draining {
            self.buf.clear();
            self.scanned = 0;
            return Ok(None);
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        let tail: Vec<u8> = std::mem::take(&mut self.buf);
        self.scanned = 0;
        Ok(Some(FramedLine::Full(utf8(tail)?)))
    }
}

fn utf8(bytes: Vec<u8>) -> std::io::Result<String> {
    String::from_utf8(bytes).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "stream did not contain valid UTF-8")
    })
}

/// The verb list advertised in the `HELLO` reply, in documentation order.
pub const PROTOCOL_VERBS: &str =
    "HELLO,INGEST,BATCH,QUERY,MQUERY,STATS,METRICS,SLOWLOG,SAVE,SHUTDOWN";

/// A parsed protocol request.
///
/// The batched forms ([`Request::BatchIngest`], [`Request::MultiQuery`])
/// are *headers*: they announce how many item lines follow on the
/// connection. [`parse_request`] parses only the header; the server reads
/// and parses the item lines (via [`parse_batch_ingest_item`] /
/// [`decode_trace_inline`]) before acting.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake. Optional — every other verb works without it
    /// (the protocol is still additive) — but new clients send it first
    /// so a future breaking change can be negotiated instead of
    /// discovered via garbled replies.
    Hello {
        /// The protocol version the client speaks. Parsing accepts any
        /// positive version; the *server* decides whether it is
        /// supported (so the rejection is a structured `ERR`, not a
        /// parse error).
        version: u32,
        /// Optional client identifier (a single token, e.g.
        /// `kastio-loadgen/0.1.0`), for server-side logging only.
        client: Option<String>,
    },
    /// Add one labelled trace to the corpus.
    Ingest {
        /// Label recorded for the new entry.
        label: String,
        /// The decoded trace.
        trace: Trace,
    },
    /// Header: `count` ingest item lines (`<label> <trace>`) follow.
    BatchIngest {
        /// Number of item lines the client will send next.
        count: usize,
    },
    /// k-NN query over the corpus.
    Query {
        /// Number of neighbours requested.
        k: usize,
        /// The decoded query trace.
        trace: Trace,
        /// Whether the client sent `trace=1`: the reply carries a
        /// `TRACE` stage-breakdown line before `END`.
        timed: bool,
    },
    /// Header: `count` query trace lines follow; each is answered with a
    /// `RESULT` block inside one framed reply.
    MultiQuery {
        /// Number of neighbours requested per query.
        k: usize,
        /// Number of query trace lines the client will send next.
        count: usize,
        /// Whether the client sent `trace=1` (one `TRACE` line for the
        /// whole batch, before `END`).
        timed: bool,
    },
    /// Report index counters.
    Stats,
    /// Render the observability state as a Prometheus-style text
    /// exposition.
    Metrics,
    /// Inspect or clear the slow-query log.
    Slowlog(SlowlogCmd),
    /// Snapshot the corpus to the server's save directory now.
    Save,
    /// Stop the server after replying (saving first when a save directory
    /// is configured).
    Shutdown,
}

/// The `SLOWLOG` sub-commands, mirroring Redis's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowlogCmd {
    /// List the held entries, newest first.
    Get,
    /// Clear the entries (ids keep counting).
    Reset,
    /// Report how many entries are held.
    Len,
}

/// Renders a trace in the single-line wire form (`;`-separated ops).
///
/// # Examples
///
/// ```
/// use kastio_index::protocol::{decode_trace_inline, encode_trace_inline};
/// use kastio_trace::parse_trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("h0 open 0\nh0 write 64\nh0 close 0\n")?;
/// let wire = encode_trace_inline(&trace);
/// assert_eq!(wire, "h0 open 0;h0 write 64;h0 close 0");
/// assert_eq!(decode_trace_inline(&wire)?, trace);
/// # Ok(())
/// # }
/// ```
pub fn encode_trace_inline(trace: &Trace) -> String {
    write_trace(trace).trim_end().replace('\n', ";")
}

/// Decodes the single-line wire form back into a trace.
///
/// # Errors
///
/// Returns a human-readable message naming the offending operation if any
/// `;`-separated segment is not a valid trace line.
pub fn decode_trace_inline(wire: &str) -> Result<Trace, String> {
    let text: String = wire.split(';').map(str::trim).collect::<Vec<_>>().join("\n");
    parse_trace(&text).map_err(|e| format!("bad inline trace: {e}"))
}

/// Parses one `BATCH INGEST` item line: `<label> <trace>`.
///
/// # Errors
///
/// Returns a human-readable message when the label or trace is missing or
/// the trace is malformed.
pub fn parse_batch_ingest_item(line: &str) -> Result<(String, Trace), String> {
    let (label, wire) = line
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(|| "batch item needs `<label> <trace>`".to_string())?;
    Ok((label.to_string(), decode_trace_inline(wire)?))
}

fn parse_count(spec: &str) -> Result<usize, String> {
    let count: usize = spec
        .parse()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("bad count `{spec}` (expected a positive int)"))?;
    if count > MAX_BATCH_ITEMS {
        return Err(format!("count {count} exceeds the batch cap of {MAX_BATCH_ITEMS}"));
    }
    Ok(count)
}

fn parse_k(spec: &str) -> Result<usize, String> {
    spec.strip_prefix("k=")
        .and_then(|v| v.parse().ok())
        .filter(|&k| k > 0)
        .ok_or_else(|| format!("bad k spec `{spec}` (expected k=<positive int>)"))
}

/// Strips an optional leading `trace=1` token, returning whether it was
/// present and the remainder. Only the exact token (followed by
/// whitespace) is recognised; anything else is left for the payload
/// parser to reject with its own message.
fn parse_trace_flag(rest: &str) -> (bool, &str) {
    match rest.strip_prefix("trace=1") {
        Some(after) if after.starts_with(char::is_whitespace) => (true, after.trim_start()),
        _ => (false, rest),
    }
}

/// Parses one request line. For the batched forms this parses only the
/// header; the announced item lines follow on the connection.
///
/// # Errors
///
/// Returns a human-readable message (sent back as `ERR …`) when the line
/// is not a well-formed request.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    match verb {
        "HELLO" => {
            let (version_spec, client) = match rest.split_once(char::is_whitespace) {
                Some((version, client)) => (version, client.trim()),
                None => (rest, ""),
            };
            let version: u32 =
                version_spec.parse().ok().filter(|&v| v > 0).ok_or_else(|| match version_spec {
                    "" => "HELLO needs `<proto-version> [client]`".to_string(),
                    spec => format!("bad proto version `{spec}` (expected a positive int)"),
                })?;
            if client.contains(char::is_whitespace) {
                return Err("HELLO takes at most `<proto-version> [client]`".to_string());
            }
            let client = (!client.is_empty()).then(|| client.to_string());
            Ok(Request::Hello { version, client })
        }
        "INGEST" => {
            let (label, wire) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "INGEST needs `<label> <trace>`".to_string())?;
            Ok(Request::Ingest { label: label.to_string(), trace: decode_trace_inline(wire)? })
        }
        "BATCH" => {
            let count_spec = rest
                .strip_prefix("INGEST")
                .map(str::trim)
                .filter(|spec| !spec.is_empty())
                .ok_or_else(|| "BATCH needs `INGEST <count>`".to_string())?;
            Ok(Request::BatchIngest { count: parse_count(count_spec)? })
        }
        "QUERY" => {
            let (kspec, wire) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "QUERY needs `k=<k> <trace>`".to_string())?;
            let (timed, wire) = parse_trace_flag(wire.trim_start());
            Ok(Request::Query { k: parse_k(kspec)?, trace: decode_trace_inline(wire)?, timed })
        }
        "MQUERY" => {
            let (kspec, count_spec) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "MQUERY needs `k=<k> <count>`".to_string())?;
            let (timed, count_spec) = parse_trace_flag(count_spec.trim());
            Ok(Request::MultiQuery {
                k: parse_k(kspec)?,
                count: parse_count(count_spec.trim())?,
                timed,
            })
        }
        "STATS" if rest.is_empty() => Ok(Request::Stats),
        "METRICS" if rest.is_empty() => Ok(Request::Metrics),
        "SLOWLOG" => match rest {
            "GET" => Ok(Request::Slowlog(SlowlogCmd::Get)),
            "RESET" => Ok(Request::Slowlog(SlowlogCmd::Reset)),
            "LEN" => Ok(Request::Slowlog(SlowlogCmd::Len)),
            _ => Err("SLOWLOG needs `GET|RESET|LEN`".to_string()),
        },
        "SAVE" if rest.is_empty() => Ok(Request::Save),
        "SHUTDOWN" if rest.is_empty() => Ok(Request::Shutdown),
        "" => Err("empty request".to_string()),
        other => Err(format!("unknown verb `{other}`")),
    }
}

/// Renders a query result as the multi-line `OK … MATCH … END` reply.
pub fn render_query_reply(result: &QueryResult) -> String {
    let mut out = format!(
        "OK matches={} label={}\n",
        result.neighbors.len(),
        result.label.as_deref().unwrap_or("-")
    );
    render_match_lines(&mut out, result);
    out.push_str("END\n");
    out
}

/// Renders the replies to an `MQUERY` batch: one framed `OK queries=…`
/// block holding a `RESULT` sub-block (1-based, in request order) per
/// query, terminated by a single `END`.
pub fn render_mquery_reply(results: &[QueryResult]) -> String {
    let mut out = format!("OK queries={}\n", results.len());
    for (i, result) in results.iter().enumerate() {
        out.push_str(&format!(
            "RESULT {} matches={} label={}\n",
            i + 1,
            result.neighbors.len(),
            result.label.as_deref().unwrap_or("-")
        ));
        render_match_lines(&mut out, result);
    }
    out.push_str("END\n");
    out
}

fn render_match_lines(out: &mut String, result: &QueryResult) {
    for (rank, n) in result.neighbors.iter().enumerate() {
        // `{}` on f64 prints the shortest string that round-trips, so the
        // client recovers the exact bits.
        out.push_str(&format!("MATCH {} {} {} {}\n", rank + 1, n.name, n.label, n.similarity));
    }
}

/// Renders the reply to a supported `HELLO`: the server identity, the
/// negotiated protocol version and the verb list, on one `OK` line.
pub fn render_hello_reply() -> String {
    format!("OK kastio proto={PROTOCOL_VERSION} verbs={PROTOCOL_VERBS}\n")
}

/// Renders the structured rejection of a `HELLO` whose version the server
/// does not speak. The reply names the supported version so the client
/// can downgrade (or give up) without guessing.
pub fn render_hello_unsupported(version: u32) -> String {
    format!("ERR unsupported proto {version} (server speaks {PROTOCOL_VERSION})\n")
}

/// A point-in-time copy of the serve daemon's connection/request
/// counters, rendered into the `STATS` reply so load runs can be
/// correlated with server-side behaviour.
///
/// All counters are monotonic over the daemon's lifetime (uptime aside,
/// which is monotonic by definition), so a client can difference two
/// snapshots to get per-interval rates — exactly what `kastio loadgen`
/// does around each scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Whole seconds since the listener was bound.
    pub uptime_secs: u64,
    /// Connections accepted (shutdown wake-up nudges excluded).
    pub connections: u64,
    /// Non-blank request lines received, whether or not they parsed.
    pub requests: u64,
    /// `ERR` replies sent (parse failures, bad batch items, failed
    /// saves, unsupported HELLOs, over-long lines).
    pub errors: u64,
    /// Successfully parsed `HELLO` requests.
    pub hello: u64,
    /// Successfully parsed `INGEST` requests.
    pub ingest: u64,
    /// Successfully parsed `BATCH INGEST` headers.
    pub batch_ingest: u64,
    /// Successfully parsed `QUERY` requests.
    pub query: u64,
    /// Successfully parsed `MQUERY` headers.
    pub mquery: u64,
    /// Successfully parsed `STATS` requests.
    pub stats: u64,
    /// Successfully parsed `SAVE` requests.
    pub save: u64,
    /// Successfully parsed `SHUTDOWN` requests.
    pub shutdown: u64,
    /// Successfully parsed `METRICS` requests.
    pub metrics: u64,
    /// Successfully parsed `SLOWLOG` requests (any sub-command).
    pub slowlog: u64,
    /// Bytes currently charged against the daemon's memory budget
    /// (corpus + kernel cache + in-flight request buffers).
    pub mem_used_bytes: u64,
    /// The configured `--max-memory-bytes` budget; 0 when unlimited.
    pub mem_limit_bytes: u64,
    /// Bytes charged through report-only accounts (interned token
    /// tables, memoised query self-kernels): live memory that is
    /// included in `mem_used_bytes` but that no reclaim pass can free.
    pub mem_unreclaimable_bytes: u64,
    /// Reclaim passes that actually freed memory (cache clears under
    /// pressure).
    pub mem_reclaims: u64,
    /// `ERR busy reason=memory` replies sent — requests shed by memory
    /// admission. Matches the busy replies clients observed, one for
    /// one.
    pub shed_memory: u64,
    /// Connections refused with `ERR busy reason=connections` at the
    /// accept loop (`--max-connections`).
    pub shed_connections: u64,
    /// Connections closed by the `--idle-timeout-secs` read deadline.
    pub timeouts: u64,
}

impl MetricsSnapshot {
    /// The per-verb counters as `(name, count)` pairs, in the `STATS`
    /// documentation order (new verbs append — existing positions are
    /// part of the wire contract).
    pub fn verb_counts(&self) -> [(&'static str, u64); 10] {
        [
            ("hello", self.hello),
            ("ingest", self.ingest),
            ("batch_ingest", self.batch_ingest),
            ("query", self.query),
            ("mquery", self.mquery),
            ("stats", self.stats),
            ("save", self.save),
            ("shutdown", self.shutdown),
            ("metrics", self.metrics),
            ("slowlog", self.slowlog),
        ]
    }
}

/// Renders index counters as the multi-line `STAT … END` reply, including
/// the shard count and one `STAT shard<i>_entries` line per shard (their
/// sum always equals `STAT entries`), the corpus `generation`, and the
/// snapshot health block (`snapshots`, `snapshot_errors`,
/// `last_snapshot_ok` — `1`/`0`, or `-` before any snapshot attempt —
/// and `last_snapshot_generation`), so a client can tell whether the
/// on-disk snapshot is current and whether saves have been failing.
/// The trailing block renders the daemon's [`MetricsSnapshot`]: uptime,
/// connections accepted, total/erroneous request counts and one
/// `STAT verb_<name>` line per verb, then the memory-governance block
/// (`mem_used_bytes`, `mem_limit_bytes`, `mem_unreclaimable_bytes`,
/// `mem_reclaims`, `shed_memory`,
/// `shed_connections`, `timeouts` — zeros when ungoverned), then one
/// `STAT latency_<verb>_{p50,p95,p99}_us` triple per verb in `latency`
/// (the server passes only verbs that have recorded samples, so a fresh
/// daemon renders no latency lines).
#[allow(clippy::too_many_arguments)] // one reply, one flat row of sources; a struct would outlive its single call site
pub fn render_stats_reply(
    entries: usize,
    cached_pairs: usize,
    shard_sizes: &[usize],
    stats: &IndexStats,
    generation: u64,
    snapshot: &SnapshotStatus,
    metrics: &MetricsSnapshot,
    latency: &[(&str, [u64; 3])],
) -> String {
    let mut out = format!("STAT entries {entries}\nSTAT shards {}\n", shard_sizes.len());
    for (i, size) in shard_sizes.iter().enumerate() {
        out.push_str(&format!("STAT shard{i}_entries {size}\n"));
    }
    out.push_str(&format!(
        "STAT generation {generation}\n\
         STAT queries {}\n\
         STAT kernel_evals {}\n\
         STAT cache_hits {}\n\
         STAT cached_pairs {cached_pairs}\n\
         STAT prefilter_pruned {}\n\
         STAT ingest_evals {}\n\
         STAT query_self_evals {}\n\
         STAT snapshots {}\n\
         STAT snapshot_errors {}\n\
         STAT last_snapshot_ok {}\n\
         STAT last_snapshot_generation {}\n\
         STAT last_snapshot_duration_us {}\n\
         STAT last_snapshot_bytes {}\n",
        stats.queries,
        stats.kernel_evals,
        stats.cache_hits,
        stats.prefilter_pruned,
        stats.ingest_evals,
        stats.query_self_evals,
        snapshot.snapshots,
        snapshot.errors,
        match snapshot.last_ok {
            None => "-".to_string(),
            Some(ok) => u64::from(ok).to_string(),
        },
        snapshot.last_generation,
        snapshot.last_duration_micros,
        snapshot.last_bytes,
    ));
    // WAL counters: always rendered (zeros without --wal), so parsers
    // never have to branch on the daemon's configuration.
    out.push_str(&format!(
        "STAT wal_records {}\n\
         STAT wal_bytes {}\n\
         STAT wal_fsyncs {}\n\
         STAT last_replay_records {}\n",
        snapshot.wal_records, snapshot.wal_bytes, snapshot.wal_fsyncs, snapshot.last_replay_records,
    ));
    out.push_str(&format!(
        "STAT uptime_secs {}\n\
         STAT connections {}\n\
         STAT requests_total {}\n\
         STAT request_errors {}\n",
        metrics.uptime_secs, metrics.connections, metrics.requests, metrics.errors,
    ));
    for (verb, count) in metrics.verb_counts() {
        out.push_str(&format!("STAT verb_{verb} {count}\n"));
    }
    // Memory governance block: always rendered (zeros without
    // --max-memory-bytes), like the WAL block above.
    out.push_str(&format!(
        "STAT mem_used_bytes {}\n\
         STAT mem_limit_bytes {}\n\
         STAT mem_unreclaimable_bytes {}\n\
         STAT mem_reclaims {}\n\
         STAT shed_memory {}\n\
         STAT shed_connections {}\n\
         STAT timeouts {}\n",
        metrics.mem_used_bytes,
        metrics.mem_limit_bytes,
        metrics.mem_unreclaimable_bytes,
        metrics.mem_reclaims,
        metrics.shed_memory,
        metrics.shed_connections,
        metrics.timeouts,
    ));
    for (verb, [p50, p95, p99]) in latency {
        out.push_str(&format!(
            "STAT latency_{verb}_p50_us {p50}\n\
             STAT latency_{verb}_p95_us {p95}\n\
             STAT latency_{verb}_p99_us {p99}\n"
        ));
    }
    out.push_str("END\n");
    out
}

/// Renders the `METRICS` reply: an `OK metrics` header, a
/// Prometheus-style text exposition of the daemon's observability state,
/// and the framing `END`.
///
/// `verb_latency` and `stage_latency` are `(name, histogram)` pairs in
/// nanoseconds; the server passes only series with recorded samples.
/// Bucket bounds are exact nanosecond integers, so a scraper can rebuild
/// each histogram loss-free from the cumulative `_bucket` series (this is
/// what `kastio loadgen` does to report server-side latency). Quantile
/// gauges are also rendered in microseconds under
/// `kastio_request_latency_us` for dashboards that want digests instead
/// of buckets.
pub fn render_metrics_reply(
    metrics: &MetricsSnapshot,
    verb_latency: &[(&str, Histogram)],
    stage_latency: &[(&str, Histogram)],
    snapshot: &SnapshotStatus,
    slowlog_len: usize,
) -> String {
    let mut exp = Exposition::new();
    exp.type_line("kastio_uptime_seconds", "gauge");
    exp.sample("kastio_uptime_seconds", "", metrics.uptime_secs);
    exp.type_line("kastio_connections_total", "counter");
    exp.sample("kastio_connections_total", "", metrics.connections);
    exp.type_line("kastio_requests_total", "counter");
    exp.sample("kastio_requests_total", "", metrics.requests);
    exp.type_line("kastio_request_errors_total", "counter");
    exp.sample("kastio_request_errors_total", "", metrics.errors);
    exp.type_line("kastio_verb_requests_total", "counter");
    for (verb, count) in metrics.verb_counts() {
        exp.sample("kastio_verb_requests_total", &format!("verb=\"{verb}\""), count);
    }
    exp.type_line("kastio_request_latency_ns", "histogram");
    for (verb, histogram) in verb_latency {
        exp.histogram("kastio_request_latency_ns", &format!("verb=\"{verb}\""), histogram);
    }
    exp.type_line("kastio_request_latency_us", "gauge");
    for (verb, histogram) in verb_latency {
        for (quantile, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
            exp.sample(
                "kastio_request_latency_us",
                &format!("verb=\"{verb}\",quantile=\"{quantile}\""),
                histogram.percentile(p) / 1_000,
            );
        }
    }
    exp.type_line("kastio_stage_latency_ns", "histogram");
    for (stage, histogram) in stage_latency {
        exp.histogram("kastio_stage_latency_ns", &format!("stage=\"{stage}\""), histogram);
    }
    exp.type_line("kastio_snapshots_total", "counter");
    exp.sample("kastio_snapshots_total", "", snapshot.snapshots);
    exp.type_line("kastio_snapshot_errors_total", "counter");
    exp.sample("kastio_snapshot_errors_total", "", snapshot.errors);
    exp.type_line("kastio_last_snapshot_duration_us", "gauge");
    exp.sample("kastio_last_snapshot_duration_us", "", snapshot.last_duration_micros);
    exp.type_line("kastio_last_snapshot_bytes", "gauge");
    exp.sample("kastio_last_snapshot_bytes", "", snapshot.last_bytes);
    exp.type_line("kastio_wal_records_total", "counter");
    exp.sample("kastio_wal_records_total", "", snapshot.wal_records);
    exp.type_line("kastio_wal_bytes_total", "counter");
    exp.sample("kastio_wal_bytes_total", "", snapshot.wal_bytes);
    exp.type_line("kastio_wal_fsyncs_total", "counter");
    exp.sample("kastio_wal_fsyncs_total", "", snapshot.wal_fsyncs);
    exp.type_line("kastio_wal_replay_records", "gauge");
    exp.sample("kastio_wal_replay_records", "", snapshot.last_replay_records);
    exp.type_line("kastio_slowlog_entries", "gauge");
    exp.sample("kastio_slowlog_entries", "", slowlog_len);
    exp.type_line("kastio_mem_used_bytes", "gauge");
    exp.sample("kastio_mem_used_bytes", "", metrics.mem_used_bytes);
    exp.type_line("kastio_mem_limit_bytes", "gauge");
    exp.sample("kastio_mem_limit_bytes", "", metrics.mem_limit_bytes);
    exp.type_line("kastio_mem_unreclaimable_bytes", "gauge");
    exp.sample("kastio_mem_unreclaimable_bytes", "", metrics.mem_unreclaimable_bytes);
    exp.type_line("kastio_mem_reclaims_total", "counter");
    exp.sample("kastio_mem_reclaims_total", "", metrics.mem_reclaims);
    exp.type_line("kastio_shed_total", "counter");
    exp.sample("kastio_shed_total", "reason=\"memory\"", metrics.shed_memory);
    exp.sample("kastio_shed_total", "reason=\"connections\"", metrics.shed_connections);
    exp.type_line("kastio_timeouts_total", "counter");
    exp.sample("kastio_timeouts_total", "", metrics.timeouts);
    format!("OK metrics\n{}END\n", exp.finish())
}

/// Renders the `SLOWLOG GET` reply: one `SLOW` line per entry (newest
/// first), each carrying the stage breakdown as comma-joined
/// `<stage>:<us>` pairs and the compact argument summary. Empty stage
/// lists and argument summaries render as `-` so every line has the same
/// token count.
pub fn render_slowlog_get(entries: &[SlowEntry]) -> String {
    let mut out = format!("OK slowlog entries={}\n", entries.len());
    for entry in entries {
        let stages = if entry.stages.is_empty() {
            "-".to_string()
        } else {
            let pairs: Vec<String> =
                entry.stages.iter().map(|(stage, us)| format!("{stage}:{us}")).collect();
            pairs.join(",")
        };
        let args = if entry.args.is_empty() { "-" } else { entry.args.as_str() };
        out.push_str(&format!(
            "SLOW {} at_us={} verb={} total_us={} stages={stages} args={args}\n",
            entry.id, entry.at_micros, entry.verb, entry.total_micros
        ));
    }
    out.push_str("END\n");
    out
}

/// Renders the `SLOWLOG LEN` reply.
pub fn render_slowlog_len(len: usize) -> String {
    format!("OK slowlog len={len}\n")
}

/// Renders the `SLOWLOG RESET` acknowledgement.
pub fn render_slowlog_reset() -> String {
    "OK slowlog reset\n".to_string()
}

/// Renders the `TRACE` line appended (before `END`) to a `trace=1` query
/// reply. Nanosecond inputs are floored to microseconds per field, so
/// the rendered stage values always sum to at most the rendered total
/// (`⌊a⌋ + ⌊b⌋ ≤ ⌊a + b⌋`).
pub fn render_trace_line(total_ns: u64, stages: &[(&str, u64)]) -> String {
    let mut line = format!("TRACE total_us={}", total_ns / 1_000);
    for (stage, ns) in stages {
        line.push_str(&format!(" {stage}_us={}", ns / 1_000));
    }
    line.push('\n');
    line
}

/// Reads one complete server reply — a single `OK …`/`ERR …` line, or a
/// multi-line `OK matches=…`/`OK queries=…`/`STAT …` block terminated by
/// `END` — so every client (the `kastio query` subcommand, tests,
/// examples) shares one definition of the reply framing.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::UnexpectedEof`] if the connection closes
/// mid-reply, or the underlying read error.
pub fn read_reply<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut read_line = |reply: &mut String| -> std::io::Result<usize> {
        let start = reply.len();
        if reader.read_line(reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-reply",
            ));
        }
        // read_line also returns at EOF without a terminator: a reply
        // line cut mid-byte-stream must be an error, never silently
        // returned as if complete.
        if !reply.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-line",
            ));
        }
        Ok(start)
    };
    let mut reply = String::new();
    read_line(&mut reply)?;
    if reply.starts_with("OK matches=")
        || reply.starts_with("OK queries=")
        || reply.starts_with("OK metrics")
        || reply.starts_with("OK slowlog entries=")
        || reply.starts_with("STAT")
    {
        loop {
            let start = read_line(&mut reply)?;
            if &reply[start..] == "END\n" {
                break;
            }
        }
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryId;
    use crate::index::Neighbor;

    fn full(framer: &mut LineFramer) -> String {
        match framer.next_line().unwrap() {
            Some(FramedLine::Full(line)) => line,
            other => panic!("expected a full line, got {other:?}"),
        }
    }

    #[test]
    fn framer_reassembles_lines_from_arbitrary_chunks() {
        let mut framer = LineFramer::new();
        for byte in b"QUERY k=1 h0 read 8\nSTATS\n" {
            framer.push_bytes(&[*byte]);
        }
        assert_eq!(full(&mut framer), "QUERY k=1 h0 read 8\n");
        assert_eq!(full(&mut framer), "STATS\n");
        assert!(framer.next_line().unwrap().is_none());
        assert!(framer.is_empty());
    }

    #[test]
    fn framer_caps_lines_and_drains_like_read_line() {
        let max = usize::try_from(MAX_REQUEST_LINE_BYTES).unwrap();
        let mut framer = LineFramer::new();
        framer.push_bytes(&vec![b'a'; max + 10]);
        assert!(matches!(framer.next_line().unwrap(), Some(FramedLine::TooLong)));
        assert!(framer.next_line().unwrap().is_none(), "still draining");
        assert!(!framer.is_empty(), "a drain in progress is not idle");
        framer.push_bytes(b"tail\nSTATS\n");
        assert_eq!(full(&mut framer), "STATS\n", "drain swallows through the newline");

        // A newline exactly at the cap boundary still frames — the same
        // line take(max).read_line() accepts.
        let mut framer = LineFramer::new();
        let mut at_cap = vec![b'b'; max - 1];
        at_cap.push(b'\n');
        framer.push_bytes(&at_cap);
        assert_eq!(full(&mut framer).len(), max);
    }

    #[test]
    fn framer_finish_returns_the_newlineless_tail() {
        let mut framer = LineFramer::new();
        framer.push_bytes(b"STATS");
        assert!(framer.next_line().unwrap().is_none());
        assert_eq!(
            framer.finish().unwrap(),
            Some(FramedLine::Full("STATS".to_string())),
            "read_line returns the trailing partial line, so finish must too"
        );
        assert!(framer.finish().unwrap().is_none(), "clean EOF after the tail");

        // EOF mid-drain is a hangup: the over-long line was already
        // answered, its unterminated remainder earns nothing.
        let mut framer = LineFramer::new();
        framer.push_bytes(&vec![b'c'; usize::try_from(MAX_REQUEST_LINE_BYTES).unwrap() + 1]);
        assert!(matches!(framer.next_line().unwrap(), Some(FramedLine::TooLong)));
        assert!(framer.finish().unwrap().is_none());
    }

    #[test]
    fn framer_rejects_invalid_utf8_as_connection_fatal() {
        let mut framer = LineFramer::new();
        framer.push_bytes(&[0xff, 0xfe, b'\n']);
        let err = framer.next_line().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Validation happens on the capped prefix of an over-long line
        // too, before TooLong can be reported.
        let mut framer = LineFramer::new();
        let mut blast = vec![0xff_u8; usize::try_from(MAX_REQUEST_LINE_BYTES).unwrap()];
        blast.extend_from_slice(b"more");
        framer.push_bytes(&blast);
        assert_eq!(framer.next_line().unwrap_err().kind(), std::io::ErrorKind::InvalidData);

        // And on the EOF tail.
        let mut framer = LineFramer::new();
        framer.push_bytes(&[0xff, 0xfe]);
        assert!(framer.next_line().unwrap().is_none());
        assert_eq!(framer.finish().unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn trace_inline_roundtrip() {
        let trace = parse_trace("h0 open 0\nh1 write 8\nh0 close 0\n").unwrap();
        let wire = encode_trace_inline(&trace);
        assert!(!wire.contains('\n'));
        assert_eq!(decode_trace_inline(&wire).unwrap(), trace);
    }

    #[test]
    fn parses_ingest() {
        let req = parse_request("INGEST flash h0 write 64;h0 write 64").unwrap();
        match req {
            Request::Ingest { label, trace } => {
                assert_eq!(label, "flash");
                assert_eq!(trace.len(), 2);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn parses_query_with_k() {
        let req = parse_request("QUERY k=3 h0 read 8").unwrap();
        assert!(matches!(req, Request::Query { k: 3, .. }));
    }

    #[test]
    fn parses_batch_headers() {
        assert_eq!(parse_request("BATCH INGEST 3").unwrap(), Request::BatchIngest { count: 3 });
        assert_eq!(
            parse_request("MQUERY k=2 4").unwrap(),
            Request::MultiQuery { k: 2, count: 4, timed: false }
        );
    }

    #[test]
    fn parses_the_optional_trace_flag() {
        assert!(matches!(
            parse_request("QUERY k=3 h0 read 8").unwrap(),
            Request::Query { timed: false, .. }
        ));
        assert!(matches!(
            parse_request("QUERY k=3 trace=1 h0 read 8").unwrap(),
            Request::Query { k: 3, timed: true, .. }
        ));
        assert_eq!(
            parse_request("MQUERY k=2 trace=1 4").unwrap(),
            Request::MultiQuery { k: 2, count: 4, timed: true }
        );
        // Only the exact token is the flag; near-misses fall through to
        // the payload parser's own error.
        assert!(parse_request("QUERY k=3 trace=2 h0 read 8")
            .unwrap_err()
            .contains("bad inline trace"));
        assert!(parse_request("MQUERY k=2 trace=1").unwrap_err().contains("bad count"));
    }

    #[test]
    fn parses_metrics_and_slowlog() {
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("  METRICS  ").unwrap(), Request::Metrics);
        assert_eq!(parse_request("SLOWLOG GET").unwrap(), Request::Slowlog(SlowlogCmd::Get));
        assert_eq!(parse_request("SLOWLOG RESET").unwrap(), Request::Slowlog(SlowlogCmd::Reset));
        assert_eq!(parse_request("SLOWLOG LEN").unwrap(), Request::Slowlog(SlowlogCmd::Len));
        assert!(parse_request("SLOWLOG").unwrap_err().contains("GET|RESET|LEN"));
        assert!(parse_request("SLOWLOG TRIM").unwrap_err().contains("GET|RESET|LEN"));
    }

    #[test]
    fn parses_hello() {
        assert_eq!(parse_request("HELLO 1").unwrap(), Request::Hello { version: 1, client: None });
        assert_eq!(
            parse_request("HELLO 2 kastio-loadgen/0.1.0").unwrap(),
            Request::Hello { version: 2, client: Some("kastio-loadgen/0.1.0".to_string()) }
        );
        assert!(parse_request("HELLO").unwrap_err().contains("HELLO needs"));
        assert!(parse_request("HELLO 0").unwrap_err().contains("bad proto version"));
        assert!(parse_request("HELLO x").unwrap_err().contains("bad proto version"));
        assert!(parse_request("HELLO 1 two tokens").unwrap_err().contains("at most"));
    }

    #[test]
    fn hello_replies_name_the_version() {
        let ok = render_hello_reply();
        assert_eq!(ok, format!("OK kastio proto=1 verbs={PROTOCOL_VERBS}\n"));
        let err = render_hello_unsupported(9);
        assert_eq!(err, "ERR unsupported proto 9 (server speaks 1)\n");
    }

    #[test]
    fn parses_bare_verbs() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("SAVE").unwrap(), Request::Save);
        assert_eq!(parse_request("  SAVE  ").unwrap(), Request::Save);
        assert_eq!(parse_request("  SHUTDOWN  ").unwrap(), Request::Shutdown);
        // SAVE takes no arguments — trailing tokens are a verb error.
        assert!(parse_request("SAVE now").unwrap_err().contains("SAVE"));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("FROB x").unwrap_err().contains("FROB"));
        assert!(parse_request("INGEST onlylabel").unwrap_err().contains("INGEST"));
        assert!(parse_request("QUERY k=0 h0 read 8").unwrap_err().contains("k spec"));
        assert!(parse_request("QUERY k=x h0 read 8").unwrap_err().contains("k spec"));
        assert!(parse_request("QUERY k=2 h0 read").unwrap_err().contains("bad inline trace"));
        assert!(parse_request("BATCH").unwrap_err().contains("BATCH"));
        assert!(parse_request("BATCH INGEST").unwrap_err().contains("BATCH"));
        assert!(parse_request("BATCH INGEST 0").unwrap_err().contains("count"));
        assert!(parse_request("BATCH INGEST x").unwrap_err().contains("count"));
        assert!(parse_request("BATCH QUERY 2").unwrap_err().contains("BATCH"));
        assert!(parse_request("MQUERY k=2").unwrap_err().contains("MQUERY"));
        assert!(parse_request("MQUERY k=0 2").unwrap_err().contains("k spec"));
        assert!(parse_request(&format!("MQUERY k=1 {}", MAX_BATCH_ITEMS + 1))
            .unwrap_err()
            .contains("cap"));
    }

    #[test]
    fn parses_batch_ingest_items() {
        let (label, trace) = parse_batch_ingest_item("flash h0 write 64;h0 write 64").unwrap();
        assert_eq!(label, "flash");
        assert_eq!(trace.len(), 2);
        assert!(parse_batch_ingest_item("onlylabel").unwrap_err().contains("batch item"));
        assert!(parse_batch_ingest_item("flash h0 write").unwrap_err().contains("bad inline"));
    }

    fn sample_result(sim: f64) -> QueryResult {
        QueryResult {
            neighbors: vec![Neighbor {
                id: EntryId(0),
                name: "A00".to_string(),
                label: "A".to_string(),
                similarity: sim,
            }],
            label: Some("A".to_string()),
            candidates: 1,
            evaluated: 1,
            cache_hits: 0,
            timings: crate::index::QueryTimings::default(),
        }
    }

    #[test]
    fn query_reply_roundtrips_similarity_bits() {
        // A value whose decimal form needs all 17 significant digits.
        let sim = std::f64::consts::PI / 3.0;
        let reply = render_query_reply(&sample_result(sim));
        let match_line = reply.lines().nth(1).unwrap();
        let rendered = match_line.split_whitespace().last().unwrap();
        let parsed: f64 = rendered.parse().unwrap();
        assert_eq!(parsed.to_bits(), sim.to_bits());
        assert!(reply.starts_with("OK matches=1 label=A\n"));
        assert!(reply.ends_with("END\n"));
    }

    #[test]
    fn mquery_reply_frames_every_result() {
        let reply = render_mquery_reply(&[sample_result(1.0), sample_result(0.5)]);
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK queries=2");
        assert_eq!(lines[1], "RESULT 1 matches=1 label=A");
        assert_eq!(lines[2], "MATCH 1 A00 A 1");
        assert_eq!(lines[3], "RESULT 2 matches=1 label=A");
        assert_eq!(lines[4], "MATCH 1 A00 A 0.5");
        assert_eq!(lines[5], "END");
        assert_eq!(lines.len(), 6, "one END for the whole block");
    }

    #[test]
    fn stats_reply_lists_counters_and_shards() {
        let stats = IndexStats {
            queries: 2,
            kernel_evals: 5,
            cache_hits: 3,
            prefilter_pruned: 7,
            ingest_evals: 4,
            query_self_evals: 2,
        };
        let metrics = MetricsSnapshot {
            uptime_secs: 7,
            connections: 3,
            requests: 11,
            errors: 1,
            query: 2,
            stats: 1,
            ..MetricsSnapshot::default()
        };
        let reply = render_stats_reply(
            4,
            5,
            &[2, 1, 1],
            &stats,
            4,
            &SnapshotStatus::default(),
            &metrics,
            &[("query", [10, 90, 120])],
        );
        assert!(reply.starts_with("STAT entries 4\n"));
        assert!(reply.contains("STAT shards 3\n"));
        assert!(reply.contains("STAT shard0_entries 2\n"));
        assert!(reply.contains("STAT shard1_entries 1\n"));
        assert!(reply.contains("STAT shard2_entries 1\n"));
        assert!(reply.contains("STAT generation 4\n"));
        assert!(reply.contains("STAT kernel_evals 5\n"));
        assert!(reply.contains("STAT prefilter_pruned 7\n"));
        assert!(reply.contains("STAT query_self_evals 2\n"));
        assert!(reply.contains("STAT snapshots 0\n"));
        assert!(reply.contains("STAT snapshot_errors 0\n"));
        assert!(reply.contains("STAT last_snapshot_ok -\n"), "never attempted renders as `-`");
        assert!(reply.contains("STAT wal_records 0\n"), "wal keys render even without --wal");
        assert!(reply.contains("STAT wal_bytes 0\n"));
        assert!(reply.contains("STAT wal_fsyncs 0\n"));
        assert!(reply.contains("STAT last_replay_records 0\n"));
        assert!(reply.contains("STAT uptime_secs 7\n"));
        assert!(reply.contains("STAT connections 3\n"));
        assert!(reply.contains("STAT requests_total 11\n"));
        assert!(reply.contains("STAT request_errors 1\n"));
        assert!(reply.contains("STAT verb_query 2\n"));
        assert!(reply.contains("STAT verb_stats 1\n"));
        assert!(reply.contains("STAT verb_ingest 0\n"));
        assert!(reply.contains("STAT verb_metrics 0\n"));
        assert!(reply.contains("STAT verb_slowlog 0\n"));
        assert!(reply.contains("STAT latency_query_p50_us 10\n"));
        assert!(reply.contains("STAT latency_query_p95_us 90\n"));
        assert!(reply.contains("STAT latency_query_p99_us 120\n"));
        assert!(reply.ends_with("END\n"));
    }

    #[test]
    fn stats_reply_reports_snapshot_health() {
        let snapshot = SnapshotStatus {
            snapshots: 3,
            errors: 1,
            last_ok: Some(false),
            last_generation: 9,
            last_entries: 9,
            last_duration_micros: 1234,
            last_bytes: 4096,
            wal_records: 17,
            wal_bytes: 2048,
            wal_fsyncs: 5,
            last_replay_records: 6,
            ..SnapshotStatus::default()
        };
        let reply = render_stats_reply(
            9,
            0,
            &[9],
            &IndexStats::default(),
            11,
            &snapshot,
            &MetricsSnapshot::default(),
            &[],
        );
        assert!(reply.contains("STAT generation 11\n"));
        assert!(reply.contains("STAT snapshots 3\n"));
        assert!(reply.contains("STAT snapshot_errors 1\n"));
        assert!(reply.contains("STAT last_snapshot_ok 0\n"));
        assert!(reply.contains("STAT last_snapshot_generation 9\n"));
        assert!(reply.contains("STAT last_snapshot_duration_us 1234\n"));
        assert!(reply.contains("STAT last_snapshot_bytes 4096\n"));
        assert!(reply.contains("STAT wal_records 17\n"));
        assert!(reply.contains("STAT wal_bytes 2048\n"));
        assert!(reply.contains("STAT wal_fsyncs 5\n"));
        assert!(reply.contains("STAT last_replay_records 6\n"));
    }

    #[test]
    fn metrics_reply_renders_a_framed_exposition() {
        let metrics = MetricsSnapshot { requests: 9, query: 4, ..MetricsSnapshot::default() };
        let mut query_latency = Histogram::new();
        query_latency.record_n(2_000, 4);
        let mut kernel = Histogram::new();
        kernel.record(1_500);
        let snapshot = SnapshotStatus {
            last_duration_micros: 77,
            last_bytes: 512,
            wal_records: 21,
            wal_bytes: 9000,
            wal_fsyncs: 4,
            last_replay_records: 2,
            ..SnapshotStatus::default()
        };
        let reply = render_metrics_reply(
            &metrics,
            &[("query", query_latency)],
            &[("kernel", kernel)],
            &snapshot,
            3,
        );
        assert!(reply.starts_with("OK metrics\n"));
        assert!(reply.ends_with("END\n"));
        assert!(reply.contains("# TYPE kastio_requests_total counter\n"));
        assert!(reply.contains("kastio_requests_total 9\n"));
        assert!(reply.contains("kastio_verb_requests_total{verb=\"query\"} 4\n"));
        assert!(reply.contains("kastio_request_latency_ns_bucket{verb=\"query\",le=\"+Inf\"} 4\n"));
        assert!(reply.contains("kastio_request_latency_ns_count{verb=\"query\"} 4\n"));
        assert!(reply.contains("kastio_request_latency_us{verb=\"query\",quantile=\"0.99\"} 2\n"));
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"kernel\"} 1\n"));
        assert!(reply.contains("kastio_last_snapshot_duration_us 77\n"));
        assert!(reply.contains("kastio_last_snapshot_bytes 512\n"));
        assert!(reply.contains("# TYPE kastio_wal_records_total counter\n"));
        assert!(reply.contains("kastio_wal_records_total 21\n"));
        assert!(reply.contains("kastio_wal_bytes_total 9000\n"));
        assert!(reply.contains("kastio_wal_fsyncs_total 4\n"));
        assert!(reply.contains("kastio_wal_replay_records 2\n"));
        assert!(reply.contains("kastio_slowlog_entries 3\n"));
        // No exposition line can alias the frame terminator.
        let inner = &reply["OK metrics\n".len()..reply.len() - "END\n".len()];
        assert!(inner.lines().all(|line| line != "END"));
    }

    #[test]
    fn slowlog_replies_render_entries_and_acks() {
        let entries = vec![
            SlowEntry {
                id: 7,
                at_micros: 900,
                verb: "QUERY",
                args: "k=3,ops=12".to_string(),
                total_micros: 450,
                stages: vec![("parse", 10), ("kernel", 400)],
            },
            SlowEntry {
                id: 6,
                at_micros: 800,
                verb: "SAVE",
                args: String::new(),
                total_micros: 300,
                stages: vec![],
            },
        ];
        let reply = render_slowlog_get(&entries);
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK slowlog entries=2");
        assert_eq!(
            lines[1],
            "SLOW 7 at_us=900 verb=QUERY total_us=450 stages=parse:10,kernel:400 args=k=3,ops=12"
        );
        assert_eq!(lines[2], "SLOW 6 at_us=800 verb=SAVE total_us=300 stages=- args=-");
        assert_eq!(lines[3], "END");
        assert_eq!(render_slowlog_get(&[]), "OK slowlog entries=0\nEND\n");
        assert_eq!(render_slowlog_len(5), "OK slowlog len=5\n");
        assert_eq!(render_slowlog_reset(), "OK slowlog reset\n");
    }

    #[test]
    fn trace_line_floors_stage_sums_under_the_total() {
        let line = render_trace_line(10_999, &[("parse", 1_999), ("kernel", 8_999)]);
        assert_eq!(line, "TRACE total_us=10 parse_us=1 kernel_us=8\n");
    }

    #[test]
    fn read_reply_frames_single_and_multi_line_replies() {
        use std::io::BufReader;
        let wire = "OK id=0 name=e0 entries=1\nOK matches=1 label=x\nMATCH 1 e0 x 1\nEND\n\
                    STAT entries 1\nEND\n\
                    OK queries=1\nRESULT 1 matches=0 label=-\nEND\nERR nope\n";
        let mut reader = BufReader::new(wire.as_bytes());
        assert_eq!(read_reply(&mut reader).unwrap(), "OK id=0 name=e0 entries=1\n");
        assert_eq!(read_reply(&mut reader).unwrap(), "OK matches=1 label=x\nMATCH 1 e0 x 1\nEND\n");
        assert_eq!(read_reply(&mut reader).unwrap(), "STAT entries 1\nEND\n");
        assert_eq!(
            read_reply(&mut reader).unwrap(),
            "OK queries=1\nRESULT 1 matches=0 label=-\nEND\n"
        );
        assert_eq!(read_reply(&mut reader).unwrap(), "ERR nope\n");
        let err = read_reply(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn read_reply_frames_metrics_and_slowlog_blocks() {
        use std::io::BufReader;
        let wire = "OK metrics\n# TYPE kastio_requests_total counter\nkastio_requests_total 1\nEND\n\
                    OK slowlog entries=1\nSLOW 0 at_us=1 verb=QUERY total_us=9 stages=- args=-\nEND\n\
                    OK slowlog len=0\nOK slowlog reset\n";
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(read_reply(&mut reader).unwrap().ends_with("kastio_requests_total 1\nEND\n"));
        assert!(read_reply(&mut reader).unwrap().starts_with("OK slowlog entries=1\nSLOW 0 "));
        assert_eq!(read_reply(&mut reader).unwrap(), "OK slowlog len=0\n");
        assert_eq!(read_reply(&mut reader).unwrap(), "OK slowlog reset\n");
    }
}
