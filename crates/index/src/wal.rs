//! Per-shard write-ahead logging with group-commit fsync.
//!
//! [`WalManager`] closes the durability hole the atomic snapshots leave
//! open: the window *between* saves. Every acknowledged `INGEST` /
//! `BATCH INGEST` is appended (as a [`kastio_trace::wal`] record) to
//! `<dir>/wal/shard<i>.log` — shard `i = id % shards`, mirroring the
//! index's placement rule — and the server only writes the ack after
//! [`WalManager::wait_durable`] confirms an fsync covering the record.
//!
//! # Group commit
//!
//! Fsync per record would put a disk flush on every ingest's latency.
//! Instead appends are acknowledged in batches: [`WalManager::append`]
//! writes the record under its shard's lock and takes a global commit
//! sequence number; a background thread wakes every `sync_interval`
//! (`--wal-sync-micros`, default 2 ms), reads the highest appended
//! sequence, fsyncs every dirty shard file, and only then advances the
//! durable watermark and wakes waiters. Because a sequence number is
//! taken *after* its `write_all` returns, an fsync issued at watermark
//! `t` provably covers every record with sequence ≤ `t`. Waiters also
//! fsync inline if the watermark stalls, so a wedged sync thread delays
//! acks rather than losing them.
//!
//! An fsync failure is **sticky**: after the kernel has failed a flush,
//! previously-written dirty pages may already have been dropped, so no
//! later fsync can retroactively make earlier acks safe. Every ack
//! waiting on or after a failed flush gets an error (the client sees
//! `ERR`, which means *not acked* — exactly the guarantee recovery
//! makes).
//!
//! # Compaction, not truncation
//!
//! A snapshot at generation `g` makes records with `id < g` redundant —
//! but ingests running *concurrently with the snapshot* have already
//! appended records with `id ≥ g` that a blind truncate would destroy.
//! [`WalManager::compact`] therefore rewrites each shard log keeping
//! only `id ≥ g` (temp file, fsync, rename — the same discipline as the
//! snapshots), under the shard lock so no append interleaves.
//! [`WalManager::truncate_all`] is the blunt form, safe only while no
//! ingest can be in flight (the daemon uses it once at startup, after
//! its establishing snapshot, to neutralise stale or foreign logs).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use kastio_trace::wal::{encode_wal_record, scan_wal, wal_dir, wal_shard_path, WalRecord};

use crate::fault::{crash_point, crash_point_armed, CRASH_MID_RECORD};
use crate::index::SnapshotStatus;

/// How long a durability waiter sleeps before concluding the sync
/// thread has stalled and fsyncing inline.
const STALL_TIMEOUT: Duration = Duration::from_millis(20);

/// One shard's log file. `dirty` marks bytes written since the last
/// fsync, so an idle shard costs a group commit nothing.
struct WalShard {
    file: File,
    path: PathBuf,
    dirty: bool,
}

/// The group-commit watermark pair: `appended` is the highest sequence
/// whose record bytes are fully written; `durable` the highest covered
/// by an fsync. `appended ≥ durable` always.
struct CommitState {
    appended: u64,
    durable: u64,
    /// First fsync failure, sticky (see the module docs).
    failed: Option<String>,
}

/// The per-shard write-ahead log of one durable corpus directory.
///
/// Shared behind an `Arc`: the server's connection handlers append, a
/// background thread group-commits, snapshots compact.
pub struct WalManager {
    shards: Vec<Mutex<WalShard>>,
    commit: Mutex<CommitState>,
    committed: Condvar,
    sync_interval: Duration,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
}

impl std::fmt::Debug for WalManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalManager")
            .field("shards", &self.shards.len())
            .field("sync_interval", &self.sync_interval)
            .finish_non_exhaustive()
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|p| p.into_inner())
}

impl WalManager {
    /// Opens (creating as needed) the shard logs under `<dir>/wal` and
    /// starts the group-commit thread. The thread holds only a `Weak`
    /// reference, so dropping the last `Arc` retires it within one
    /// interval.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the directory or opening a log.
    pub fn open(dir: &Path, shards: usize, sync_interval: Duration) -> io::Result<Arc<WalManager>> {
        fs::create_dir_all(wal_dir(dir))?;
        let shards = (0..shards.max(1))
            .map(|i| {
                let path = wal_shard_path(dir, i);
                let file = OpenOptions::new().create(true).append(true).open(&path)?;
                Ok(Mutex::new(WalShard { file, path, dirty: false }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let manager = Arc::new(WalManager {
            shards,
            commit: Mutex::new(CommitState { appended: 0, durable: 0, failed: None }),
            committed: Condvar::new(),
            sync_interval,
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&manager);
        std::thread::Builder::new().name("kastio-wal-sync".to_string()).spawn(move || loop {
            std::thread::sleep(weak.upgrade().map_or(Duration::ZERO, |m| m.sync_interval));
            let Some(manager) = weak.upgrade() else { return };
            manager.sync_once();
        })?;
        Ok(manager)
    }

    /// Appends one record to its shard's log and returns the commit
    /// sequence number to pass to [`Self::wait_durable`] before acking.
    ///
    /// # Errors
    ///
    /// The write error if the record could not be fully appended. A
    /// partial append leaves a torn tail, which recovery truncates —
    /// safe precisely because the ack never happened.
    pub fn append(&self, record: &WalRecord) -> io::Result<u64> {
        let encoded = encode_wal_record(record);
        let shard_index = record.id as usize % self.shards.len();
        let written: io::Result<()> = (|| {
            let mut shard = lock(&self.shards[shard_index]);
            if crash_point_armed(CRASH_MID_RECORD) {
                // Make the torn half *durable* before aborting: a crash
                // that loses the whole buffered record is the easy case;
                // the hard case recovery must survive is half a record
                // physically on disk.
                shard.file.write_all(&encoded[..encoded.len() / 2])?;
                shard.file.sync_data()?;
                crash_point(CRASH_MID_RECORD);
                shard.file.write_all(&encoded[encoded.len() / 2..])?;
            } else {
                shard.file.write_all(&encoded)?;
            }
            shard.dirty = true;
            Ok(())
        })();
        if let Err(e) = written {
            // A failed append leaves this entry in memory with no log
            // record; a later acked record would then sit past an id gap
            // and be dropped at replay. Poison the commit state so every
            // later ack fails too (the client sees `ERR` = not acked).
            let mut state = lock(&self.commit);
            if state.failed.is_none() {
                state.failed = Some(format!("wal append failed: {e}"));
            }
            self.committed.notify_all();
            return Err(e);
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(encoded.len() as u64, Ordering::Relaxed);
        let mut state = lock(&self.commit);
        state.appended += 1;
        Ok(state.appended)
    }

    /// Blocks until an fsync covers commit sequence `seq`.
    ///
    /// # Errors
    ///
    /// The sticky fsync failure, if one occurred before `seq` became
    /// durable. Callers must not ack in that case.
    pub fn wait_durable(&self, seq: u64) -> io::Result<()> {
        let mut state = lock(&self.commit);
        loop {
            if state.durable >= seq {
                return Ok(());
            }
            if let Some(failed) = &state.failed {
                return Err(io::Error::other(failed.clone()));
            }
            let (guard, timeout) = self
                .committed
                .wait_timeout(state, STALL_TIMEOUT)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
            if timeout.timed_out() && state.durable < seq && state.failed.is_none() {
                // The sync thread missed its window (descheduled, or the
                // manager is mid-teardown): commit inline rather than
                // holding the ack hostage.
                drop(state);
                self.sync_once();
                state = lock(&self.commit);
            }
        }
    }

    /// One group commit: fsync every dirty shard, then advance the
    /// durable watermark to what had been appended when the pass began.
    fn sync_once(&self) {
        let target = {
            let state = lock(&self.commit);
            if state.appended <= state.durable || state.failed.is_some() {
                return;
            }
            state.appended
        };
        let mut error = None;
        for shard in &self.shards {
            let mut shard = lock(shard);
            if !shard.dirty {
                continue;
            }
            match shard.file.sync_data() {
                Ok(()) => {
                    shard.dirty = false;
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => error = Some(format!("fsync {} failed: {e}", shard.path.display())),
            }
        }
        let mut state = lock(&self.commit);
        match error {
            None if state.durable < target => state.durable = target,
            None => {}
            Some(e) => state.failed = Some(e),
        }
        self.committed.notify_all();
    }

    /// Rewrites every shard log keeping only records with
    /// `id ≥ keep_from` — the compaction a snapshot at generation
    /// `keep_from` licenses. Runs per shard under the shard lock (temp
    /// file, fsync, rename), so concurrent appends to other shards
    /// proceed and no append interleaves a rewrite.
    ///
    /// # Errors
    ///
    /// The first filesystem error; shards already compacted stay
    /// compacted, the failing shard keeps its full (safe, merely
    /// uncompacted) log.
    pub fn compact(&self, keep_from: u64) -> io::Result<()> {
        for shard in &self.shards {
            let mut shard = lock(shard);
            let bytes = fs::read(&shard.path)?;
            let scan = scan_wal(&bytes);
            let mut kept = Vec::new();
            for record in &scan.records {
                if u64::from(record.id) >= keep_from {
                    kept.extend_from_slice(&encode_wal_record(record));
                }
            }
            if kept.len() as u64 == scan.durable_bytes && !scan.truncated {
                continue; // nothing to drop: skip the rewrite
            }
            let tmp = shard.path.with_extension("log.tmp");
            {
                let mut file = File::create(&tmp)?;
                file.write_all(&kept)?;
                file.sync_data()?;
            }
            fs::rename(&tmp, &shard.path)?;
            if let Some(parent) = shard.path.parent() {
                // Make the rename itself durable (best effort — some
                // filesystems refuse directory fsyncs).
                if let Ok(dirfd) = File::open(parent) {
                    let _ = dirfd.sync_all();
                }
            }
            shard.file = OpenOptions::new().create(true).append(true).open(&shard.path)?;
            shard.dirty = false;
        }
        Ok(())
    }

    /// Empties every shard log. Only safe while no ingest can be in
    /// flight; the daemon calls it once at startup, right after the
    /// establishing snapshot, to neutralise stale or foreign logs.
    ///
    /// # Errors
    ///
    /// The first truncation error.
    pub fn truncate_all(&self) -> io::Result<()> {
        for shard in &self.shards {
            let mut shard = lock(shard);
            shard.file.set_len(0)?;
            shard.file.sync_data()?;
            shard.dirty = false;
        }
        Ok(())
    }

    /// Copies the live WAL counters into a [`SnapshotStatus`] (the form
    /// `STATS` / `METRICS` report them in).
    pub fn overlay(&self, status: &mut SnapshotStatus) {
        status.wal_records = self.records.load(Ordering::Relaxed);
        status.wal_bytes = self.bytes.load(Ordering::Relaxed);
        status.wal_fsyncs = self.fsyncs.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kastio_trace::parse_trace;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kastio-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(id: u32) -> WalRecord {
        WalRecord {
            id,
            name: format!("e{id}"),
            label: "ckpt".to_string(),
            trace: parse_trace("h0 write 4096\nh0 write 4096").unwrap(),
        }
    }

    #[test]
    fn append_wait_then_rescan_recovers_every_record() {
        let dir = tmpdir("roundtrip");
        let wal = WalManager::open(&dir, 2, Duration::from_micros(500)).unwrap();
        let mut last = 0;
        for id in 0..6 {
            last = wal.append(&record(id)).unwrap();
        }
        wal.wait_durable(last).unwrap();

        // Shard placement mirrors the index: id % shards.
        let even = scan_wal(&fs::read(wal_shard_path(&dir, 0)).unwrap());
        let odd = scan_wal(&fs::read(wal_shard_path(&dir, 1)).unwrap());
        assert_eq!(even.records.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(odd.records.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert!(!even.truncated && !odd.truncated);

        let mut status = SnapshotStatus::default();
        wal.overlay(&mut status);
        assert_eq!(status.wal_records, 6);
        assert_eq!(status.wal_bytes, even.durable_bytes + odd.durable_bytes);
        assert!(status.wal_fsyncs >= 1, "at least one group commit ran");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_only_records_at_or_past_the_generation() {
        let dir = tmpdir("compact");
        let wal = WalManager::open(&dir, 2, Duration::from_micros(500)).unwrap();
        let mut last = 0;
        for id in 0..8 {
            last = wal.append(&record(id)).unwrap();
        }
        wal.wait_durable(last).unwrap();

        // A snapshot at generation 5 licenses dropping ids 0..5 only.
        wal.compact(5).unwrap();
        let even = scan_wal(&fs::read(wal_shard_path(&dir, 0)).unwrap());
        let odd = scan_wal(&fs::read(wal_shard_path(&dir, 1)).unwrap());
        assert_eq!(even.records.iter().map(|r| r.id).collect::<Vec<_>>(), vec![6]);
        assert_eq!(odd.records.iter().map(|r| r.id).collect::<Vec<_>>(), vec![5, 7]);

        // Appends keep working on the reopened handles.
        let seq = wal.append(&record(8)).unwrap();
        wal.wait_durable(seq).unwrap();
        let even = scan_wal(&fs::read(wal_shard_path(&dir, 0)).unwrap());
        assert_eq!(even.records.iter().map(|r| r.id).collect::<Vec<_>>(), vec![6, 8]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_all_empties_every_shard() {
        let dir = tmpdir("truncate");
        let wal = WalManager::open(&dir, 3, Duration::from_micros(500)).unwrap();
        let mut last = 0;
        for id in 0..5 {
            last = wal.append(&record(id)).unwrap();
        }
        wal.wait_durable(last).unwrap();
        wal.truncate_all().unwrap();
        for shard in 0..3 {
            assert_eq!(fs::read(wal_shard_path(&dir, shard)).unwrap(), b"");
        }
        // And the log is usable again afterwards.
        let seq = wal.append(&record(9)).unwrap();
        wal.wait_durable(seq).unwrap();
        assert_eq!(scan_wal(&fs::read(wal_shard_path(&dir, 0)).unwrap()).records[0].id, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_all_become_durable() {
        let dir = tmpdir("concurrent");
        let wal = WalManager::open(&dir, 4, Duration::from_micros(200)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let wal = Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..16 {
                        let seq = wal.append(&record(t * 16 + i)).unwrap();
                        wal.wait_durable(seq).unwrap();
                    }
                });
            }
        });
        let mut ids: Vec<u32> = (0..4)
            .flat_map(|s| scan_wal(&fs::read(wal_shard_path(&dir, s)).unwrap()).records)
            .map(|r| r.id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }
}
