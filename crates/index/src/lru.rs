//! A small fixed-capacity LRU map for pairwise kernel values.
//!
//! The Kast kernel is by far the most expensive operation in the serving
//! path (quadratic in string length per pair). Query traffic is heavily
//! repetitive — monitoring systems re-submit the same workload, batch
//! classifiers probe the same neighbourhoods — so an LRU over
//! `(query, entry) → raw kernel value` turns the second occurrence of a
//! pair into a hash lookup.
//!
//! Implemented as a `HashMap` into a slab of doubly-linked nodes, giving
//! O(1) get/insert/evict without any external dependency.
//!
//! A sharded [`crate::PatternIndex`] owns **one** [`SharedKernelCache`]:
//! a byte-accounted pool of `KernelCache` stripes shared by every shard,
//! sized by [`crate::IndexOptions::cache_capacity`] in total. Keys are
//! `(query id, entry id)`, so which stripe holds a pair is a pure
//! function of the pair — never of the shard that owns the entry — and a
//! hot query that touches entries in all `S` shards warms the cache
//! *once*, not `S` times. Striping (the stripe count tracks the shard
//! count, capped) keeps concurrent queries from serialising on one
//! mutex; the single-threaded `KernelCache` underneath stays free of any
//! synchronisation of its own. Byte usage is charged to an optional
//! [`kastio_quota::Account`], making the cache the natural reclaim
//! target when the daemon's memory budget comes under pressure.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use kastio_quota::Account;

/// Cache key: the query's dense content id (assigned by the index's query
/// registry — deliberately *not* a hash, since a collision would silently
/// serve the wrong kernel value) plus the entry id.
pub type PairKey = (u64, u32);

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: PairKey,
    value: f64,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map `PairKey → f64`.
///
/// Capacity 0 disables caching entirely (every lookup misses, inserts are
/// dropped) — useful for measuring the uncached path.
///
/// # Examples
///
/// ```
/// use kastio_index::lru::KernelCache;
///
/// let mut cache = KernelCache::new(2);
/// cache.insert((1, 0), 0.5);
/// cache.insert((2, 0), 0.25);
/// assert_eq!(cache.get((1, 0)), Some(0.5)); // (1,0) is now most recent
/// cache.insert((3, 0), 0.125);              // evicts (2,0)
/// assert_eq!(cache.get((2, 0)), None);
/// assert_eq!(cache.get((1, 0)), Some(0.5));
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KernelCache {
    capacity: usize,
    map: HashMap<PairKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

/// Approximate bytes one cached pair occupies: the `HashMap` entry
/// (key + slot index + bucket overhead) plus the slab node. Used to
/// charge cache growth against a [`kastio_quota::Account`] and to bound
/// the up-front `HashMap` pre-allocation.
pub const PAIR_COST_BYTES: usize = 64;

/// Upper bound on bytes [`KernelCache::new`] pre-reserves for its map.
/// Larger configured capacities still work — the map just grows on
/// demand instead of being reserved before a single pair is cached.
const PREALLOC_BUDGET_BYTES: usize = 1 << 20;

impl KernelCache {
    /// Creates a cache holding at most `capacity` pairs.
    pub fn new(capacity: usize) -> Self {
        KernelCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(PREALLOC_BUDGET_BYTES / PAIR_COST_BYTES)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a pair, marking it most-recently used on a hit.
    pub fn get(&mut self, key: PairKey) -> Option<f64> {
        let &slot = self.map.get(&key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.nodes[slot].value)
    }

    /// Inserts (or refreshes) a pair, evicting the least-recently used
    /// pair when full. A no-op at capacity 0.
    pub fn insert(&mut self, key: PairKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.nodes[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node { key, value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.nodes.push(Node { key, value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Drops every cached pair, keeping the allocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use kastio_index::lru::KernelCache;
    ///
    /// let mut cache = KernelCache::new(4);
    /// cache.insert((1, 0), 0.5);
    /// cache.clear();
    /// assert!(cache.is_empty());
    /// assert_eq!(cache.capacity(), 4, "capacity survives a clear");
    /// ```
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// One byte-accounted kernel cache shared by every shard of a
/// [`crate::PatternIndex`].
///
/// The total pair capacity is split across a small power-of-two number
/// of mutex-guarded [`KernelCache`] stripes so concurrent queries rarely
/// contend on the same lock. A pair's stripe is a pure function of its
/// `(query id, entry id)` key, so every shard's candidates for one query
/// land in the same shared pool: a cross-shard hot query warms the cache
/// once instead of once per shard.
///
/// When an [`Account`] is attached, each newly cached pair charges
/// [`PAIR_COST_BYTES`] against it and [`clear`](SharedKernelCache::clear)
/// releases what it frees — which is exactly what makes the cache a
/// useful reclaim target under memory pressure. Charging happens *after*
/// the stripe lock is released, so a charge that triggers quota reclaim
/// (which clears these very stripes) can never deadlock.
#[derive(Debug)]
pub struct SharedKernelCache {
    stripes: Vec<Mutex<KernelCache>>,
    /// `stripes.len() - 1`; stripe count is always a power of two.
    stripe_mask: usize,
    total_capacity: usize,
    account: OnceLock<Account>,
}

/// Most stripes a cache will ever be split into: enough to keep a
/// 16-shard index from serialising, without fragmenting tiny capacities.
const MAX_STRIPES: usize = 16;

impl SharedKernelCache {
    /// Creates a cache holding at most `capacity` pairs in total, striped
    /// to suit an index with `shards` shards. Capacity 0 disables caching.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let stripes = shards.max(1).next_power_of_two().min(MAX_STRIPES);
        let per_stripe = if capacity == 0 { 0 } else { capacity.div_ceil(stripes) };
        SharedKernelCache {
            stripes: (0..stripes).map(|_| Mutex::new(KernelCache::new(per_stripe))).collect(),
            stripe_mask: stripes - 1,
            total_capacity: capacity,
            account: OnceLock::new(),
        }
    }

    /// Attaches the byte account cache growth is charged against. At most
    /// one account sticks; later calls are ignored.
    pub fn attach_account(&self, account: Account) {
        let _ = self.account.set(account);
    }

    /// Total configured pair capacity across all stripes.
    pub fn capacity(&self) -> usize {
        self.total_capacity
    }

    /// Number of pairs currently cached across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock_stripe(s).len()).sum()
    }

    /// Whether no stripe holds anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes the cached pairs occupy.
    pub fn approx_bytes(&self) -> u64 {
        (self.len() * PAIR_COST_BYTES) as u64
    }

    fn stripe_of(&self, (query, entry): PairKey) -> usize {
        // Fibonacci mixing over both halves of the key; the high bits are
        // the well-mixed ones, so take the stripe index from the top.
        let mixed = (query.rotate_left(32) ^ u64::from(entry)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 48) as usize & self.stripe_mask
    }

    /// Looks up a pair, marking it most-recently used within its stripe.
    pub fn get(&self, key: PairKey) -> Option<f64> {
        lock_stripe(&self.stripes[self.stripe_of(key)]).get(key)
    }

    /// Inserts (or refreshes) a pair, evicting within the stripe when
    /// full, and charges any net growth to the attached account.
    pub fn insert(&self, key: PairKey, value: f64) {
        if self.total_capacity == 0 {
            return;
        }
        let grew = {
            let mut stripe = lock_stripe(&self.stripes[self.stripe_of(key)]);
            let before = stripe.len();
            stripe.insert(key, value);
            stripe.len() > before
        };
        // Charged outside the stripe lock: a reclaim triggered here may
        // clear the stripes, and must be able to lock them.
        if grew {
            if let Some(account) = self.account.get() {
                account.charge(PAIR_COST_BYTES as u64);
            }
        }
    }

    /// Drops every cached pair, releasing the freed bytes from the
    /// attached account. Returns the number of bytes freed — the shape
    /// quota reclaimers report back.
    pub fn clear(&self) -> u64 {
        let mut removed = 0usize;
        for stripe in &self.stripes {
            let mut guard = lock_stripe(stripe);
            removed += guard.len();
            guard.clear();
        }
        let bytes = (removed * PAIR_COST_BYTES) as u64;
        if bytes > 0 {
            if let Some(account) = self.account.get() {
                account.release(bytes);
            }
        }
        bytes
    }
}

/// Stripe locks guard a plain cache — a panic mid-operation cannot leave
/// it logically corrupt, so a poisoned lock is safe to keep using.
fn lock_stripe(stripe: &Mutex<KernelCache>) -> MutexGuard<'_, KernelCache> {
    stripe.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_on_empty_misses() {
        let mut c = KernelCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get((0, 0)), None);
    }

    #[test]
    fn insert_then_get_hits() {
        let mut c = KernelCache::new(4);
        c.insert((9, 3), 1.25);
        assert_eq!(c.get((9, 3)), Some(1.25));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = KernelCache::new(3);
        for i in 0..3u32 {
            c.insert((i as u64, i), i as f64);
        }
        // Touch (0,0) so (1,1) becomes the LRU.
        assert!(c.get((0, 0)).is_some());
        c.insert((3, 3), 3.0);
        assert_eq!(c.get((1, 1)), None, "the untouched pair is evicted");
        assert!(c.get((0, 0)).is_some());
        assert!(c.get((2, 2)).is_some());
        assert!(c.get((3, 3)).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = KernelCache::new(2);
        c.insert((1, 1), 1.0);
        c.insert((2, 2), 2.0);
        c.insert((1, 1), 10.0); // refresh: (2,2) is now LRU
        c.insert((3, 3), 3.0);
        assert_eq!(c.get((2, 2)), None);
        assert_eq!(c.get((1, 1)), Some(10.0));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = KernelCache::new(0);
        c.insert((1, 1), 1.0);
        assert_eq!(c.get((1, 1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        let mut c = KernelCache::new(2);
        c.insert((1, 1), 1.0);
        c.clear();
        assert!(c.is_empty());
        c.insert((2, 2), 2.0);
        assert_eq!(c.get((2, 2)), Some(2.0));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = KernelCache::new(16);
        for i in 0..1000u32 {
            c.insert((i as u64, i), i as f64);
            assert!(c.len() <= 16);
        }
        // The 16 most recent survive.
        for i in 984..1000u32 {
            assert_eq!(c.get((i as u64, i)), Some(i as f64));
        }
    }

    #[test]
    fn shared_cache_roundtrips_across_stripes() {
        let cache = SharedKernelCache::new(256, 8);
        for i in 0..100u32 {
            cache.insert((u64::from(i) * 37, i), f64::from(i));
        }
        assert_eq!(cache.len(), 100);
        for i in 0..100u32 {
            assert_eq!(cache.get((u64::from(i) * 37, i)), Some(f64::from(i)));
        }
    }

    #[test]
    fn shared_cache_single_shard_uses_one_stripe() {
        let cache = SharedKernelCache::new(2, 1);
        assert_eq!(cache.stripes.len(), 1, "one shard keeps exact LRU order");
        cache.insert((1, 1), 1.0);
        cache.insert((2, 2), 2.0);
        cache.insert((3, 3), 3.0); // evicts (1,1)
        assert_eq!(cache.get((1, 1)), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_zero_capacity_disables_caching() {
        let cache = SharedKernelCache::new(0, 4);
        cache.insert((1, 1), 1.0);
        assert_eq!(cache.get((1, 1)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_charges_and_releases_its_account() {
        let quota = kastio_quota::MemoryQuota::unlimited();
        let cache = SharedKernelCache::new(64, 4);
        cache.attach_account(quota.account("cache"));
        for i in 0..10u32 {
            cache.insert((u64::from(i), i), 0.5);
        }
        assert_eq!(quota.used(), 10 * PAIR_COST_BYTES as u64);
        // Refreshing an existing pair grows nothing.
        cache.insert((0, 0), 0.75);
        assert_eq!(quota.used(), 10 * PAIR_COST_BYTES as u64);
        let freed = cache.clear();
        assert_eq!(freed, 10 * PAIR_COST_BYTES as u64);
        assert_eq!(quota.used(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_eviction_does_not_leak_charges() {
        let quota = kastio_quota::MemoryQuota::unlimited();
        let cache = SharedKernelCache::new(16, 1);
        cache.attach_account(quota.account("cache"));
        for i in 0..1000u32 {
            cache.insert((u64::from(i), i), f64::from(i));
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(quota.used(), 16 * PAIR_COST_BYTES as u64);
    }

    #[test]
    fn shared_cache_is_usable_from_many_threads() {
        use std::sync::Arc;

        let cache = Arc::new(SharedKernelCache::new(4096, 8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let key = (t * 10_000 + u64::from(i), i);
                        cache.insert(key, f64::from(i));
                        assert_eq!(cache.get(key), Some(f64::from(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 4096 + MAX_STRIPES); // per-stripe rounding slack
    }
}
