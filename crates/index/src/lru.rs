//! A small fixed-capacity LRU map for pairwise kernel values.
//!
//! The Kast kernel is by far the most expensive operation in the serving
//! path (quadratic in string length per pair). Query traffic is heavily
//! repetitive — monitoring systems re-submit the same workload, batch
//! classifiers probe the same neighbourhoods — so an LRU over
//! `(query, entry) → raw kernel value` turns the second occurrence of a
//! pair into a hash lookup.
//!
//! Implemented as a `HashMap` into a slab of doubly-linked nodes, giving
//! O(1) get/insert/evict without any external dependency.
//!
//! In a sharded [`crate::PatternIndex`] every shard owns one
//! `KernelCache` behind its own mutex, sized by
//! [`crate::IndexOptions::cache_capacity`] each: a query holding only
//! shard *read* locks can still hit and fill the caches, and eviction
//! pressure in one shard never disturbs another. The cache itself is
//! single-threaded by design — concurrency is the caller's lock layout,
//! kept out of this data structure.

use std::collections::HashMap;

/// Cache key: the query's dense content id (assigned by the index's query
/// registry — deliberately *not* a hash, since a collision would silently
/// serve the wrong kernel value) plus the entry id.
pub type PairKey = (u64, u32);

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: PairKey,
    value: f64,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map `PairKey → f64`.
///
/// Capacity 0 disables caching entirely (every lookup misses, inserts are
/// dropped) — useful for measuring the uncached path.
///
/// # Examples
///
/// ```
/// use kastio_index::lru::KernelCache;
///
/// let mut cache = KernelCache::new(2);
/// cache.insert((1, 0), 0.5);
/// cache.insert((2, 0), 0.25);
/// assert_eq!(cache.get((1, 0)), Some(0.5)); // (1,0) is now most recent
/// cache.insert((3, 0), 0.125);              // evicts (2,0)
/// assert_eq!(cache.get((2, 0)), None);
/// assert_eq!(cache.get((1, 0)), Some(0.5));
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KernelCache {
    capacity: usize,
    map: HashMap<PairKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl KernelCache {
    /// Creates a cache holding at most `capacity` pairs.
    pub fn new(capacity: usize) -> Self {
        KernelCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a pair, marking it most-recently used on a hit.
    pub fn get(&mut self, key: PairKey) -> Option<f64> {
        let &slot = self.map.get(&key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.nodes[slot].value)
    }

    /// Inserts (or refreshes) a pair, evicting the least-recently used
    /// pair when full. A no-op at capacity 0.
    pub fn insert(&mut self, key: PairKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.nodes[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node { key, value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.nodes.push(Node { key, value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Drops every cached pair, keeping the allocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use kastio_index::lru::KernelCache;
    ///
    /// let mut cache = KernelCache::new(4);
    /// cache.insert((1, 0), 0.5);
    /// cache.clear();
    /// assert!(cache.is_empty());
    /// assert_eq!(cache.capacity(), 4, "capacity survives a clear");
    /// ```
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_on_empty_misses() {
        let mut c = KernelCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get((0, 0)), None);
    }

    #[test]
    fn insert_then_get_hits() {
        let mut c = KernelCache::new(4);
        c.insert((9, 3), 1.25);
        assert_eq!(c.get((9, 3)), Some(1.25));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = KernelCache::new(3);
        for i in 0..3u32 {
            c.insert((i as u64, i), i as f64);
        }
        // Touch (0,0) so (1,1) becomes the LRU.
        assert!(c.get((0, 0)).is_some());
        c.insert((3, 3), 3.0);
        assert_eq!(c.get((1, 1)), None, "the untouched pair is evicted");
        assert!(c.get((0, 0)).is_some());
        assert!(c.get((2, 2)).is_some());
        assert!(c.get((3, 3)).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = KernelCache::new(2);
        c.insert((1, 1), 1.0);
        c.insert((2, 2), 2.0);
        c.insert((1, 1), 10.0); // refresh: (2,2) is now LRU
        c.insert((3, 3), 3.0);
        assert_eq!(c.get((2, 2)), None);
        assert_eq!(c.get((1, 1)), Some(10.0));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = KernelCache::new(0);
        c.insert((1, 1), 1.0);
        assert_eq!(c.get((1, 1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        let mut c = KernelCache::new(2);
        c.insert((1, 1), 1.0);
        c.clear();
        assert!(c.is_empty());
        c.insert((2, 2), 2.0);
        assert_eq!(c.get((2, 2)), Some(2.0));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = KernelCache::new(16);
        for i in 0..1000u32 {
            c.insert((i as u64, i), i as f64);
            assert!(c.len() <= 16);
        }
        // The 16 most recent survive.
        for i in 984..1000u32 {
            assert_eq!(c.get((i as u64, i)), Some(i as f64));
        }
    }
}
