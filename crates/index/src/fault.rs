//! Crash-point fault injection for the durability test suite.
//!
//! The WAL's correctness claims are *ordering* claims — the covering
//! fsync precedes the ack, the snapshot rename precedes the log
//! compaction — and ordering bugs only show up when the process dies at
//! exactly the wrong instant. This module lets the recovery tests
//! (`tests/wal_recovery.rs`) place that instant: when the environment
//! variable `KASTIO_CRASH_POINT` names a crash point, the process calls
//! [`std::process::abort`] the moment execution reaches it (optionally
//! after skipping the first `KASTIO_CRASH_SKIP` hits, so a test can let
//! the server establish itself before arming the crash).
//!
//! Named points:
//!
//! * `after-ack-before-fsync` — immediately after an ingest reply is
//!   flushed to the client. Recovery must still contain the acked entry,
//!   which proves the covering fsync happened *before* the ack.
//! * `mid-record` — halfway through appending a WAL record (the torn
//!   half is fsync'd first so the tail really is torn on disk).
//! * `after-snapshot-rename-before-truncate` — between the snapshot swap
//!   and the WAL compaction, leaving a full stale WAL over a fresh
//!   snapshot. Recovery must replay idempotently.
//!
//! In production (no env var) every check is a single lazily-initialised
//! `Option` test — no syscalls, no branches on the hot path beyond one
//! comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Crash after an ingest ack has been flushed, before anything else.
pub const CRASH_AFTER_ACK: &str = "after-ack-before-fsync";
/// Crash halfway through appending a WAL record.
pub const CRASH_MID_RECORD: &str = "mid-record";
/// Crash between the snapshot rename and the WAL compaction.
pub const CRASH_AFTER_SNAPSHOT_RENAME: &str = "after-snapshot-rename-before-truncate";

struct Armed {
    point: String,
    skip: u64,
}

static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);

fn armed() -> &'static Option<Armed> {
    ARMED.get_or_init(|| {
        let point = std::env::var("KASTIO_CRASH_POINT").ok()?;
        if point.is_empty() {
            return None;
        }
        let skip =
            std::env::var("KASTIO_CRASH_SKIP").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
        Some(Armed { point, skip })
    })
}

/// Aborts the process if the named crash point is armed via
/// `KASTIO_CRASH_POINT` (after `KASTIO_CRASH_SKIP` skipped hits).
///
/// Aborting — not panicking, not exiting — is the point: no destructors,
/// no atexit handlers, no buffered writes get a chance to run, exactly
/// like a `kill -9` or a power cut at that instruction.
pub fn crash_point(name: &str) {
    let Some(armed) = armed() else { return };
    if armed.point != name {
        return;
    }
    let hit = HITS.fetch_add(1, Ordering::SeqCst);
    if hit < armed.skip {
        return;
    }
    eprintln!("KASTIO_CRASH_POINT {name}: aborting (hit {hit})");
    std::process::abort();
}

/// Whether the named crash point is armed (without tripping it). Used to
/// fsync a deliberately torn prefix before `mid-record` aborts.
#[must_use]
pub fn crash_point_armed(name: &str) -> bool {
    matches!(armed(), Some(armed) if armed.point == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_points_are_inert() {
        // The test runner never sets KASTIO_CRASH_POINT, so every check
        // must fall through without side effects.
        crash_point(CRASH_AFTER_ACK);
        crash_point(CRASH_MID_RECORD);
        crash_point(CRASH_AFTER_SNAPSHOT_RENAME);
        assert!(!crash_point_armed(CRASH_AFTER_ACK));
    }
}
