//! Termination-signal watching for the serve daemon, dependency-free.
//!
//! The build environment has no crates.io access, so there is no `libc`
//! or `signal-hook` to lean on. Instead this module declares the four C
//! symbols it needs (`signal`, `pipe`, `read`, `close` — all already
//! linked into every std binary on unix) and uses the classic **self-pipe
//! trick**: the signal handler's only action is an async-signal-safe
//! `write(2)` of the signal number into a pipe, and an ordinary thread
//! blocks on the read end, turning the asynchronous signal into a plain
//! synchronous event the daemon can act on (snapshot, then stop the
//! listener).
//!
//! Design constraints honoured here:
//!
//! * **Handler minimalism.** The handler performs one `write` and
//!   re-arms `SIG_DFL` — both async-signal-safe — so a second `SIGTERM`/
//!   `SIGINT` (an impatient operator) kills the process immediately
//!   instead of queueing behind a slow snapshot.
//! * **`signal(2)` over `sigaction(2)`.** Calling glibc/musl `sigaction`
//!   from Rust without the `libc` crate means hand-declaring a
//!   platform-specific struct layout; `signal` has the BSD semantics we
//!   want on both glibc and musl (handler stays installed, syscalls
//!   restart) with a layout-free prototype.
//! * **Install-once.** Process-global signal dispositions cannot be
//!   handed out twice; a second [`watch_termination`] call errors.
//!
//! On non-unix targets [`watch_termination`] reports
//! [`std::io::ErrorKind::Unsupported`] and the daemon simply runs without
//! signal-triggered snapshots.

use std::fmt;
use std::io;

/// Which termination signal arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermSignal {
    /// `SIGINT` (Ctrl-C).
    Interrupt,
    /// `SIGTERM` (the polite kill, e.g. from an orchestrator).
    Terminate,
}

impl fmt::Display for TermSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermSignal::Interrupt => write!(f, "SIGINT"),
            TermSignal::Terminate => write!(f, "SIGTERM"),
        }
    }
}

#[cfg(unix)]
mod imp {
    use super::TermSignal;
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

    /// Raw C prototypes. All four symbols are provided by the C library
    /// std already links against on every unix target; `signal` takes and
    /// returns handler addresses as pointer-sized integers so no
    /// platform-specific struct layout is involved.
    mod sys {
        use std::os::raw::{c_int, c_void};

        pub const SIGINT: c_int = 2;
        pub const SIGTERM: c_int = 15;
        /// `SIG_DFL` is the null handler address.
        pub const SIG_DFL: usize = 0;
        /// `SIG_ERR` is `(void (*)(int)) -1`.
        pub const SIG_ERR: usize = usize::MAX;

        extern "C" {
            pub fn signal(signum: c_int, handler: usize) -> usize;
            pub fn pipe(fds: *mut c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
            pub fn close(fd: c_int) -> c_int;
        }
    }

    /// Write end of the self-pipe, published before handlers install.
    static PIPE_WRITE_FD: AtomicI32 = AtomicI32::new(-1);
    /// Process-global install-once latch.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    /// The signal handler: one async-signal-safe `write` of the signal
    /// number, then re-arm the default disposition — for **both** watched
    /// signals, so a second termination signal of either type (an
    /// impatient operator's Ctrl-C after an orchestrator's SIGTERM)
    /// kills the process immediately instead of writing into a pipe
    /// nobody reads any more.
    extern "C" fn on_signal(signo: std::os::raw::c_int) {
        let fd = PIPE_WRITE_FD.load(Ordering::Relaxed);
        if fd >= 0 {
            let byte = signo as u8;
            // A full pipe or racing close is fine: dropping the byte only
            // loses signal *coalescing*, and SIG_DFL is re-armed anyway.
            // SAFETY: writing 1 byte from a live stack value; `write` is
            // async-signal-safe.
            let _ = unsafe { sys::write(fd, (&byte as *const u8).cast(), 1) };
        }
        // SAFETY: `signal` with SIG_DFL takes no pointers and is
        // async-signal-safe when re-arming a disposition this same
        // handler was installed for.
        unsafe {
            sys::signal(sys::SIGTERM, sys::SIG_DFL);
            sys::signal(sys::SIGINT, sys::SIG_DFL);
        }
    }

    /// See [`super::watch_termination`].
    pub struct SignalWatcher {
        read_fd: std::os::raw::c_int,
    }

    // The watcher only owns the pipe's read end; reading from a distinct
    // thread than the installer is the whole point.
    // SAFETY: the wrapped value is a plain file descriptor (an integer);
    // `read`/`close` on it are thread-safe kernel calls.
    unsafe impl Send for SignalWatcher {}

    pub fn watch_termination() -> io::Result<SignalWatcher> {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "termination signals are already being watched",
            ));
        }
        let mut fds: [std::os::raw::c_int; 2] = [-1, -1];
        // SAFETY: `fds` is a live 2-element array the kernel fills.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            INSTALLED.store(false, Ordering::SeqCst);
            return Err(io::Error::last_os_error());
        }
        PIPE_WRITE_FD.store(fds[1], Ordering::SeqCst);
        let handler: extern "C" fn(std::os::raw::c_int) = on_signal;
        for signo in [sys::SIGTERM, sys::SIGINT] {
            // SAFETY: `handler` is a live `extern "C" fn(c_int)` whose
            // address fits the pointer-sized integer `signal` expects.
            if unsafe { sys::signal(signo, handler as *const () as usize) } == sys::SIG_ERR {
                let err = io::Error::last_os_error();
                PIPE_WRITE_FD.store(-1, Ordering::SeqCst);
                // SAFETY: both fds came from the successful `pipe` above
                // and are closed exactly once, on this error path.
                unsafe {
                    sys::close(fds[0]);
                    sys::close(fds[1]);
                }
                INSTALLED.store(false, Ordering::SeqCst);
                return Err(err);
            }
        }
        Ok(SignalWatcher { read_fd: fds[0] })
    }

    impl SignalWatcher {
        /// Blocks until a watched signal arrives and reports which one.
        /// Intended to be called from a dedicated monitor thread.
        ///
        /// # Errors
        ///
        /// An [`io::Error`] if the self-pipe fails (closed or unreadable)
        /// — callers should treat that as "no signal will ever be
        /// observed".
        pub fn wait(&self) -> io::Result<TermSignal> {
            loop {
                let mut byte = 0u8;
                // SAFETY: reading 1 byte into a live stack value.
                let n = unsafe { sys::read(self.read_fd, (&mut byte as *mut u8).cast(), 1) };
                match n {
                    1 => {
                        return Ok(match i32::from(byte) {
                            sys::SIGINT => TermSignal::Interrupt,
                            _ => TermSignal::Terminate,
                        });
                    }
                    0 => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "signal pipe closed",
                        ));
                    }
                    _ => {
                        let err = io::Error::last_os_error();
                        if err.kind() != io::ErrorKind::Interrupted {
                            return Err(err);
                        }
                    }
                }
            }
        }
    }

    impl Drop for SignalWatcher {
        fn drop(&mut self) {
            // Leave the write fd and the handlers armed (they are
            // process-global anyway); just release the read end.
            // SAFETY: we own the fd and drop it exactly once.
            unsafe { sys::close(self.read_fd) };
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::TermSignal;
    use std::io;

    /// See [`super::watch_termination`].
    pub struct SignalWatcher {
        never: std::convert::Infallible,
    }

    pub fn watch_termination() -> io::Result<SignalWatcher> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "signal watching is only implemented on unix",
        ))
    }

    impl SignalWatcher {
        /// Unreachable on non-unix targets ([`super::watch_termination`]
        /// never constructs a watcher there).
        pub fn wait(&self) -> io::Result<TermSignal> {
            match self.never {}
        }
    }
}

pub use imp::SignalWatcher;

/// Installs process-wide `SIGTERM`/`SIGINT` handlers (self-pipe trick)
/// and returns the watcher whose [`SignalWatcher::wait`] blocks until one
/// arrives. After the first caught signal the default disposition is
/// restored, so a second signal terminates the process immediately.
///
/// # Errors
///
/// * [`io::ErrorKind::AlreadyExists`] if a watcher was already installed
///   (signal dispositions are process-global);
/// * [`io::ErrorKind::Unsupported`] on non-unix targets;
/// * the underlying OS error if the pipe or handler installation fails.
pub fn watch_termination() -> io::Result<SignalWatcher> {
    imp::watch_termination()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_signal_displays_conventionally() {
        assert_eq!(TermSignal::Interrupt.to_string(), "SIGINT");
        assert_eq!(TermSignal::Terminate.to_string(), "SIGTERM");
    }

    // The handler/self-pipe path itself is exercised end-to-end by
    // `tests/signal_snapshot.rs`, which SIGTERMs a real `kastio serve`
    // child process — installing process-global handlers inside the
    // unit-test harness would race other tests.
}
